#!/usr/bin/env python3
"""Reproduce the paper's §2 benchmark classification (Tables 2-4 input).

Simulates each SPEC CPU2000 model alone on the Table 1 machine and
classifies it as low / medium / high ILP by single-thread IPC — the
classes from which the paper's multithreaded mixes are composed.

Run:  python examples/classify_benchmarks.py [--insns N]
"""

import argparse

from repro.experiments.report import format_table
from repro.trace.classify import classify_all


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--insns", type=int, default=12_000,
                        help="instructions per benchmark (default 12000)")
    args = parser.parse_args()

    results = classify_all(max_insns=args.insns)
    rows = [
        (c.name, f"{c.ipc:.3f}", c.ilp_class,
         "" if c.matches_target else f"(profile target: {c.target_class})")
        for c in sorted(results, key=lambda c: c.ipc)
    ]
    print(format_table(["benchmark", "ipc", "class", "note"], rows))

    by_class: dict[str, list[str]] = {"low": [], "med": [], "high": []}
    for c in results:
        by_class[c.ilp_class].append(c.name)
    print("\nclass rosters (compare with the paper's Tables 2-4 labels):")
    for cls in ("low", "med", "high"):
        print(f"  {cls:>4}: {', '.join(sorted(by_class[cls]))}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Extending the library: define a custom synthetic workload.

Builds a pointer-chasing "database-like" profile that is not part of
SPEC 2000, generates its trace, and measures how much each scheduler
design suffers or benefits when it shares the core with a compute-bound
thread — the general experiment the paper's machinery enables beyond its
own benchmark suite.

Run:  python examples/custom_workload.py
"""

from repro import paper_machine
from repro.experiments.runner import TRACE_SLACK, default_warmup
from repro.isa.opcodes import OpClass
from repro.metrics.ipc import SimResult
from repro.pipeline.smt_core import SMTProcessor
from repro.trace.generator import generate_trace
from repro.trace.profiles import BenchmarkProfile

#: A hash-join-style kernel: heavy pointer chasing over a working set
#: far beyond L2, short dependence strands, hard-to-predict branches.
DB_PROBE = BenchmarkProfile(
    name="db-probe",
    suite="int",
    ilp_class="low",
    mix={
        OpClass.IALU: 0.42,
        OpClass.IMUL: 0.01,
        OpClass.IDIV: 0.002,
        OpClass.LOAD: 0.32,
        OpClass.STORE: 0.078,
        OpClass.BRANCH: 0.17,
    },
    frac_two_src=0.5,
    dep_mean=2.2,
    footprint_kb=64 * 1024,
    seq_frac=0.15,
    pointer_chase=0.4,
    branch_predictability=0.88,
    code_kb=16,
    hot_frac=0.9,
    strands=2,
)

MAX_INSNS = 8_000


def run_pair(partner_trace, scheduler: str) -> SimResult:
    cfg = paper_machine(iq_size=64, scheduler=scheduler)
    warmup = default_warmup(MAX_INSNS)
    db_trace = generate_trace(DB_PROBE, warmup + MAX_INSNS + TRACE_SLACK,
                              seed=7)
    core = SMTProcessor(cfg, [db_trace, partner_trace], warmup=warmup)
    stats = core.run(MAX_INSNS)
    return SimResult.from_stats(("db-probe", "gzip"), scheduler, 64, stats)


def main() -> None:
    warmup = default_warmup(MAX_INSNS)
    partner = generate_trace("gzip", warmup + MAX_INSNS + TRACE_SLACK, seed=7)

    print("Custom pointer-chasing workload sharing an SMT core with gzip\n")
    print(f"{'scheduler':>12} {'IPC':>7} {'db-probe':>9} {'gzip':>7} "
          f"{'all-2OP-blocked':>16}")
    for scheduler in ("traditional", "2op_block", "2op_ooo"):
        result = run_pair(partner, scheduler)
        db, gz = result.per_thread_ipc
        print(f"{scheduler:>12} {result.throughput_ipc:7.3f} {db:9.3f} "
              f"{gz:7.3f} {result.extra('all_blocked_2op_fraction'):15.1%}")

    print(
        "\nThe chasing thread blocks dispatch frequently under plain\n"
        "2OP_BLOCK, throttling gzip with it; out-of-order dispatch lets\n"
        "gzip's (and the prober's own independent) work keep flowing."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scheduler scaling study: a miniature Figure 3/5/7 on one workload.

Sweeps the issue-queue size for all three scheduler designs on a mix of
your choice and prints the speedup table plus the same-size ratios the
paper quotes.

Run:  python examples/scheduler_comparison.py [bench1 bench2 ...]
"""

import sys

from repro import paper_machine, simulate_mix

IQ_SIZES = (32, 48, 64, 96)
SCHEDULERS = ("traditional", "2op_block", "2op_ooo")


def main() -> None:
    benchmarks = sys.argv[1:] or ["equake", "gcc"]  # Table 3 mix 10
    print(f"IQ-size sweep for {' + '.join(benchmarks)} "
          f"({len(benchmarks)} threads), 8k instructions/thread\n")

    ipc: dict[tuple[str, int], float] = {}
    for scheduler in SCHEDULERS:
        for iq_size in IQ_SIZES:
            cfg = paper_machine(iq_size=iq_size, scheduler=scheduler)
            result = simulate_mix(benchmarks, cfg, max_insns=8_000)
            ipc[(scheduler, iq_size)] = result.throughput_ipc

    header = "iq_size " + "".join(f"{s:>14}" for s in SCHEDULERS)
    print(header)
    print("-" * len(header))
    for iq_size in IQ_SIZES:
        row = f"{iq_size:>7} "
        row += "".join(f"{ipc[(s, iq_size)]:>14.3f}" for s in SCHEDULERS)
        print(row)

    print("\nsame-size ratios (the numbers the paper quotes in prose):")
    for iq_size in IQ_SIZES:
        trad = ipc[("traditional", iq_size)]
        block = ipc[("2op_block", iq_size)]
        ooo = ipc[("2op_ooo", iq_size)]
        print(f"  @{iq_size:>3}: 2op_block vs traditional "
              f"{block / trad - 1:+7.1%}   2op_ooo vs 2op_block "
              f"{ooo / block - 1:+7.1%}   2op_ooo vs traditional "
              f"{ooo / trad - 1:+7.1%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate one SMT mix under the paper's three schedulers.

Also walks the paper's Figure 2 terminology (DI / NDI / HDI) on a small
hand-written code fragment, using the real issue-queue readiness logic.

Run:  python examples/quickstart.py
"""

from repro import paper_machine, simulate_mix
from repro.core.iq import IssueQueue
from repro.isa.opcodes import OpClass
from repro.pipeline.dynamic import DynInstr


def figure2_walkthrough() -> None:
    """The paper's Figure 2: classifying instructions at dispatch.

    Consider (registers already renamed; R1 and R2 are not ready —
    say both are being loaded from memory):

        I1: R3 <- R1 + R2     two non-ready sources  -> NDI
        I2: R4 <- R3 + 1      one non-ready source   -> DI (hidden: HDI)
        I3: R5 <- R6 + R7     all sources ready      -> DI (hidden: HDI)

    With in-order dispatch (plain 2OP_BLOCK) I1 blocks the thread, hiding
    I2 and I3 from the scheduler; out-of-order dispatch sends them into
    the issue queue past I1.
    """
    ready = bytearray(16)
    for reg in (6, 7):  # R6, R7 have produced their values
        ready[reg] = 1
    iq = IssueQueue(capacity=8, comparators_per_entry=1, ready_bits=ready)

    def make(seq, src1, src2, dest):
        di = DynInstr(tid=0, seq=seq, tseq=seq, op=int(OpClass.IALU), pc=0,
                      addr=0, taken=False, target=0, dest_l=-1, src1_l=-1,
                      src2_l=-1, fetch_cycle=0)
        di.src1_p, di.src2_p, di.dest_p = src1, src2, dest
        return di

    i1 = make(1, src1=1, src2=2, dest=3)   # R3 <- R1 + R2
    i2 = make(2, src1=3, src2=-1, dest=4)  # R4 <- R3 + 1
    i3 = make(3, src1=6, src2=7, dest=5)   # R5 <- R6 + R7

    print("Figure 2 walkthrough (2OP scheduler, 1 comparator/entry):")
    for name, instr in (("I1", i1), ("I2", i2), ("I3", i3)):
        pending = iq.nonready_sources(instr)
        kind = "NDI (blocks in-order dispatch)" if len(pending) >= 2 else \
            "DI — hidden behind the NDI, an HDI"
        shown = ", ".join(f"R{p}" for p in pending) or "none"
        print(f"  {name}: non-ready sources {shown:<8} -> {kind}")
    print()


def main() -> None:
    figure2_walkthrough()

    benchmarks = ["parser", "vortex"]  # 1 LOW + 1 HIGH ILP (Table 3 mix 7)
    print(f"Simulating {benchmarks[0]} + {benchmarks[1]} on the paper's "
          "machine (64-entry IQ), 10k instructions/thread:\n")
    print(f"{'scheduler':>12} {'IPC':>7} {'parser':>8} {'vortex':>8} "
          f"{'all-2OP-blocked':>16}")
    for scheduler in ("traditional", "2op_block", "2op_ooo"):
        cfg = paper_machine(iq_size=64, scheduler=scheduler)
        result = simulate_mix(benchmarks, cfg, max_insns=10_000)
        p, v = result.per_thread_ipc
        print(f"{scheduler:>12} {result.throughput_ipc:7.3f} {p:8.3f} "
              f"{v:8.3f} {result.extra('all_blocked_2op_fraction'):15.1%}")
    print(
        "\nExpected shape (paper §5): 2op_block loses throughput versus\n"
        "the traditional scheduler on 2-threaded workloads; adding\n"
        "out-of-order dispatch (2op_ooo) recovers it while keeping the\n"
        "cheaper single-comparator issue queue."
    )


if __name__ == "__main__":
    main()

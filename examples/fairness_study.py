#!/usr/bin/env python3
"""Fairness study: weighted IPCs under the three schedulers.

SMT throughput can improve while one thread starves; the paper therefore
also reports the harmonic mean of weighted IPCs (Luo et al.). This
example runs a LOW+HIGH ILP mix — the most starvation-prone combination
— and shows each thread's weighted progress per scheduler.

Run:  python examples/fairness_study.py
"""

from repro import paper_machine
from repro.experiments.runner import simulate_mix_with_fairness, solo_ipc
from repro.metrics.fairness import weighted_ipcs

BENCHMARKS = ["swim", "gap"]  # Table 3 mix 8: 1 LOW + 1 HIGH
MAX_INSNS = 8_000


def main() -> None:
    print(f"Fairness study: {' + '.join(BENCHMARKS)} @ 64-entry IQ, "
          f"{MAX_INSNS} instructions/thread\n")

    print(f"{'scheduler':>12} {'IPC':>7} "
          + "".join(f"{b + ' wIPC':>13}" for b in BENCHMARKS)
          + f" {'fairness':>9}")
    for scheduler in ("traditional", "2op_block", "2op_ooo"):
        cfg = paper_machine(iq_size=64, scheduler=scheduler)
        result, fairness = simulate_mix_with_fairness(
            BENCHMARKS, cfg, max_insns=MAX_INSNS
        )
        alone = [solo_ipc(b, cfg, MAX_INSNS) for b in BENCHMARKS]
        weighted = weighted_ipcs(result.per_thread_ipc, alone)
        print(f"{scheduler:>12} {result.throughput_ipc:7.3f} "
              + "".join(f"{w:13.3f}" for w in weighted)
              + f" {fairness:9.3f}")

    print(
        "\nReading the table: each thread's weighted IPC is its in-mix\n"
        "IPC divided by its single-thread IPC on the same machine; the\n"
        "fairness metric is the harmonic mean over threads, so starving\n"
        "either thread drags it down even when raw throughput looks fine."
    )


if __name__ == "__main__":
    main()

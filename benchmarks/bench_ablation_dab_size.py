"""Design-choice ablation: deadlock-avoidance buffer capacity.

The paper argues a tiny buffer suffices ("a simple RAM structure", used
only when the ROB-oldest instruction is denied an IQ entry). This bench
sweeps the buffer size to confirm capacity beyond one entry buys nothing
measurable — the DESIGN.md rationale for defaulting to a single entry.
"""

from benchmarks._common import EXECUTOR, INSNS, MIXES, SEED, once, write_result
from repro.config.presets import paper_machine
from repro.exec import SimJob, execute_jobs
from repro.experiments.report import format_table
from repro.metrics.aggregate import harmonic_mean
from repro.workloads.mixes import FOUR_THREAD_MIXES


def test_ablation_dab_size(benchmark):
    sizes = (1, 2, 4, 8)

    def run():
        out = {}
        for size in sizes:
            cfg = paper_machine(
                iq_size=32, scheduler="2op_ooo", deadlock_buffer_size=size
            )
            payloads, _ = execute_jobs([
                SimJob(tuple(m.benchmarks), cfg, INSNS, SEED)
                for m in FOUR_THREAD_MIXES[:MIXES]
            ], EXECUTOR)
            out[size] = harmonic_mean(
                [p.result.throughput_ipc for p in payloads]
            )
        return out

    out = once(benchmark, run)
    write_result("ablation_dab_size", format_table(
        ["dab_entries", "hmean_ipc"], sorted(out.items())
    ))
    # Larger buffers change nothing measurable (paper: one entry is
    # sufficient to prevent deadlocks with minimal performance impact).
    base = out[1]
    for size in sizes[1:]:
        assert abs(out[size] - base) / base < 0.03

"""Executor scaling: wall-clock vs worker count, cold vs warm cache.

Measures a small (>= 12-point) sweep at ``jobs`` in {1, 2, 4} with a
cold content-addressed cache, then a warm-cache rerun, and writes the
speedup table to ``results/exec_scaling.txt``. Two invariants are
asserted regardless of host parallelism:

* every run — any worker count, cold or warm — produces byte-identical
  results, and
* the warm-cache rerun performs **zero** simulations.

The >= 1.8x cold-cache speedup target for ``jobs=4`` is asserted only
when the host actually has >= 4 CPUs; the table records the honest
numbers either way.
"""

import os
import tempfile
from time import perf_counter  # repro: noqa[RPR001] - measures the harness

from benchmarks._common import INSNS, SEED, once, write_result
from repro.config.presets import paper_machine
from repro.exec import ExecutorConfig, execute_jobs, jobs_for_grid
from repro.experiments.report import format_table
from repro.experiments.runner import default_warmup, thread_traces
from repro.workloads.mixes import TWO_THREAD_MIXES

#: Scaled down from INSNS: the sweep runs 3x cold + 3x warm.
EXEC_INSNS = max(1000, INSNS // 4)

SCHEDULERS = ("traditional", "2op_ooo")
IQS = (32, 64)
MIXES_USED = TWO_THREAD_MIXES[:3]


def test_exec_scaling(benchmark):
    keyed = jobs_for_grid(
        MIXES_USED, paper_machine(), SCHEDULERS, IQS, EXEC_INSNS, SEED
    )
    jobs = [j for _, j in keyed]
    assert len(jobs) >= 12

    # Pre-warm the per-process trace memo so every timed run (forked
    # workers inherit the parent's memo) measures simulation, not trace
    # generation.
    for mix in MIXES_USED:
        thread_traces(
            mix.benchmarks, EXEC_INSNS, SEED, default_warmup(EXEC_INSNS)
        )

    def run():
        timings = {}
        reference = None
        for workers in (1, 2, 4):
            with tempfile.TemporaryDirectory() as cache_dir:
                ex = ExecutorConfig(jobs=workers, cache_dir=cache_dir)
                t0 = perf_counter()
                cold, cold_rep = execute_jobs(jobs, ex)
                cold_s = perf_counter() - t0
                t0 = perf_counter()
                warm, warm_rep = execute_jobs(jobs, ex)
                warm_s = perf_counter() - t0
            assert cold_rep.simulated == len(jobs)
            # Warm-cache rerun: zero simulation, everything served.
            assert warm_rep.simulated == 0
            assert warm_rep.cached == len(jobs)
            results = [p.result for p in cold]
            assert results == [p.result for p in warm]
            if reference is None:
                reference = results
            else:
                # Byte-identical across worker counts.
                assert results == reference
            timings[workers] = (cold_s, warm_s)
        return timings

    timings = once(benchmark, run)
    base_cold = timings[1][0]
    rows = [
        (
            workers,
            f"{cold_s:.2f}",
            f"{warm_s:.3f}",
            f"{base_cold / cold_s:.2f}x",
            f"{cold_s / warm_s:.0f}x",
        )
        for workers, (cold_s, warm_s) in sorted(timings.items())
    ]
    write_result("exec_scaling", "\n".join([
        f"executor scaling: {len(jobs)}-point sweep "
        f"({len(SCHEDULERS)} schedulers x {len(IQS)} IQ sizes x "
        f"{len(MIXES_USED)} 2-thread mixes, {EXEC_INSNS} insns/thread), "
        f"host cpus={os.cpu_count()}",
        "",
        format_table(
            ["jobs", "cold_s", "warm_s", "cold_speedup", "warm_vs_cold"],
            rows,
        ),
        "",
        "warm-cache reruns performed zero simulations (asserted).",
    ]))

    if (os.cpu_count() or 1) >= 4:
        assert base_cold / timings[4][0] >= 1.8, (
            f"jobs=4 cold speedup {base_cold / timings[4][0]:.2f}x < 1.8x "
            f"on a {os.cpu_count()}-cpu host"
        )

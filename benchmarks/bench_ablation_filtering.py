"""§4 ablation: idealized NDI-dependence filtering.

Paper: even a perfect, zero-overhead filter that refuses to dispatch
HDIs depending on a prior NDI improves IPC by only ~1.2% — blind
out-of-order dispatch is the right design point.
"""

from benchmarks._common import INSNS, MIXES, SEED, once, write_result
from repro.experiments.intext import filtering_ablation
from repro.experiments.report import render_dict


def test_ablation_filtering(benchmark):
    out = once(benchmark, lambda: filtering_ablation(
        iq_size=64, max_insns=INSNS, seed=SEED, num_threads=2,
        max_mixes=MIXES,
    ))
    write_result("ablation_filtering", render_dict(
        "blind vs idealized-filtered OOO dispatch, 2T @ 64 entries "
        "(paper: filtering gains only ~1.2%)",
        out,
    ))
    # The filter's effect is marginal in either direction (paper: +1.2%).
    assert abs(out["filter_gain"]) < 0.08

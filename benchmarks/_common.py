"""Shared scaffolding for the reproduction benchmarks.

Every bench regenerates one table/figure of the paper at a reduced scale
(the paper simulates 100M instructions per thread on a compiled
simulator; this is pure Python). Scale knobs:

* ``REPRO_BENCH_INSNS``  — committed instructions per thread
  (default 8000),
* ``REPRO_BENCH_MIXES``  — mixes per workload table (default 6 of 12),
* ``REPRO_BENCH_IQS``    — comma-separated IQ sizes
  (default ``32,64,96``).

Set ``REPRO_BENCH_INSNS=20000 REPRO_BENCH_MIXES=12
REPRO_BENCH_IQS=32,48,64,96,128`` for a full-fidelity (slow) run.

Execution knobs (see ``docs/exec.md`` and ``docs/robustness.md``):

* ``REPRO_JOBS``       — worker processes per grid (default 1),
* ``REPRO_CACHE``      — ``0`` disables the content-addressed result
  cache (default on: a warm rerun of ``make figures`` performs zero
  simulation),
* ``REPRO_CACHE_DIR``  — cache root (default ``results/cache``),
* ``REPRO_JOURNAL``    — ``1`` (or a directory) journals every grid to
  a crash-safe run log; with ``REPRO_RESUME=1`` an interrupted bench
  run replays completed grid points instead of re-simulating them,
* ``REPRO_CHAOS``      — deterministic fault injection, e.g.
  ``kill=0.3,corrupt=0.5,seed=7`` (results are guaranteed unchanged),
* ``REPRO_WATCHDOG``   — hung-worker grace in seconds (``0`` disables).

Rendered outputs are written to ``results/`` next to this directory and
echoed to stdout (visible with ``pytest -s``).
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path

from repro.exec import ExecutorConfig

#: Instructions committed per thread in each simulation.
INSNS = int(os.environ.get("REPRO_BENCH_INSNS", "8000"))

#: Mixes taken from each of the paper's workload tables.
MIXES = int(os.environ.get("REPRO_BENCH_MIXES", "6"))

#: IQ sizes swept.
IQ_SIZES = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_IQS", "32,64,96").split(",")
)

SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Grid-execution policy every reproduction bench routes through: all
#: ``REPRO_*`` execution knobs (workers, cache, journal/resume, chaos,
#: watchdog), with cache and journal roots anchored under ``results/``
#: next to this directory rather than the current working directory.
EXECUTOR = ExecutorConfig.from_env(default_cache=True)
if EXECUTOR.cache_dir is not None and "REPRO_CACHE_DIR" not in os.environ:
    EXECUTOR = EXECUTOR.with_cache_dir(RESULTS_DIR / "cache")
if EXECUTOR.journal_dir is not None and os.environ.get("REPRO_JOURNAL") == "1":
    EXECUTOR = dataclasses.replace(
        EXECUTOR, journal_dir=RESULTS_DIR / "journal"
    )


def write_result(name: str, text: str) -> None:
    """Persist a rendered reproduction table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Reproduction benches are minutes-long simulations; statistical
    repetition belongs to the micro benches (bench_sim_speed), not here.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

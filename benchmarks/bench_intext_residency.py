"""§5 in-text statistic: mean IQ residency.

Paper (2-threaded mixes, 64-entry IQ): an instruction occupies its issue
queue entry for 21 cycles on average under the traditional scheduler and
only 15 cycles under 2OP_BLOCK with out-of-order dispatch — the entry
reuse that makes the reduced-comparator queue competitive.
"""

from benchmarks._common import INSNS, MIXES, SEED, once, write_result
from repro.experiments.intext import residency_stats
from repro.experiments.report import render_dict


def test_intext_residency(benchmark):
    stats = once(benchmark, lambda: residency_stats(
        iq_size=64, max_insns=INSNS, seed=SEED, num_threads=2,
        max_mixes=MIXES,
    ))
    write_result("intext_residency", render_dict(
        "mean IQ residency (cycles), 2-thread mixes @ 64 entries "
        "(paper: traditional 21 -> 2OP+OOO 15)",
        stats,
    ))

    trad = stats["traditional"]["mean_iq_residency"]
    ooo = stats["2op_ooo"]["mean_iq_residency"]
    block = stats["2op_block"]["mean_iq_residency"]
    # Keeping two-non-ready instructions out of the queue shortens the
    # average entry occupancy for both 2OP designs.
    assert ooo < trad
    assert block < trad
    # And the all-blocked fraction collapses under OOO dispatch (§5).
    assert stats["2op_ooo"]["all_blocked_fraction"] < \
        0.5 * stats["2op_block"]["all_blocked_fraction"]

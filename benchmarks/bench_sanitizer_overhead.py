"""Overhead of the runtime pipeline sanitizer (repro.analysis).

Two claims are pinned down here:

* ``sanitize=False`` (the default) is *free*: the only added work on
  ``bench_sim_speed``'s hot loop is one ``is None`` test per cycle, so
  a config that spells out ``sanitize=False`` must time identically to
  the untouched baseline config (and produce bit-identical stats);
* ``sanitize=True`` costs a bounded, interval-tunable fraction — the
  measured ratio is written to ``results/sanitizer_overhead.txt`` so
  regressions in the sanitizer's own cost are visible over time.
"""

import time  # repro: noqa[RPR001] - wall clock IS the measurement

import pytest

from benchmarks._common import write_result
from repro.config.presets import paper_machine
from repro.experiments.runner import thread_traces
from repro.pipeline.smt_core import SMTProcessor


@pytest.fixture(scope="module")
def traces():
    return thread_traces(["parser", "vortex"], 4000, seed=0, warmup=4000)


def _run(cfg, traces):
    # Times the core itself; the executor would hide what we measure.
    core = SMTProcessor(cfg, traces, warmup=4000)  # repro: noqa[RPR006]
    return core.run(4000)


def test_sanitize_off_is_bit_identical(traces):
    """Explicit sanitize=False must not perturb results vs the default."""
    base = _run(paper_machine(), traces).as_dict()
    off = _run(paper_machine(sanitize=False), traces).as_dict()
    on = _run(
        paper_machine(sanitize=True, sanitize_interval=64), traces
    ).as_dict()
    assert off == base
    assert on.pop("sanitizer_checks") > 0
    base.pop("sanitizer_checks")
    assert on == base


def test_record_sanitizer_overhead(traces):
    """Measure and persist the on/off wall-clock ratio."""
    configs = {
        "baseline (default config)": paper_machine(),
        "sanitize=False (explicit)": paper_machine(sanitize=False),
        "sanitize=True interval=256": paper_machine(
            sanitize=True, sanitize_interval=256
        ),
        "sanitize=True interval=64": paper_machine(
            sanitize=True, sanitize_interval=64
        ),
        "sanitize=True interval=16": paper_machine(
            sanitize=True, sanitize_interval=16
        ),
    }
    _run(paper_machine(), traces)  # untimed process warm-up
    timings: dict[str, float] = {}
    for label, cfg in configs.items():
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()  # repro: noqa[RPR001]
            stats = _run(cfg, traces)
            best = min(best, time.perf_counter() - start)  # repro: noqa[RPR001]
            assert stats.cycles > 0
        timings[label] = best
    base = timings["baseline (default config)"]
    lines = ["sanitizer overhead on the bench_sim_speed workload",
             "(best of 3, 2-thread parser+vortex, 4000 insns)", ""]
    for label, seconds in timings.items():
        lines.append(f"{label:30s} {seconds * 1e3:8.1f} ms "
                     f"({seconds / base:5.2f}x baseline)")
    off_ratio = timings["sanitize=False (explicit)"] / base
    lines.append("")
    lines.append(
        f"sanitize=False vs baseline: {off_ratio:.3f}x "
        "(zero measurable cost — same code path, one is-None test/cycle)"
    )
    write_result("sanitizer_overhead", "\n".join(lines))
    # Generous bound: the off path must be timing-indistinguishable from
    # the baseline (allow noise, not a real slope).
    assert off_ratio < 1.25


def test_sim_speed_sanitize_off(benchmark, traces):
    """pytest-benchmark series: default-config speed (tracking metric)."""
    result = benchmark(lambda: _run(paper_machine(sanitize=False), traces))
    assert result.cycles > 0


def test_sim_speed_sanitize_on(benchmark, traces):
    """pytest-benchmark series: sanitized speed at the default interval."""
    result = benchmark(
        lambda: _run(paper_machine(sanitize=True), traces)
    )
    assert result.sanitizer_checks > 0

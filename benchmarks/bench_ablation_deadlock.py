"""§4 ablation: deadlock-avoidance buffer vs watchdog timer.

The paper evaluates the single-entry deadlock-avoidance buffer (no
flushes) and argues it is preferable to the watchdog timer whose
recovery requires a full pipeline flush. This bench runs both mechanisms
on the most deadlock-prone configuration (many threads, small IQ).
"""

from benchmarks._common import INSNS, MIXES, SEED, once, write_result
from repro.experiments.intext import deadlock_mechanism_stats
from repro.experiments.report import render_dict


def test_ablation_deadlock(benchmark):
    out = once(benchmark, lambda: deadlock_mechanism_stats(
        iq_size=32, max_insns=INSNS, seed=SEED, num_threads=4,
        max_mixes=MIXES,
    ))
    write_result("ablation_deadlock", render_dict(
        "deadlock-avoidance buffer vs watchdog timer, 4T @ 32 entries",
        out,
    ))
    # Both mechanisms sustain forward progress.
    assert out["buffer"]["hmean_ipc"] > 0
    assert out["watchdog"]["hmean_ipc"] > 0
    # The buffer variant never needs a flush; the watchdog never uses
    # the buffer.
    assert out["buffer"]["watchdog_flushes"] == 0
    assert out["watchdog"]["dab_inserts"] == 0
    # The buffer mechanism performs at least as well as flushing
    # recovery (paper's rationale for preferring it).
    assert out["buffer"]["hmean_ipc"] >= 0.95 * out["watchdog"]["hmean_ipc"]

"""§4 in-text statistics: hidden dispatchable instructions.

Paper: ~90% of instructions piled up behind an NDI are themselves
dispatchable (HDIs); only ~10% of HDIs dispatched out of order depend
directly or transitively on a prior NDI.
"""

from benchmarks._common import INSNS, MIXES, SEED, once, write_result
from repro.experiments.intext import hdi_stats
from repro.experiments.report import render_dict


def test_intext_hdi(benchmark):
    stats = once(benchmark, lambda: hdi_stats(
        iq_size=64, max_insns=INSNS, seed=SEED, num_threads=2,
        max_mixes=MIXES,
    ))
    write_result("intext_hdi", render_dict(
        "HDI statistics, 2-thread mixes @ 64 entries "
        "(paper: hdi_fraction ~0.90, ndi_dependent ~0.10)",
        {
            "hdi_fraction": stats.hdi_fraction,
            "ooo_ndi_dependent_fraction": stats.ooo_ndi_dependent_fraction,
            "ooo_dispatched_per_kinsn": stats.ooo_dispatched_per_kinsn,
        },
    ))

    # The large majority of piled-up instructions are dispatchable.
    assert stats.hdi_fraction > 0.7
    # NDI-dependent HDIs are the minority.
    assert stats.ooo_ndi_dependent_fraction < 0.5
    # Out-of-order dispatch is actually being exercised.
    assert stats.ooo_dispatched_per_kinsn > 1.0

"""Baseline-design ablation: I-Count vs round-robin vs STALL fetch.

The paper's baseline uses the I-Count policy [16]; its related work
discusses STALL [15], which gates a thread's fetch while it has an
outstanding memory-level miss. This bench quantifies those choices on
the reproduction's workloads.
"""

from benchmarks._common import EXECUTOR, INSNS, MIXES, SEED, once, write_result
from repro.config.presets import paper_machine
from repro.exec import SimJob, execute_jobs
from repro.experiments.report import format_table
from repro.metrics.aggregate import harmonic_mean
from repro.workloads.mixes import FOUR_THREAD_MIXES


def test_ablation_fetch_policy(benchmark):
    def run():
        out = {}
        for policy in ("icount", "round_robin", "stall"):
            cfg = paper_machine(iq_size=64, fetch_policy=policy)
            payloads, _ = execute_jobs([
                SimJob(tuple(m.benchmarks), cfg, INSNS, SEED)
                for m in FOUR_THREAD_MIXES[:MIXES]
            ], EXECUTOR)
            out[policy] = harmonic_mean(
                [p.result.throughput_ipc for p in payloads]
            )
        return out

    out = once(benchmark, run)
    write_result("ablation_fetch_policy", format_table(
        ["fetch_policy", "hmean_ipc"], sorted(out.items())
    ))
    # I-Count must not lose to blind round-robin on mixed workloads.
    assert out["icount"] >= 0.97 * out["round_robin"]

"""Figure 3: throughput-IPC speedup for 2-threaded workloads.

Paper shape: OOO dispatch beats plain 2OP_BLOCK at every IQ size (+12%
at 32, +19% at 48, +22% at 64 entries) and beats/matches the traditional
scheduler up to 64 entries, trailing it slightly beyond.
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.figures import figure3
from repro.experiments.report import render_figure, render_same_size_ratios


def test_figure3(benchmark):
    result = once(benchmark, lambda: figure3(
        max_insns=INSNS, seed=SEED, iq_sizes=IQ_SIZES, max_mixes=MIXES,
        executor=EXECUTOR,
    ))
    text = "\n\n".join([
        render_figure(result),
        render_same_size_ratios(result, "2op_ooo", "2op_block"),
        render_same_size_ratios(result, "2op_ooo", "traditional"),
    ])
    write_result("figure3", text)

    ooo_vs_block = result.speedup_over("2op_ooo", "2op_block")
    ooo_vs_trad = result.speedup_over("2op_ooo", "traditional")
    block_vs_trad = result.speedup_over("2op_block", "traditional")
    # OOO dispatch rescues 2OP_BLOCK everywhere (paper: +12..22%).
    assert all(r > 1.05 for r in ooo_vs_block)
    # Plain 2OP_BLOCK loses to traditional at every 2-thread size.
    assert all(r < 1.0 for r in block_vs_trad)
    # OOO stays within a few percent of (or beats) traditional.
    assert all(r > 0.93 for r in ooo_vs_trad)

"""§5 conclusion: scaling with thread count *and* IQ size.

"The performance of 2OP_BLOCK with out-of-order dispatch scales much
better with both the number of threads and the IQ size compared to
either the traditional design or 2OP_BLOCK alone."
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.report import format_table
from repro.experiments.scaling import run_scaling


def test_scaling(benchmark):
    result = once(benchmark, lambda: run_scaling(
        thread_counts=(2, 3, 4), iq_sizes=IQ_SIZES, max_insns=INSNS,
        seed=SEED, max_mixes=MIXES, executor=EXECUTOR,
    ))
    rows = result.rows()
    slope_rows = [
        (s, t, f"{result.iq_scaling(s, t):.3f}")
        for s in ("traditional", "2op_block", "2op_ooo")
        for t in (2, 3, 4)
    ]
    write_result("scaling", "\n\n".join([
        format_table(["scheduler", "threads", "iq_size", "hmean_ipc"], rows),
        "IQ-size scaling (IPC at largest / smallest swept size):\n"
        + format_table(["scheduler", "threads", "slope"], slope_rows),
    ]))

    # The paper's scaling claim, per thread count: plain 2OP_BLOCK's
    # IQ-size slope is the worst of the three designs (it cannot exploit
    # bigger queues), and OOO dispatch restores slope to at least the
    # 2OP_BLOCK level at every thread count.
    for threads in (2, 3, 4):
        slopes = {
            s: result.iq_scaling(s, threads)
            for s in ("traditional", "2op_block", "2op_ooo")
        }
        assert slopes["2op_ooo"] >= slopes["2op_block"] - 0.01
        assert slopes["traditional"] >= slopes["2op_block"] - 0.01

"""Figure 5: throughput-IPC speedup for 3-threaded workloads.

Paper shape: OOO beats plain 2OP_BLOCK at every size (up to +21% at 64
entries) and beats traditional up to 64 entries (+20/+16/+9% at
32/48/64), dipping only slightly below at 96/128.
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.figures import figure5
from repro.experiments.report import render_figure, render_same_size_ratios


def test_figure5(benchmark):
    result = once(benchmark, lambda: figure5(
        max_insns=INSNS, seed=SEED, iq_sizes=IQ_SIZES, max_mixes=MIXES,
        executor=EXECUTOR,
    ))
    text = "\n\n".join([
        render_figure(result),
        render_same_size_ratios(result, "2op_ooo", "2op_block"),
        render_same_size_ratios(result, "2op_ooo", "traditional"),
    ])
    write_result("figure5", text)

    ooo_vs_block = result.speedup_over("2op_ooo", "2op_block")
    ooo_vs_trad = result.speedup_over("2op_ooo", "traditional")
    # OOO rescues 2OP_BLOCK at mid/large sizes (block degrades there).
    assert ooo_vs_block[-1] > 1.03
    # OOO never falls far behind the traditional scheduler.
    assert all(r > 0.93 for r in ooo_vs_trad)
    # At the smallest queue the reduced-comparator designs are at least
    # competitive with traditional.
    assert ooo_vs_trad[0] > 0.98

"""Figure 6: fairness-metric improvement for 3-threaded workloads.

Paper shape: same trends as the 3-thread throughput figure — +17% over
plain 2OP_BLOCK and +6% over traditional at 64 entries.
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.figures import figure6
from repro.experiments.report import render_figure, render_same_size_ratios


def test_figure6(benchmark):
    result = once(benchmark, lambda: figure6(
        max_insns=INSNS, seed=SEED, iq_sizes=IQ_SIZES, max_mixes=MIXES,
        executor=EXECUTOR,
    ))
    text = "\n\n".join([
        render_figure(result),
        render_same_size_ratios(result, "2op_ooo", "2op_block"),
    ])
    write_result("figure6", text)

    ooo_vs_block = result.speedup_over("2op_ooo", "2op_block")
    assert ooo_vs_block[-1] > 1.0

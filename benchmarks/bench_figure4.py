"""Figure 4: fairness-metric improvement for 2-threaded workloads.

Paper shape: mirrors the throughput trends — OOO dispatch improves the
harmonic mean of weighted IPCs over plain 2OP_BLOCK at every size (+21%
at 64 entries) and roughly matches the traditional scheduler.
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.figures import figure4
from repro.experiments.report import render_figure, render_same_size_ratios


def test_figure4(benchmark):
    result = once(benchmark, lambda: figure4(
        max_insns=INSNS, seed=SEED, iq_sizes=IQ_SIZES, max_mixes=MIXES,
        executor=EXECUTOR,
    ))
    text = "\n\n".join([
        render_figure(result),
        render_same_size_ratios(result, "2op_ooo", "2op_block"),
    ])
    write_result("figure4", text)

    ooo_vs_block = result.speedup_over("2op_ooo", "2op_block")
    ooo_vs_trad = result.speedup_over("2op_ooo", "traditional")
    assert all(r > 1.0 for r in ooo_vs_block)
    assert all(r > 0.9 for r in ooo_vs_trad)

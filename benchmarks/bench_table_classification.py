"""Tables 2-4 prerequisite: the single-thread ILP classification.

The paper classifies all 26 SPEC CPU2000 programs as low/medium/high ILP
from single-thread superscalar runs and builds its multithreaded mixes
from those classes. This bench reruns the classification on the Table 1
machine and checks it against the class labels the workload tables use.
"""

from benchmarks._common import INSNS, SEED, once, write_result
from repro.experiments.report import format_table
from repro.trace.classify import classify_all


def test_table_classification(benchmark):
    results = once(benchmark, lambda: classify_all(
        max_insns=max(INSNS, 12_000), seed=SEED,
    ))
    rows = [
        (c.name, f"{c.ipc:.3f}", c.ilp_class, c.target_class,
         "ok" if c.matches_target else "MISMATCH")
        for c in sorted(results, key=lambda c: (c.target_class, c.name))
    ]
    write_result("table_classification", format_table(
        ["benchmark", "ipc", "measured", "target", "status"], rows
    ))

    matches = sum(c.matches_target for c in results)
    # Window-to-window IPC variance can push one or two borderline
    # programs across a class boundary at reduced scales; the bulk of
    # the classification must hold.
    assert matches >= 23, f"only {matches}/26 classifications match"
    # Class IPC bands must be ordered: every low < every high.
    lows = [c.ipc for c in results if c.target_class == "low"]
    highs = [c.ipc for c in results if c.target_class == "high"]
    assert max(lows) < min(highs)

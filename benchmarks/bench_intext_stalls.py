"""§3 in-text statistic: cycles with all threads 2OP-blocked at dispatch.

Paper (64-entry IQ, 2OP_BLOCK): 43% of cycles for 2-threaded workloads,
17% for 3-threaded, 7% for 4-threaded — the motivation for out-of-order
dispatch. §5 adds that OOO dispatch collapses the 2-thread figure from
43% to 0.2%.
"""

from benchmarks._common import INSNS, MIXES, SEED, once, write_result
from repro.experiments.intext import dispatch_stall_stats
from repro.experiments.report import render_dict


def test_intext_dispatch_stalls(benchmark):
    def run():
        block = dispatch_stall_stats(
            iq_size=64, max_insns=INSNS, seed=SEED, max_mixes=MIXES,
            scheduler="2op_block",
        )
        ooo = dispatch_stall_stats(
            iq_size=64, max_insns=INSNS, seed=SEED, max_mixes=MIXES,
            scheduler="2op_ooo",
        )
        return block, ooo

    block, ooo = once(benchmark, run)
    write_result("intext_stalls", "\n\n".join([
        render_dict(
            "all-threads-2OP-blocked fraction, 2OP_BLOCK @ 64 entries "
            "(paper: 0.43 / 0.17 / 0.07)",
            {f"{k} threads": v for k, v in block.items()},
        ),
        render_dict(
            "same statistic with out-of-order dispatch "
            "(paper 2T: 0.43 -> 0.002)",
            {f"{k} threads": v for k, v in ooo.items()},
        ),
    ]))

    # Fewer threads -> more all-blocked cycles (the paper's ordering).
    assert block[2] > block[3] >= block[4] * 0.8
    # The 2-thread number is substantial (paper 43%).
    assert block[2] > 0.2
    # OOO dispatch slashes it. (At 4 threads the shared L2 correlates
    # the low-ILP threads' miss episodes in this model, leaving a larger
    # residue of simultaneous blocking than the paper's 0.2%.)
    for threads in (2, 3):
        assert ooo[threads] < 0.5 * block[threads]
    assert ooo[4] < 0.8 * block[4]

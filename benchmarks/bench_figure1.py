"""Figure 1: 2OP_BLOCK IPC speedup over the same-capacity traditional IQ.

Paper shape: positive for 4-threaded workloads at small IQs, negative at
96/128 entries; negative for 2-threaded workloads at *every* size (by as
much as -19% at 64 entries); 3-threaded workloads in between.
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.figures import figure1
from repro.experiments.report import render_figure


def test_figure1(benchmark):
    result = once(benchmark, lambda: figure1(
        max_insns=INSNS, seed=SEED, iq_sizes=IQ_SIZES, max_mixes=MIXES,
        executor=EXECUTOR,
    ))
    write_result("figure1", render_figure(result))

    two = result.series["2 threads"]
    four = result.series["4 threads"]
    # 2-threaded: 2OP_BLOCK loses at every size (paper: all below 1).
    assert all(v < 1.0 for v in two)
    # The loss deepens (or stays) as the queue grows.
    assert two[-1] <= two[0] + 0.02
    # 4-threaded: clearly better at the smallest queue than at the
    # largest (paper: crossover between 64 and 96 entries).
    assert four[0] > four[-1]
    # Thread-count ordering at the smallest IQ: more TLP helps 2OP_BLOCK.
    assert four[0] > two[0]

"""Micro benchmarks: simulator and trace-generator throughput.

These are conventional pytest-benchmark measurements (multiple rounds)
tracking the performance engineering targets of DESIGN.md §6 — they
size how many instructions the reproduction experiments can afford.
"""

import pytest

from repro.config.presets import paper_machine
from repro.experiments.runner import thread_traces
from repro.pipeline.smt_core import SMTProcessor
from repro.trace.generator import clear_trace_cache, generate_trace


@pytest.fixture(scope="module")
def traces():
    return thread_traces(["parser", "vortex"], 4000, seed=0, warmup=4000)


def test_simulator_cycle_throughput(benchmark, traces):
    """End-to-end simulation speed (cycles/second) on a 2-thread mix."""
    def run():
        # Micro-bench of the core's own speed; bypassing repro.exec
        # is the point here.
        core = SMTProcessor(paper_machine(), traces, warmup=4000)  # repro: noqa[RPR006]
        stats = core.run(4000)
        return stats.cycles

    cycles = benchmark(run)
    assert cycles > 0


def test_trace_generation_throughput(benchmark):
    """Trace generation speed (instructions/second), cache disabled."""
    counter = [0]

    def run():
        clear_trace_cache()
        counter[0] += 1
        return generate_trace("gzip", 20_000, seed=counter[0])

    trace = benchmark(run)
    assert len(trace) == 20_000


def test_warmup_replay_throughput(benchmark, traces):
    """Cost of the functional warmup phase alone."""
    def run():
        core = SMTProcessor(paper_machine(), traces, warmup=4000)  # repro: noqa[RPR006]
        return core

    core = benchmark(run)
    assert core.threads[0].fetch_idx == 4000

"""Figure 7: throughput-IPC speedup for 4-threaded workloads.

Paper shape: plain 2OP_BLOCK wins big at 32 entries but does not scale;
OOO dispatch beats it at every size above 32 (+5/+14/+20% at 48/64/96+)
and beats traditional at all sizes.
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.figures import figure7
from repro.experiments.report import render_figure, render_same_size_ratios


def test_figure7(benchmark):
    result = once(benchmark, lambda: figure7(
        max_insns=INSNS, seed=SEED, iq_sizes=IQ_SIZES, max_mixes=MIXES,
        executor=EXECUTOR,
    ))
    text = "\n\n".join([
        render_figure(result),
        render_same_size_ratios(result, "2op_ooo", "2op_block"),
        render_same_size_ratios(result, "2op_ooo", "traditional"),
    ])
    write_result("figure7", text)

    block_vs_trad = result.speedup_over("2op_block", "traditional")
    ooo_vs_block = result.speedup_over("2op_ooo", "2op_block")
    ooo_vs_trad = result.speedup_over("2op_ooo", "traditional")
    # Abundant TLP: plain 2OP_BLOCK wins at the smallest queue...
    assert block_vs_trad[0] > 1.0
    # ...but does not scale: it is worse at the largest queue than at 32.
    assert block_vs_trad[-1] < block_vs_trad[0]
    # OOO dispatch restores scaling at larger queues.
    assert ooo_vs_block[-1] > 1.0
    # And stays at least competitive with the traditional scheduler.
    assert all(r > 0.95 for r in ooo_vs_trad)

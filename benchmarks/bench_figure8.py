"""Figure 8: fairness-metric improvement for 4-threaded workloads.

Paper shape: +11.6% over plain 2OP_BLOCK and +13% over the traditional
scheduler at 64 entries, with the same scaling trends as Figure 7.
"""

from benchmarks._common import (
    EXECUTOR,
    INSNS,
    IQ_SIZES,
    MIXES,
    SEED,
    once,
    write_result,
)
from repro.experiments.figures import figure8
from repro.experiments.report import render_figure, render_same_size_ratios


def test_figure8(benchmark):
    result = once(benchmark, lambda: figure8(
        max_insns=INSNS, seed=SEED, iq_sizes=IQ_SIZES, max_mixes=MIXES,
        executor=EXECUTOR,
    ))
    text = "\n\n".join([
        render_figure(result),
        render_same_size_ratios(result, "2op_ooo", "2op_block"),
    ])
    write_result("figure8", text)

    ooo_vs_block = result.speedup_over("2op_ooo", "2op_block")
    # OOO dispatch does not sacrifice fairness at larger queues.
    assert ooo_vs_block[-1] > 0.97

"""Setup shim: lets ``pip install -e .`` work on environments without the
``wheel`` package (offline, legacy editable install path). All metadata
lives in pyproject.toml."""

from setuptools import setup

setup()

"""Repo-root pytest hooks.

The only job of this file is the mutation-analysis bridge: when the
``tests`` oracle layer runs the pinned suite against a mutant, it sets
``REPRO_MUTANT`` to the mutant's JSON spec and this hook installs the
in-memory import hook *before any test module is imported*. Normal
test runs (variable unset) take the early return and are unaffected.
"""

import os

if os.environ.get("REPRO_MUTANT"):
    from repro.analysis.mutate import install_mutant_from_env

    install_mutant_from_env()

"""Fetch thread-selection policies.

The baseline machine uses **I-Count** (Tullsen et al. [16]): threads with
the fewest not-yet-issued instructions in the decode/rename/IQ stages get
fetch priority, preventing any single thread from clogging the shared
issue queue. Round-robin is kept as an ablation baseline.
"""

from __future__ import annotations


def icount_order(threads: list, cycle: int) -> list:
    """Order threads by ascending in-flight front-end instruction count.

    Ties break by a rotating offset so equal-count threads share
    bandwidth fairly over time.
    """
    n = len(threads)
    if n <= 1:
        return list(threads)
    return sorted(threads, key=lambda ts: (ts.icount, (ts.tid - cycle) % n))


def round_robin_order(threads: list, cycle: int) -> list:
    """Rotate thread priority by one position per cycle."""
    n = len(threads)
    if n <= 1:
        return list(threads)
    start = cycle % n
    return [threads[(start + i) % n] for i in range(n)]

"""Front end: fetch policies and the fetch unit."""

from repro.frontend.fetch import FetchUnit
from repro.frontend.icount import icount_order, round_robin_order

__all__ = ["FetchUnit", "icount_order", "round_robin_order"]

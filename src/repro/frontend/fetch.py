"""The fetch stage.

Per cycle, up to ``fetch_threads_per_cycle`` (2) threads share the
``fetch_width`` (8) fetch bandwidth, selected by the configured policy
(I-Count by default). A thread's fetch group ends at:

* a predicted-taken branch (fetch break),
* a mispredicted branch — the thread then stalls until the branch
  resolves (trace-driven simulation fetches no wrong-path instructions;
  the misprediction cost is the resolution bubble plus redirect penalty
  plus front-end refill),
* an instruction-cache miss (the thread stalls for the fill latency),
* a full front-end pipe (back-pressure from rename), or
* trace exhaustion.
"""

from __future__ import annotations

from repro.analysis.contracts import stage_contract
from repro.config.machine import MachineConfig
from repro.frontend.icount import icount_order, round_robin_order
from repro.isa.opcodes import OpClass
from repro.pipeline.dynamic import DynInstr
from repro.rename.map_table import NO_PREG

_new_instance = object.__new__
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)


class FetchUnit:
    """Shared SMT fetch stage."""

    __slots__ = ("cfg", "_order", "_stall_gate")

    def __init__(self, cfg: MachineConfig) -> None:
        self.cfg = cfg
        self._order = (
            icount_order if cfg.fetch_policy == "icount" else round_robin_order
        )
        self._stall_gate = cfg.fetch_policy == "stall"

    # ------------------------------------------------------------------
    @stage_contract(
        "fetch",
        reads=("config",),
        writes=("thread", "predictor", "memory", "stats", "core", "instr"),
    )
    def fetch_cycle(self, core, cycle: int) -> int:  # repro: hot
        """Run one fetch cycle; returns instructions fetched."""
        stall_gate = self._stall_gate
        candidates = None
        for ts in core.threads:
            # Inlined _can_fetch (the reference predicate below).
            if (
                ts.fetch_idx < ts.trace_len
                and cycle >= ts.stalled_until
                and ts.wait_branch is None
                and len(ts.pipe) < ts.pipe_capacity
                and not (stall_gate and ts.pending_long_misses)
            ):
                if candidates is None:
                    candidates = [ts]  # repro: noqa[RPR008] — lazy
                else:
                    candidates.append(ts)
        if candidates is None:
            return 0
        cfg = self.cfg
        if len(candidates) > 1:
            candidates = self._order(candidates, cycle)
            del candidates[cfg.fetch_threads_per_cycle:]
        budget = cfg.fetch_width
        fetched = 0
        fetch_thread = self._fetch_thread
        for ts in candidates:
            if budget <= 0:
                break
            n = fetch_thread(core, ts, cycle, budget)
            budget -= n
            fetched += n
        return fetched

    # ------------------------------------------------------------------
    def _can_fetch(self, ts, cycle: int) -> bool:
        if self._stall_gate and ts.pending_long_misses:
            # STALL policy [15]: no fetch while a memory-level miss is
            # outstanding for this thread.
            return False
        return (
            ts.fetch_idx < ts.trace_len
            and cycle >= ts.stalled_until
            and ts.wait_branch is None
            and len(ts.pipe) < ts.pipe_capacity
        )

    def _fetch_thread(self, core, ts, cycle: int, budget: int) -> int:  # repro: hot
        if core._custom_new_instr:
            return self._fetch_thread_compat(core, ts, cycle, budget)
        trace = ts.trace
        idx = ts.fetch_idx
        # One icache probe per fetch group (line-granular behaviour is
        # dominated by the group head on these large lines).
        res = core.hierarchy.access_inst(trace.pc[idx])
        if res.extra_latency:
            ts.stalled_until = cycle + res.extra_latency
            return 0
        exit_cycle = cycle + self.cfg.frontend_depth - 1
        t_op, t_pc, t_addr = trace.op, trace.pc, trace.addr
        t_taken, t_target = trace.taken, trace.target
        t_dest, t_src1, t_src2 = trace.dest, trace.src1, trace.src2
        pipe_append = ts.pipe.append
        predict = ts.predictor.predict
        limit = ts.trace_len
        room = ts.pipe_capacity - len(ts.pipe)
        if room < budget:
            budget = room
        if limit - idx < budget:
            budget = limit - idx
        tid = ts.tid
        seq = core._seq
        n = 0
        while n < budget:
            # DynInstr.__init__ written out field by field (that method
            # stays the reference constructor): one allocation per fetched
            # instruction makes the call overhead itself measurable.
            instr = _new_instance(DynInstr)
            instr.tid = tid
            instr.seq = seq
            instr.tseq = idx
            op = t_op[idx]
            instr.op = op
            pc = t_pc[idx]
            instr.pc = pc
            instr.addr = t_addr[idx]
            taken = t_taken[idx]
            instr.taken = taken
            target = t_target[idx]
            instr.target = target
            instr.dest_l = t_dest[idx]
            instr.src1_l = t_src1[idx]
            instr.src2_l = t_src2[idx]
            instr.is_load = op == _LOAD
            instr.is_store = op == _STORE
            is_branch = op == _BRANCH
            instr.is_branch = is_branch
            instr.prediction = None
            instr.mispredicted = False
            instr.dest_p = NO_PREG
            instr.old_dest_p = NO_PREG
            instr.src1_p = NO_PREG
            instr.src2_p = NO_PREG
            instr.in_iq = False
            instr.in_dab = False
            instr.num_waiting = 0
            instr.issued = False
            instr.completed = False
            instr.was_ndi_blocked = False
            instr.ooo_dispatched = False
            instr.skipped_ndis = 0
            instr.ndi_dependent = False
            instr.fetch_cycle = cycle
            instr.rename_cycle = -1
            instr.dispatch_cycle = -1
            instr.issue_cycle = -1
            instr.complete_cycle = -1
            instr.forwarded = False
            instr.long_miss = False
            seq += 1
            idx += 1
            pipe_append((exit_cycle, instr))
            n += 1
            if is_branch:
                pred = predict(pc, taken, target)
                instr.prediction = pred
                if pred.mispredicted:
                    instr.mispredicted = True
                    ts.wait_branch = instr
                    break
                if taken:
                    break  # fetch break at a predicted-taken branch
        core._seq = seq
        ts.fetch_idx = idx
        ts.icount += n
        stats = core.stats
        stats.fetched += n
        stats.fetched_per_thread[tid] += n
        return n

    def _fetch_thread_compat(self, core, ts, cycle: int, budget: int) -> int:
        """Reference fetch loop routing each instruction through
        ``core.new_instr`` so subclass observation hooks keep seeing
        every dynamic instruction."""
        trace = ts.trace
        res = core.hierarchy.access_inst(trace.pc[ts.fetch_idx])
        if res.extra_latency:
            ts.stalled_until = cycle + res.extra_latency
            return 0
        exit_cycle = cycle + self.cfg.frontend_depth - 1
        stats = core.stats
        n = 0
        while (
            n < budget
            and ts.fetch_idx < ts.trace_len
            and len(ts.pipe) < ts.pipe_capacity
        ):
            idx = ts.fetch_idx
            instr = core.new_instr(ts, idx, cycle)
            ts.fetch_idx = idx + 1
            ts.pipe.append((exit_cycle, instr))
            ts.icount += 1
            stats.fetched += 1
            stats.fetched_per_thread[ts.tid] += 1
            n += 1
            if instr.is_branch:
                pred = ts.predictor.predict(
                    instr.pc, instr.taken, instr.target
                )
                instr.prediction = pred
                if pred.mispredicted:
                    instr.mispredicted = True
                    ts.wait_branch = instr
                    break
                if instr.taken:
                    break  # fetch break at a predicted-taken branch
        return n

"""The fetch stage.

Per cycle, up to ``fetch_threads_per_cycle`` (2) threads share the
``fetch_width`` (8) fetch bandwidth, selected by the configured policy
(I-Count by default). A thread's fetch group ends at:

* a predicted-taken branch (fetch break),
* a mispredicted branch — the thread then stalls until the branch
  resolves (trace-driven simulation fetches no wrong-path instructions;
  the misprediction cost is the resolution bubble plus redirect penalty
  plus front-end refill),
* an instruction-cache miss (the thread stalls for the fill latency),
* a full front-end pipe (back-pressure from rename), or
* trace exhaustion.
"""

from __future__ import annotations

from repro.config.machine import MachineConfig
from repro.frontend.icount import icount_order, round_robin_order
from repro.isa.opcodes import OpClass


class FetchUnit:
    """Shared SMT fetch stage."""

    __slots__ = ("cfg", "_order", "_stall_gate")

    def __init__(self, cfg: MachineConfig) -> None:
        self.cfg = cfg
        self._order = (
            icount_order if cfg.fetch_policy == "icount" else round_robin_order
        )
        self._stall_gate = cfg.fetch_policy == "stall"

    # ------------------------------------------------------------------
    def fetch_cycle(self, core, cycle: int) -> int:
        """Run one fetch cycle; returns instructions fetched."""
        candidates = [
            ts for ts in core.threads if self._can_fetch(ts, cycle)
        ]
        if not candidates:
            return 0
        budget = self.cfg.fetch_width
        fetched = 0
        for ts in self._order(candidates, cycle)[: self.cfg.fetch_threads_per_cycle]:
            if budget <= 0:
                break
            n = self._fetch_thread(core, ts, cycle, budget)
            budget -= n
            fetched += n
        return fetched

    # ------------------------------------------------------------------
    def _can_fetch(self, ts, cycle: int) -> bool:
        if self._stall_gate and ts.pending_long_misses:
            # STALL policy [15]: no fetch while a memory-level miss is
            # outstanding for this thread.
            return False
        return (
            ts.fetch_idx < ts.trace_len
            and cycle >= ts.stalled_until
            and ts.wait_branch is None
            and len(ts.pipe) < ts.pipe_capacity
        )

    def _fetch_thread(self, core, ts, cycle: int, budget: int) -> int:
        trace = ts.trace
        # One icache probe per fetch group (line-granular behaviour is
        # dominated by the group head on these large lines).
        res = core.hierarchy.access_inst(trace.pc[ts.fetch_idx])
        if res.extra_latency:
            ts.stalled_until = cycle + res.extra_latency
            return 0
        exit_cycle = cycle + self.cfg.frontend_depth - 1
        stats = core.stats
        n = 0
        while (
            n < budget
            and ts.fetch_idx < ts.trace_len
            and len(ts.pipe) < ts.pipe_capacity
        ):
            idx = ts.fetch_idx
            instr = core.new_instr(ts, idx, cycle)
            ts.fetch_idx = idx + 1
            ts.pipe.append((exit_cycle, instr))
            ts.icount += 1
            stats.fetched += 1
            stats.fetched_per_thread[ts.tid] += 1
            n += 1
            if instr.op == OpClass.BRANCH:
                pred = ts.predictor.predict(
                    instr.pc, instr.taken, instr.target
                )
                instr.prediction = pred
                if pred.mispredicted:
                    instr.mispredicted = True
                    ts.wait_branch = instr
                    break
                if instr.taken:
                    break  # fetch break at a predicted-taken branch
        return n

"""Canonical machine presets.

``paper_machine`` is the exact Table 1 configuration; ``small_machine``
and ``tiny_machine`` shrink the window for fast unit tests while keeping
all mechanisms active.
"""

from __future__ import annotations

from repro.config.machine import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    MemoryConfig,
)


def paper_machine(iq_size: int = 64, scheduler: str = "traditional",
                  **overrides: object) -> MachineConfig:
    """The simulated processor of the paper's Table 1.

    Args:
        iq_size: issue queue capacity ("as specified" in Table 1; the
            evaluation sweeps 32, 48, 64, 96, 128).
        scheduler: one of :data:`repro.config.machine.SCHEDULER_KINDS`.
        overrides: any further ``MachineConfig`` field overrides.
    """
    return MachineConfig(iq_size=iq_size, scheduler=scheduler, **overrides)


def small_machine(iq_size: int = 16, scheduler: str = "traditional",
                  **overrides: object) -> MachineConfig:
    """A scaled-down machine for tests: 4-wide, small windows and caches."""
    defaults: dict[str, object] = dict(
        fetch_width=4,
        decode_width=4,
        dispatch_width=4,
        issue_width=4,
        commit_width=4,
        iq_size=iq_size,
        rob_size=32,
        lsq_size=16,
        int_phys_regs=96,
        fp_phys_regs=96,
        dispatch_buffer_depth=16,
        scheduler=scheduler,
        mem=MemoryConfig(
            l1i=CacheConfig(8 * 1024, 2, 64, 1),
            l1d=CacheConfig(8 * 1024, 4, 64, 1),
            l2=CacheConfig(128 * 1024, 8, 128, 10),
            memory_latency=100,
        ),
        bp=BranchPredictorConfig(
            gshare_entries=512, history_bits=8, btb_entries=256, btb_assoc=2
        ),
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)  # type: ignore[arg-type]


def tiny_machine(**overrides: object) -> MachineConfig:
    """Minimal machine for property tests — tiny windows stress-test
    structural-hazard and deadlock paths."""
    defaults: dict[str, object] = dict(
        fetch_width=2,
        decode_width=2,
        dispatch_width=2,
        issue_width=2,
        commit_width=2,
        fetch_threads_per_cycle=2,
        iq_size=4,
        rob_size=8,
        lsq_size=4,
        int_phys_regs=48,
        fp_phys_regs=48,
        dispatch_buffer_depth=4,
        frontend_depth=3,
        regread_stages=1,
        mem=MemoryConfig(
            l1i=CacheConfig(1024, 1, 64, 1),
            l1d=CacheConfig(1024, 2, 64, 1),
            l2=CacheConfig(8 * 1024, 4, 128, 6),
            memory_latency=40,
        ),
        bp=BranchPredictorConfig(
            gshare_entries=64, history_bits=4, btb_entries=64, btb_assoc=2
        ),
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)  # type: ignore[arg-type]

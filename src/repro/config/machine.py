"""Machine configuration dataclasses (paper Table 1).

Every microarchitectural knob of the simulator lives here, so an
experiment is fully described by (workload, ``MachineConfig``, seed,
instruction budget). Configurations are immutable; use
:meth:`MachineConfig.replace` to derive variants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.util.validate import check_positive, check_power_of_two, check_range

#: Scheduler/dispatch designs evaluated in the paper.
#:
#: ``traditional``  — 2 tag comparators per IQ entry, in-order dispatch.
#: ``2op_block``    — 1 comparator per entry; an instruction with two
#:                    non-ready sources blocks its thread at dispatch.
#: ``2op_ooo``      — 2OP_BLOCK plus out-of-order dispatch of hidden
#:                    dispatchable instructions (the paper's proposal).
#: ``2op_ooo_filtered`` — idealized variant that refuses to dispatch HDIs
#:                    that transitively depend on a prior NDI (§4 ablation).
SCHEDULER_KINDS = ("traditional", "2op_block", "2op_ooo", "2op_ooo_filtered")

#: Deadlock handling mechanisms for out-of-order dispatch (§4).
DEADLOCK_MODES = ("buffer", "watchdog")

#: Fetch policies implemented by the front end. ``icount`` is the
#: paper's baseline [16]; ``stall`` gates a thread's fetch while it has
#: an outstanding memory-level miss (STALL of Tullsen et al. [15],
#: discussed in the paper's related work); ``round_robin`` is the naive
#: reference.
FETCH_POLICIES = ("icount", "round_robin", "stall")


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of one set-associative cache."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("assoc", self.assoc)
        check_power_of_two("line_bytes", self.line_bytes)
        check_positive("hit_latency", self.hit_latency)
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(
                "cache size must be a multiple of assoc * line size: "
                f"{self.size_bytes} % ({self.assoc} * {self.line_bytes}) != 0"
            )
        check_power_of_two("num_sets", self.num_sets)

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the geometry."""
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True, slots=True)
class MemoryConfig:
    """Cache hierarchy + main memory latencies (paper Table 1)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 128, 1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 256, 1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 8, 512, 10)
    )
    memory_latency: int = 150

    def __post_init__(self) -> None:
        check_positive("memory_latency", self.memory_latency)


@dataclass(frozen=True, slots=True)
class BranchPredictorConfig:
    """Per-thread gshare + shared BTB (paper Table 1)."""

    gshare_entries: int = 2048
    history_bits: int = 10
    btb_entries: int = 2048
    btb_assoc: int = 2

    def __post_init__(self) -> None:
        check_power_of_two("gshare_entries", self.gshare_entries)
        check_range("history_bits", self.history_bits, 1, 30)
        check_power_of_two("btb_entries", self.btb_entries)
        check_positive("btb_assoc", self.btb_assoc)


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Full SMT machine description.

    Defaults reproduce Table 1 of the paper with a 64-entry issue queue
    and the traditional scheduler.
    """

    # -- widths ---------------------------------------------------------
    fetch_width: int = 8
    decode_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    #: Max threads fetched per cycle ("fetching was limited to two
    #: threads per cycle").
    fetch_threads_per_cycle: int = 2

    # -- window ---------------------------------------------------------
    iq_size: int = 64
    rob_size: int = 96  # per thread
    lsq_size: int = 48  # per thread
    int_phys_regs: int = 256
    fp_phys_regs: int = 256

    # -- functional units (Table 1) ---------------------------------------
    fu_int_alu: int = 8
    fu_int_muldiv: int = 4
    fu_mem_ports: int = 4
    fu_fp_add: int = 8
    fu_fp_muldiv: int = 4

    # -- pipeline depth --------------------------------------------------
    #: Stages from fetch to dispatch inclusive ("5-stage front-end").
    frontend_depth: int = 5
    #: Register-file access stages between issue and execute.
    regread_stages: int = 2

    # -- scheduler under study -------------------------------------------
    scheduler: str = "traditional"
    #: Per-thread buffer of renamed instructions awaiting dispatch; the
    #: out-of-order dispatch policy scans this buffer for HDIs. Not
    #: specified in the paper — see DESIGN.md §5.
    dispatch_buffer_depth: int = 32
    deadlock_mode: str = "buffer"
    deadlock_buffer_size: int = 1
    #: §4: when the deadlock-avoidance buffer holds instructions, the
    #: paper's simpler arbitration disables selection from the IQ
    #: entirely that cycle ("take precedence"); the default arbitrates
    #: (DAB first, then IQ). The paper reports the difference is
    #: negligible; bench_ablation_dab_exclusive verifies.
    dab_exclusive: bool = False
    #: Watchdog countdown used when ``deadlock_mode == "watchdog"``; the
    #: paper suggests 2–3x the memory latency.
    watchdog_cycles: int = 450

    # -- front end --------------------------------------------------------
    fetch_policy: str = "icount"
    #: Extra redirect bubble after a branch misprediction resolves (the
    #: front-end refill itself is modelled by the pipe depth).
    mispredict_redirect_penalty: int = 1

    # -- sanitizer (repro.analysis) ---------------------------------------
    #: Validate microarchitectural invariants inside the cycle loop (see
    #: :mod:`repro.analysis.sanitizer`). Off by default: experiments pay
    #: a single pointer test per cycle.
    sanitize: bool = False
    #: Cycles between whole-window sanitizer checks when enabled.
    sanitize_interval: int = 64
    #: A ready IQ entry unissued for longer than this raises
    #: ``issue-starvation`` (generous: normal select latency is tens of
    #: cycles even under full FU contention).
    sanitize_starvation_bound: int = 50_000

    # -- substrates -------------------------------------------------------
    mem: MemoryConfig = field(default_factory=MemoryConfig)
    bp: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "decode_width",
            "dispatch_width",
            "issue_width",
            "commit_width",
            "fetch_threads_per_cycle",
            "iq_size",
            "rob_size",
            "lsq_size",
            "int_phys_regs",
            "fp_phys_regs",
            "dispatch_buffer_depth",
            "deadlock_buffer_size",
            "watchdog_cycles",
            "fu_int_alu",
            "fu_int_muldiv",
            "fu_mem_ports",
            "fu_fp_add",
            "fu_fp_muldiv",
            "sanitize_interval",
            "sanitize_starvation_bound",
        ):
            check_positive(name, getattr(self, name))
        check_range("frontend_depth", self.frontend_depth, 2, 20)
        check_range("regread_stages", self.regread_stages, 0, 8)
        check_range(
            "mispredict_redirect_penalty", self.mispredict_redirect_penalty, 0, 64
        )
        if self.scheduler not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULER_KINDS}"
            )
        if self.deadlock_mode not in DEADLOCK_MODES:
            raise ValueError(
                f"unknown deadlock_mode {self.deadlock_mode!r}; expected one "
                f"of {DEADLOCK_MODES}"
            )
        if self.fetch_policy not in FETCH_POLICIES:
            raise ValueError(
                f"unknown fetch_policy {self.fetch_policy!r}; expected one of "
                f"{FETCH_POLICIES}"
            )

    # ------------------------------------------------------------------
    def replace(self, **changes: object) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @property
    def iq_comparators_per_entry(self) -> int:
        """Tag comparators per IQ entry implied by the scheduler kind."""
        return 2 if self.scheduler == "traditional" else 1

    @property
    def uses_ooo_dispatch(self) -> bool:
        """True for the paper's proposal (and its filtered ablation)."""
        return self.scheduler in ("2op_ooo", "2op_ooo_filtered")

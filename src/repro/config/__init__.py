"""Machine configuration objects and paper presets."""

from repro.config.machine import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    SCHEDULER_KINDS,
)
from repro.config.presets import paper_machine, small_machine, tiny_machine

__all__ = [
    "MachineConfig",
    "CacheConfig",
    "MemoryConfig",
    "BranchPredictorConfig",
    "SCHEDULER_KINDS",
    "paper_machine",
    "small_machine",
    "tiny_machine",
]

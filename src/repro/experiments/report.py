"""Plain-text rendering of experiment results.

The paper reports line charts; a terminal reproduction prints the same
series as aligned tables plus the headline same-size ratios the paper
quotes in its prose.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.figures import FigureResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 precision: int = 3) -> str:
    """Render rows as an aligned ASCII table."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.{precision}f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_figure(result: FigureResult, precision: int = 3) -> str:
    """Render a FigureResult as the table of its series."""
    scheds = sorted(result.series)
    headers = ["iq_size", *scheds]
    rows = result.rows()
    title = f"{result.figure}: {result.metric}"
    return f"{title}\n{format_table(headers, rows, precision)}"


def render_same_size_ratios(result: FigureResult, scheduler: str,
                            baseline: str) -> str:
    """Render per-IQ-size ratios of two schedulers (the paper's prose
    quotes these, e.g. 'OOO dispatch improves over 2OP_BLOCK by 22% for
    64-entry IQs')."""
    if scheduler not in result.series or baseline not in result.series:
        raise KeyError(
            f"series {scheduler!r}/{baseline!r} not in {sorted(result.series)}"
        )
    ratios = result.speedup_over(scheduler, baseline)
    rows = [
        (iq, f"{(r - 1) * 100:+.1f}%")
        for iq, r in zip(result.iq_sizes, ratios)
    ]
    return format_table(
        ["iq_size", f"{scheduler} vs {baseline}"], rows
    )


def render_dict(title: str, mapping: dict, precision: int = 4) -> str:
    """Render a flat or one-level-nested dict as a small table."""
    rows = []
    for key, value in mapping.items():
        if isinstance(value, dict):
            for sub, v in value.items():
                rows.append((f"{key}.{sub}", v))
        else:
            rows.append((str(key), value))
    return f"{title}\n{format_table(['statistic', 'value'], rows, precision)}"

"""Experiment drivers regenerating the paper's evaluation.

Every figure and in-text statistic of the paper maps to a function here;
see DESIGN.md §4 for the index and EXPERIMENTS.md for measured results.
"""

from repro.experiments.runner import (
    simulate_benchmark,
    simulate_mix,
    simulate_mix_with_fairness,
    solo_ipc,
)
from repro.experiments.sweep import SweepResult, run_sweep

__all__ = [
    "simulate_benchmark",
    "simulate_mix",
    "simulate_mix_with_fairness",
    "solo_ipc",
    "run_sweep",
    "SweepResult",
]

# Figure drivers, in-text statistics, plotting and the report renderers
# are imported lazily by their users (repro.experiments.figures,
# .intext, .plot, .report) to keep `import repro` light.

"""Drivers for the paper's in-text statistics (§3, §4, §5).

The paper quotes several numbers outside its figures; each function here
regenerates one of them:

* :func:`dispatch_stall_stats` — §3: percentage of cycles in which the
  dispatch of *all* threads stalls under 2OP_BLOCK conditions (paper:
  43 % / 17 % / 7 % for 2/3/4 threads at 64 entries).
* :func:`hdi_stats` — §4: share of instructions piled up behind an NDI
  that are themselves dispatchable (paper: ≈90 %), and the share of
  OOO-dispatched HDIs that transitively depend on a prior NDI
  (paper: ≈10 %).
* :func:`filtering_ablation` — §4: IPC gain of the idealized
  NDI-dependence filter over blind out-of-order dispatch (paper: ≈1.2 %).
* :func:`residency_stats` — §5: mean cycles an instruction waits in the
  IQ (paper, 2T@64: 21 cycles traditional → 15 with 2OP+OOO), and the
  collapse of the all-threads-stalled fraction under OOO dispatch
  (43 % → 0.2 %).
* :func:`deadlock_mechanism_stats` — §4: deadlock-avoidance-buffer
  utilisation, and the watchdog-timer alternative's flush count.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.config.machine import MachineConfig
from repro.config.presets import paper_machine
from repro.experiments.runner import simulate_mix
from repro.metrics.aggregate import harmonic_mean
from repro.workloads.mixes import Mix, mixes_for_threads


def _mixes(num_threads: int, max_mixes: int | None) -> list[Mix]:
    mixes = list(mixes_for_threads(num_threads))
    return mixes[:max_mixes] if max_mixes is not None else mixes


def dispatch_stall_stats(iq_size: int = 64, max_insns: int = 10_000,
                         seed: int = 0, max_mixes: int | None = None,
                         scheduler: str = "2op_block",
                         base_config: MachineConfig | None = None,
                         ) -> dict[int, float]:
    """§3 statistic: mean fraction of cycles with every thread blocked by
    the 2OP restriction, per thread count."""
    base = base_config if base_config is not None else paper_machine()
    cfg = base.replace(iq_size=iq_size, scheduler=scheduler)
    out: dict[int, float] = {}
    for threads in (2, 3, 4):
        fracs = [
            simulate_mix(m.benchmarks, cfg, max_insns, seed).extra(
                "all_blocked_2op_fraction"
            )
            for m in _mixes(threads, max_mixes)
        ]
        out[threads] = sum(fracs) / len(fracs)
    return out


@dataclass(frozen=True, slots=True)
class HdiStats:
    """§4 HDI statistics."""

    hdi_fraction: float
    ooo_ndi_dependent_fraction: float
    ooo_dispatched_per_kinsn: float


def hdi_stats(iq_size: int = 64, max_insns: int = 10_000, seed: int = 0,
              num_threads: int = 2, max_mixes: int | None = None,
              base_config: MachineConfig | None = None) -> HdiStats:
    """§4 statistics over the matching workload table.

    ``hdi_fraction`` is measured on the blocking (2OP_BLOCK) design — it
    samples what piles up behind NDIs; the NDI-dependence share is
    measured on the OOO design, which actually dispatches HDIs.
    """
    base = base_config if base_config is not None else paper_machine()
    mixes = _mixes(num_threads, max_mixes)
    block_cfg = base.replace(iq_size=iq_size, scheduler="2op_block")
    ooo_cfg = base.replace(iq_size=iq_size, scheduler="2op_ooo")
    hdi_fracs = []
    dep_fracs = []
    ooo_counts = []
    committed = []
    for m in mixes:
        rb = simulate_mix(m.benchmarks, block_cfg, max_insns, seed)
        hdi_fracs.append(rb.extra("hdi_fraction"))
        ro = simulate_mix(m.benchmarks, ooo_cfg, max_insns, seed)
        dep_fracs.append(ro.extra("ooo_ndi_dependent_fraction"))
        ooo_counts.append(ro.extra("ooo_dispatched"))
        committed.append(sum(ro.committed))
    return HdiStats(
        hdi_fraction=sum(hdi_fracs) / len(hdi_fracs),
        ooo_ndi_dependent_fraction=sum(dep_fracs) / len(dep_fracs),
        ooo_dispatched_per_kinsn=(
            1000.0 * sum(ooo_counts) / max(1, sum(committed))
        ),
    )


def filtering_ablation(iq_size: int = 64, max_insns: int = 10_000,
                       seed: int = 0, num_threads: int = 2,
                       max_mixes: int | None = None,
                       base_config: MachineConfig | None = None,
                       ) -> dict[str, float]:
    """§4 ablation: blind OOO dispatch vs idealized NDI-dependence filter.

    Returns hmean IPCs of both variants plus the relative gain; the paper
    measures only ≈1.2 % for perfect filtering, justifying the blind
    design.
    """
    base = base_config if base_config is not None else paper_machine()
    mixes = _mixes(num_threads, max_mixes)
    out: dict[str, float] = {}
    for sched in ("2op_ooo", "2op_ooo_filtered"):
        cfg = base.replace(iq_size=iq_size, scheduler=sched)
        ipcs = [
            simulate_mix(m.benchmarks, cfg, max_insns, seed).throughput_ipc
            for m in mixes
        ]
        out[sched] = harmonic_mean(ipcs)
    out["filter_gain"] = out["2op_ooo_filtered"] / out["2op_ooo"] - 1.0
    return out


def residency_stats(iq_size: int = 64, max_insns: int = 10_000,
                    seed: int = 0, num_threads: int = 2,
                    max_mixes: int | None = None,
                    base_config: MachineConfig | None = None,
                    ) -> dict[str, dict[str, float]]:
    """§5 statistics: mean IQ residency and all-blocked fraction for the
    traditional, 2OP_BLOCK and 2OP+OOO schedulers."""
    base = base_config if base_config is not None else paper_machine()
    mixes = _mixes(num_threads, max_mixes)
    out: dict[str, dict[str, float]] = {}
    for sched in ("traditional", "2op_block", "2op_ooo"):
        cfg = base.replace(iq_size=iq_size, scheduler=sched)
        residency = []
        blocked = []
        for m in mixes:
            r = simulate_mix(m.benchmarks, cfg, max_insns, seed)
            residency.append(r.extra("mean_iq_residency"))
            blocked.append(r.extra("all_blocked_2op_fraction"))
        out[sched] = {
            "mean_iq_residency": sum(residency) / len(residency),
            "all_blocked_fraction": sum(blocked) / len(blocked),
        }
    return out


def deadlock_mechanism_stats(iq_size: int = 32, max_insns: int = 10_000,
                             seed: int = 0, num_threads: int = 4,
                             max_mixes: int | None = None,
                             base_config: MachineConfig | None = None,
                             ) -> dict[str, dict[str, float]]:
    """§4 mechanism comparison: deadlock-avoidance buffer vs watchdog.

    Small IQ + many threads maximises pressure on the deadlock paths.
    Returns per-mechanism hmean IPC plus utilisation counters.
    """
    base = base_config if base_config is not None else paper_machine()
    mixes = _mixes(num_threads, max_mixes)
    out: dict[str, dict[str, float]] = {}
    for mode in ("buffer", "watchdog"):
        cfg = base.replace(
            iq_size=iq_size, scheduler="2op_ooo", deadlock_mode=mode
        )
        ipcs = []
        dab = 0.0
        flushes = 0.0
        for m in mixes:
            r = simulate_mix(m.benchmarks, cfg, max_insns, seed)
            ipcs.append(r.throughput_ipc)
            dab += r.extra("dab_inserts")
            flushes += r.extra("watchdog_flushes")
        out[mode] = {
            "hmean_ipc": harmonic_mean(ipcs),
            "dab_inserts": dab,
            "watchdog_flushes": flushes,
        }
    return out

"""Terminal line charts and CSV export for figure results.

matplotlib is not available in the reproduction environment, so the
figure drivers render to ASCII: good enough to eyeball the crossovers
the paper's line charts show, and diffable in CI. ``to_csv`` exports the
raw series for external plotting.
"""

from __future__ import annotations

import io
from collections.abc import Sequence

from repro.experiments.figures import FigureResult

#: Glyph per series, assigned in sorted-name order.
_MARKERS = "ox*+#@%&"


def ascii_chart(result: FigureResult, width: int = 64, height: int = 16,
                ) -> str:
    """Render a FigureResult as an ASCII line chart.

    The x axis spans the swept IQ sizes, the y axis the series values;
    each series uses one marker glyph (legend below the chart).
    """
    if width < 16 or height < 4:
        raise ValueError("chart needs at least 16x4 characters")
    names = sorted(result.series)
    xs = list(result.iq_sizes)
    all_vals = [v for name in names for v in result.series[name]]
    lo, hi = min(all_vals), max(all_vals)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    pad = (hi - lo) * 0.08
    lo -= pad
    hi += pad

    grid = [[" "] * width for _ in range(height)]
    x_min, x_max = xs[0], xs[-1]
    x_span = max(1, x_max - x_min)

    def col(x: float) -> int:
        return round((x - x_min) / x_span * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - lo) / (hi - lo) * (height - 1))

    for idx, name in enumerate(names):
        marker = _MARKERS[idx % len(_MARKERS)]
        series = result.series[name]
        # Interpolated polyline between sample points.
        for (x0, y0), (x1, y1) in zip(zip(xs, series), zip(xs[1:], series[1:])):
            c0, c1 = col(x0), col(x1)
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                r = row(y0 + t * (y1 - y0))
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in zip(xs, series):
            grid[row(y)][col(x)] = marker

    out = io.StringIO()
    out.write(f"{result.figure}: {result.metric}\n")
    for i, line in enumerate(grid):
        if i == 0:
            label = f"{hi:7.3f} |"
        elif i == height - 1:
            label = f"{lo:7.3f} |"
        else:
            label = "        |"
        out.write(label + "".join(line) + "\n")
    out.write("        +" + "-" * width + "\n")
    ticks = "         "
    for x in xs:
        ticks += f"{x:<8}" if col(x) < width - 8 else f"{x}"
        break
    axis = [" "] * (width + 9)
    for x in xs:
        s = str(x)
        start = 9 + min(col(x), width - len(s))
        for j, ch in enumerate(s):
            axis[start + j] = ch
    out.write("".join(axis).rstrip() + "\n")
    for idx, name in enumerate(names):
        out.write(f"  {_MARKERS[idx % len(_MARKERS)]} = {name}\n")
    return out.getvalue().rstrip()


def to_csv(result: FigureResult) -> str:
    """Export the series as CSV (header: iq_size, then schedulers)."""
    names = sorted(result.series)
    lines = ["iq_size," + ",".join(names)]
    for i, iq in enumerate(result.iq_sizes):
        lines.append(
            f"{iq}," + ",".join(f"{result.series[n][i]:.6f}" for n in names)
        )
    return "\n".join(lines)


def sweep_to_csv(sweep, key: str = "throughput_ipc") -> str:
    """Export every grid point of a SweepResult as long-form CSV."""
    lines = [f"scheduler,iq_size,mix,{key}"]
    for (sched, iq, mix), result in sorted(sweep.results.items()):
        if key == "throughput_ipc":
            value = result.throughput_ipc
        else:
            value = result.extra(key)
        lines.append(f"{sched},{iq},{mix},{value:.6f}")
    return "\n".join(lines)

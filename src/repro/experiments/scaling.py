"""Thread-count and IQ-size scaling study (the paper's §5 conclusion).

The paper's closing claim: "the performance of 2OP_BLOCK with
out-of-order dispatch scales much better with both the number of threads
and the IQ size compared to either the traditional design or 2OP_BLOCK
alone." This driver quantifies both scaling axes in one table:

* per scheduler, IPC versus thread count at a fixed IQ size, and
* per scheduler, the IQ-size scaling slope (IPC at the largest over the
  smallest swept size), whose ordering demonstrates the claim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.config.machine import MachineConfig
from repro.config.presets import paper_machine
from repro.exec import ExecutorConfig, SimJob, execute_jobs
from repro.metrics.aggregate import harmonic_mean
from repro.workloads.mixes import mixes_for_threads

SCHEDULERS = ("traditional", "2op_block", "2op_ooo")


@dataclass(slots=True)
class ScalingResult:
    """IPC grid over (scheduler, thread count, IQ size)."""

    thread_counts: tuple[int, ...]
    iq_sizes: tuple[int, ...]
    #: (scheduler, threads, iq) -> hmean IPC over mixes.
    ipc: dict[tuple[str, int, int], float] = field(default_factory=dict)

    def thread_scaling(self, scheduler: str, iq_size: int) -> list[float]:
        """IPC per thread count, normalised to the 2-thread point."""
        base = self.ipc[(scheduler, self.thread_counts[0], iq_size)]
        return [
            self.ipc[(scheduler, t, iq_size)] / base
            for t in self.thread_counts
        ]

    def iq_scaling(self, scheduler: str, threads: int) -> float:
        """IPC at the largest swept IQ over the smallest (slope proxy)."""
        lo = self.ipc[(scheduler, threads, self.iq_sizes[0])]
        hi = self.ipc[(scheduler, threads, self.iq_sizes[-1])]
        return hi / lo

    def rows(self) -> list[tuple]:
        """Tabular form: (scheduler, threads, iq, hmean ipc)."""
        return [
            (s, t, q, self.ipc[(s, t, q)])
            for (s, t, q) in sorted(self.ipc)
        ]


def run_scaling(thread_counts: Sequence[int] = (2, 3, 4),
                iq_sizes: Sequence[int] = (32, 64, 96),
                max_insns: int = 8_000, seed: int = 0,
                max_mixes: int | None = 6,
                base_config: MachineConfig | None = None,
                progress=None,
                executor: ExecutorConfig | None = None) -> ScalingResult:
    """Run the scaling grid over the paper's workload tables.

    The grid is routed through :func:`repro.exec.execute_jobs`;
    ``executor`` selects worker count and caching (None = in-process,
    uncached, byte-identical to any parallel run).
    """
    base = base_config if base_config is not None else paper_machine()
    result = ScalingResult(
        thread_counts=tuple(thread_counts), iq_sizes=tuple(iq_sizes)
    )
    keyed: list[tuple[tuple[str, int, int], SimJob]] = []
    for threads in thread_counts:
        mixes = list(mixes_for_threads(threads))
        if max_mixes is not None:
            mixes = mixes[:max_mixes]
        for scheduler in SCHEDULERS:
            for iq_size in iq_sizes:
                cfg = base.replace(scheduler=scheduler, iq_size=iq_size)
                for m in mixes:
                    keyed.append(((scheduler, threads, iq_size), SimJob(
                        benchmarks=tuple(m.benchmarks), config=cfg,
                        max_insns=max_insns, seed=seed,
                    )))
    payloads, _ = execute_jobs([job for _, job in keyed], executor)
    cells: dict[tuple[str, int, int], list[float]] = {}
    for (key, _), payload in zip(keyed, payloads):
        cells.setdefault(key, []).append(payload.result.throughput_ipc)
    for key in sorted(cells, key=lambda k: (k[1], SCHEDULERS.index(k[0]), k[2])):
        scheduler, threads, iq_size = key
        result.ipc[key] = harmonic_mean(cells[key])
        if progress is not None:
            progress(
                f"{scheduler:>12} {threads}T iq={iq_size}: "
                f"{result.ipc[key]:.3f}"
            )
    return result

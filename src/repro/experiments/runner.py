"""Single-run experiment entry points.

These are the building blocks of every figure driver: simulate one
benchmark or one mix on one machine configuration, deterministically.

Trace seeds depend only on ``(benchmark, occurrence-in-mix, root seed)``
— *not* on the machine configuration — so every scheduler and IQ size
sees byte-identical instruction streams, and a benchmark's single-thread
baseline run replays exactly the trace its first in-mix occurrence
executes (required for the weighted-IPC fairness metric).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config.machine import MachineConfig
from repro.metrics.fairness import harmonic_weighted_ipc
from repro.metrics.ipc import SimResult
from repro.pipeline.smt_core import SMTProcessor
from repro.trace.generator import Trace, generate_trace
from repro.util.rng import derive_seed

#: Extra trace instructions beyond the commit budget, covering in-flight
#: slack so no thread's trace runs dry before the fastest thread finishes.
TRACE_SLACK = 4096

#: Default functional warmup (branch predictors + caches) preceding the
#: measured region, standing in for the paper's SimPoint fast-forward.
DEFAULT_WARMUP = 30_000


def default_warmup(max_insns: int) -> int:
    """Warmup length used when the caller does not override it."""
    return max(DEFAULT_WARMUP, max_insns)


def thread_traces(benchmarks: Sequence[str], max_insns: int, seed: int,
                  warmup: int) -> list[Trace]:
    """Generate (or fetch cached) traces for each mix slot."""
    seen: dict[str, int] = {}
    traces = []
    for name in benchmarks:
        occurrence = seen.get(name, 0)
        seen[name] = occurrence + 1
        traces.append(
            generate_trace(
                name,
                warmup + max_insns + TRACE_SLACK,
                derive_seed(seed, "slot", name, occurrence),
            )
        )
    return traces


def simulate_mix(benchmarks: Sequence[str], config: MachineConfig,
                 max_insns: int = 20_000, seed: int = 0,
                 max_cycles: int = 5_000_000,
                 warmup: int | None = None) -> SimResult:
    """Simulate a multithreaded mix; stops when any thread commits
    ``max_insns`` instructions (the paper's stopping rule).

    ``warmup`` instructions per thread are replayed functionally into the
    branch predictors and caches first (SimPoint-style warm state);
    defaults to :func:`default_warmup`.
    """
    if warmup is None:
        warmup = default_warmup(max_insns)
    traces = thread_traces(benchmarks, max_insns, seed, warmup)
    core = SMTProcessor(config, traces, warmup=warmup)
    stats = core.run(max_insns, max_cycles=max_cycles)
    return SimResult.from_stats(
        tuple(benchmarks), config.scheduler, config.iq_size, stats
    )


def simulate_benchmark(name: str, config: MachineConfig,
                       max_insns: int = 20_000, seed: int = 0,
                       max_cycles: int = 5_000_000,
                       warmup: int | None = None) -> SimResult:
    """Simulate one benchmark alone (single-thread baseline)."""
    return simulate_mix([name], config, max_insns, seed, max_cycles, warmup)


# ---------------------------------------------------------------------------
# single-thread baseline cache (fairness metric)
# ---------------------------------------------------------------------------

_SOLO_CACHE: dict[tuple, float] = {}


def solo_ipc(name: str, config: MachineConfig, max_insns: int = 20_000,
             seed: int = 0) -> float:
    """Single-thread IPC of ``name`` on ``config`` (memoised).

    The paper weights each thread's in-mix IPC by its stand-alone IPC on
    the same machine; these runs are shared across every mix touching
    the benchmark.
    """
    key = (name, config, max_insns, seed)
    ipc = _SOLO_CACHE.get(key)
    if ipc is None:
        ipc = simulate_benchmark(name, config, max_insns, seed).throughput_ipc
        _SOLO_CACHE[key] = ipc
    return ipc


def clear_solo_cache() -> None:
    """Drop memoised single-thread baselines (tests)."""
    _SOLO_CACHE.clear()


def simulate_mix_with_fairness(benchmarks: Sequence[str],
                               config: MachineConfig,
                               max_insns: int = 20_000, seed: int = 0,
                               ) -> tuple[SimResult, float]:
    """Simulate a mix and also compute the fairness metric.

    Returns ``(result, harmonic mean of weighted IPCs)``. The weighting
    baselines are single-thread runs on the *traditional-scheduler*
    machine of the same capacity: weights must be scheme-independent for
    the paper's cross-scheduler fairness comparisons (Figures 4/6/8) to
    be meaningful — weighting each scheme by its own throttled solo IPCs
    would reward schemes for slowing everything down uniformly.
    """
    result = simulate_mix(benchmarks, config, max_insns, seed)
    baseline_cfg = (
        config if config.scheduler == "traditional"
        else config.replace(scheduler="traditional")
    )
    alone = [solo_ipc(b, baseline_cfg, max_insns, seed) for b in benchmarks]
    fairness = harmonic_weighted_ipc(result.per_thread_ipc, alone)
    return result, fairness

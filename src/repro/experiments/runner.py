"""Single-run experiment entry points.

These are the building blocks of every figure driver: simulate one
benchmark or one mix on one machine configuration, deterministically.

Trace seeds depend only on ``(benchmark, occurrence-in-mix, root seed)``
— *not* on the machine configuration — so every scheduler and IQ size
sees byte-identical instruction streams, and a benchmark's single-thread
baseline run replays exactly the trace its first in-mix occurrence
executes (required for the weighted-IPC fairness metric).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config.machine import MachineConfig
from repro.metrics.fairness import harmonic_weighted_ipc
from repro.metrics.ipc import SimResult
from repro.pipeline.smt_core import SMTProcessor
from repro.trace.generator import Trace, generate_trace
from repro.util.rng import derive_seed

#: Extra trace instructions beyond the commit budget, covering in-flight
#: slack so no thread's trace runs dry before the fastest thread finishes.
TRACE_SLACK = 4096

#: Default functional warmup (branch predictors + caches) preceding the
#: measured region, standing in for the paper's SimPoint fast-forward.
DEFAULT_WARMUP = 30_000


def default_warmup(max_insns: int) -> int:
    """Warmup length used when the caller does not override it."""
    return max(DEFAULT_WARMUP, max_insns)


#: Per-process memo of slot traces keyed by
#: ``(benchmark, occurrence, root seed, length)``. The generator keeps
#: its own 64-entry FIFO, but a fairness sweep touches more distinct
#: traces than that bound holds (up to 4 slots x 12 mixes plus one solo
#: baseline per benchmark), so relying on it alone silently regenerated
#: traces on later grid points. This memo pins every slot trace for the
#: life of the process instead.
_SLOT_TRACE_CACHE: dict[tuple[str, int, int, int], Trace] = {}
_SLOT_TRACE_CACHE_MAX = 512


def thread_traces(benchmarks: Sequence[str], max_insns: int, seed: int,
                  warmup: int) -> list[Trace]:
    """Traces for each mix slot, memoised within this process.

    The memo is keyed by ``(benchmark, occurrence-in-mix, root seed,
    length)`` — exactly the inputs the derived trace depends on — so
    every grid point of a sweep reuses one generated trace per slot
    rather than regenerating it. The memo is per-process: parallel sweep
    workers (:mod:`repro.exec.pool`) each build their own, and it is
    bounded at :data:`_SLOT_TRACE_CACHE_MAX` entries (FIFO eviction).
    """
    seen: dict[str, int] = {}
    traces = []
    length = warmup + max_insns + TRACE_SLACK
    for name in benchmarks:
        occurrence = seen.get(name, 0)
        seen[name] = occurrence + 1
        key = (name, occurrence, seed, length)
        trace = _SLOT_TRACE_CACHE.get(key)
        if trace is None:
            trace = generate_trace(
                name, length, derive_seed(seed, "slot", name, occurrence)
            )
            if len(_SLOT_TRACE_CACHE) >= _SLOT_TRACE_CACHE_MAX:
                _SLOT_TRACE_CACHE.pop(next(iter(_SLOT_TRACE_CACHE)))
            _SLOT_TRACE_CACHE[key] = trace
        traces.append(trace)
    return traces


def clear_slot_trace_cache() -> None:
    """Drop memoised slot traces (tests)."""
    _SLOT_TRACE_CACHE.clear()


def simulate_mix(benchmarks: Sequence[str], config: MachineConfig,
                 max_insns: int = 20_000, seed: int = 0,
                 max_cycles: int = 5_000_000,
                 warmup: int | None = None) -> SimResult:
    """Simulate a multithreaded mix; stops when any thread commits
    ``max_insns`` instructions (the paper's stopping rule).

    ``warmup`` instructions per thread are replayed functionally into the
    branch predictors and caches first (SimPoint-style warm state);
    defaults to :func:`default_warmup`.
    """
    if warmup is None:
        warmup = default_warmup(max_insns)
    traces = thread_traces(benchmarks, max_insns, seed, warmup)
    core = SMTProcessor(config, traces, warmup=warmup)
    stats = core.run(max_insns, max_cycles=max_cycles)
    return SimResult.from_stats(
        tuple(benchmarks), config.scheduler, config.iq_size, stats
    )


def simulate_benchmark(name: str, config: MachineConfig,
                       max_insns: int = 20_000, seed: int = 0,
                       max_cycles: int = 5_000_000,
                       warmup: int | None = None) -> SimResult:
    """Simulate one benchmark alone (single-thread baseline)."""
    return simulate_mix([name], config, max_insns, seed, max_cycles, warmup)


# ---------------------------------------------------------------------------
# single-thread baseline cache (fairness metric)
# ---------------------------------------------------------------------------

_SOLO_CACHE: dict[tuple, float] = {}


def solo_ipc(name: str, config: MachineConfig, max_insns: int = 20_000,
             seed: int = 0) -> float:
    """Single-thread IPC of ``name`` on ``config`` (memoised).

    The paper weights each thread's in-mix IPC by its stand-alone IPC on
    the same machine; these runs are shared across every mix touching
    the benchmark.
    """
    key = (name, config, max_insns, seed)
    ipc = _SOLO_CACHE.get(key)
    if ipc is None:
        ipc = simulate_benchmark(name, config, max_insns, seed).throughput_ipc
        _SOLO_CACHE[key] = ipc
    return ipc


def clear_solo_cache() -> None:
    """Drop memoised single-thread baselines (tests)."""
    _SOLO_CACHE.clear()


def simulate_mix_with_fairness(benchmarks: Sequence[str],
                               config: MachineConfig,
                               max_insns: int = 20_000, seed: int = 0,
                               ) -> tuple[SimResult, float]:
    """Simulate a mix and also compute the fairness metric.

    Returns ``(result, harmonic mean of weighted IPCs)``. The weighting
    baselines are single-thread runs on the *traditional-scheduler*
    machine of the same capacity: weights must be scheme-independent for
    the paper's cross-scheduler fairness comparisons (Figures 4/6/8) to
    be meaningful — weighting each scheme by its own throttled solo IPCs
    would reward schemes for slowing everything down uniformly.
    """
    result = simulate_mix(benchmarks, config, max_insns, seed)
    baseline_cfg = (
        config if config.scheduler == "traditional"
        else config.replace(scheduler="traditional")
    )
    alone = [solo_ipc(b, baseline_cfg, max_insns, seed) for b in benchmarks]
    fairness = harmonic_weighted_ipc(result.per_thread_ipc, alone)
    return result, fairness

"""Command-line entry point (``repro-smt``).

Examples::

    repro-smt classify                      # Tables 2-4 ILP classes
    repro-smt figure 1 --insns 10000        # regenerate Figure 1
    repro-smt figure 7 --mixes 6            # Figure 7 on 6 mixes
    repro-smt figure 3 --jobs 4 --cache     # parallel + incremental
    repro-smt stalls                        # §3 stall percentages
    repro-smt mix parser vortex --iq 64 --scheduler 2op_ooo
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.config.machine import SCHEDULER_KINDS
from repro.config.presets import paper_machine


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--insns", type=int, default=10_000,
                   help="committed instructions per thread (default 10000)")
    p.add_argument("--seed", type=int, default=0, help="trace seed")
    p.add_argument("--mixes", type=int, default=None,
                   help="limit to the first N mixes of each table")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt",
        description="SMT out-of-order dispatch reproduction "
                    "(Sharkey & Ponomarev, ICPP 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", choices=["1", "3", "4", "5", "6", "7", "8"])
    p.add_argument("--iq-sizes", type=int, nargs="+",
                   default=[32, 48, 64, 96, 128])
    p.add_argument("--csv", action="store_true",
                   help="emit the raw series as CSV instead of tables")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the grid (default: "
                        "$REPRO_JOBS or 1)")
    p.add_argument("--cache", action="store_true",
                   help="serve repeated grid points from the "
                        "content-addressed result cache (see docs/exec.md)")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="cache root (default: $REPRO_CACHE_DIR or "
                        "results/cache); implies --cache")
    p.add_argument("--journal", type=str, nargs="?", const="", default=None,
                   metavar="DIR",
                   help="append a crash-safe run journal per grid "
                        "(default dir: $REPRO_JOURNAL or results/journal; "
                        "see docs/robustness.md)")
    p.add_argument("--resume", action="store_true",
                   help="replay completed jobs from existing journals "
                        "instead of re-simulating them; implies --journal")
    p.add_argument("--server", type=str, default=None, metavar="URL",
                   help="route the grid through a repro.serve sweep "
                        "server (http://host:port); overrides "
                        "$REPRO_SERVER (see docs/distributed.md)")
    _add_common(p)

    p = sub.add_parser("classify", help="single-thread ILP classification")
    p.add_argument("--insns", type=int, default=16_000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("stalls", help="§3 all-threads-stalled statistics")
    p.add_argument("--iq", type=int, default=64)
    _add_common(p)

    p = sub.add_parser("hdi", help="§4 HDI statistics")
    p.add_argument("--iq", type=int, default=64)
    p.add_argument("--threads", type=int, default=2, choices=[2, 3, 4])
    _add_common(p)

    p = sub.add_parser("residency", help="§5 IQ residency statistics")
    p.add_argument("--iq", type=int, default=64)
    p.add_argument("--threads", type=int, default=2, choices=[2, 3, 4])
    _add_common(p)

    p = sub.add_parser("mix", help="simulate an ad-hoc mix")
    p.add_argument("benchmarks", nargs="+")
    p.add_argument("--iq", type=int, default=64)
    p.add_argument("--scheduler", choices=SCHEDULER_KINDS,
                   default="traditional")
    p.add_argument("--sanitize", action="store_true",
                   help="validate microarchitectural invariants during the "
                        "run (repro.analysis pipeline sanitizer)")
    _add_common(p)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "figure":
        from repro.exec import ExecutorConfig
        from repro.experiments.figures import FIGURE_DRIVERS
        from repro.experiments.plot import ascii_chart, to_csv
        from repro.experiments.report import render_figure

        executor = ExecutorConfig.from_env(default_cache=args.cache)
        if args.jobs is not None:
            executor = dataclasses.replace(executor, jobs=max(1, args.jobs))
        if args.cache_dir is not None:
            executor = executor.with_cache_dir(args.cache_dir)
        if args.server is not None:
            executor = dataclasses.replace(executor, server=args.server)
        if args.journal is not None or args.resume:
            from repro.exec import default_journal_dir

            journal_dir = args.journal or default_journal_dir()
            executor = dataclasses.replace(
                executor, journal_dir=journal_dir, resume=args.resume
            )

        driver = FIGURE_DRIVERS[args.number]
        result = driver(
            max_insns=args.insns, seed=args.seed,
            iq_sizes=tuple(args.iq_sizes), max_mixes=args.mixes,
            progress=lambda line: print(line, file=sys.stderr),
            executor=executor,
        )
        if args.csv:
            print(to_csv(result))
        else:
            print(render_figure(result))
            if len(result.iq_sizes) > 1:
                print()
                print(ascii_chart(result))
        return 0

    if args.command == "classify":
        from repro.experiments.report import format_table
        from repro.trace.classify import classify_all

        rows = [
            (c.name, f"{c.ipc:.3f}", c.ilp_class, c.target_class,
             "ok" if c.matches_target else "MISMATCH")
            for c in classify_all(max_insns=args.insns, seed=args.seed)
        ]
        print(format_table(
            ["benchmark", "ipc", "measured", "target", "status"], rows
        ))
        return 0

    if args.command == "stalls":
        from repro.experiments.intext import dispatch_stall_stats
        from repro.experiments.report import render_dict

        stats = dispatch_stall_stats(
            iq_size=args.iq, max_insns=args.insns, seed=args.seed,
            max_mixes=args.mixes,
        )
        print(render_dict(
            f"all-threads 2OP-stalled cycle fraction @ {args.iq}-entry IQ "
            "(paper: 0.43 / 0.17 / 0.07)",
            {f"{k} threads": v for k, v in stats.items()},
        ))
        return 0

    if args.command == "hdi":
        from repro.experiments.intext import hdi_stats
        from repro.experiments.report import render_dict

        stats = hdi_stats(
            iq_size=args.iq, max_insns=args.insns, seed=args.seed,
            num_threads=args.threads, max_mixes=args.mixes,
        )
        print(render_dict(
            "HDI statistics (paper: hdi_fraction ~0.90, "
            "ndi-dependent ~0.10)",
            {
                "hdi_fraction": stats.hdi_fraction,
                "ooo_ndi_dependent_fraction":
                    stats.ooo_ndi_dependent_fraction,
                "ooo_dispatched_per_kinsn": stats.ooo_dispatched_per_kinsn,
            },
        ))
        return 0

    if args.command == "residency":
        from repro.experiments.intext import residency_stats
        from repro.experiments.report import render_dict

        stats = residency_stats(
            iq_size=args.iq, max_insns=args.insns, seed=args.seed,
            num_threads=args.threads, max_mixes=args.mixes,
        )
        print(render_dict(
            f"IQ residency @ {args.iq} entries, {args.threads} threads "
            "(paper 2T@64: 21cy traditional -> 15cy 2OP+OOO)",
            stats,
        ))
        return 0

    if args.command == "mix":
        from repro.experiments.runner import simulate_mix
        from repro.experiments.report import render_dict

        cfg = paper_machine(iq_size=args.iq, scheduler=args.scheduler,
                            sanitize=args.sanitize)
        result = simulate_mix(
            args.benchmarks, cfg, max_insns=args.insns, seed=args.seed
        )
        summary = {
            "throughput_ipc": result.throughput_ipc,
            **{
                f"ipc[{b}#{i}]": ipc
                for i, (b, ipc) in enumerate(
                    zip(result.benchmarks, result.per_thread_ipc)
                )
            },
            "cycles": result.cycles,
            "all_blocked_2op_fraction":
                result.extra("all_blocked_2op_fraction"),
            "mean_iq_residency": result.extra("mean_iq_residency"),
        }
        if args.sanitize:
            summary["sanitizer_checks"] = result.extra("sanitizer_checks")
        print(render_dict(
            f"{'+'.join(args.benchmarks)} @ {args.scheduler}/iq{args.iq}",
            summary,
        ))
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Configuration sweeps over (scheduler, IQ size, mix).

The paper's evaluation is a grid: three scheduler designs x five IQ
sizes x 12 mixes per thread count. ``run_sweep`` executes the grid and
returns an indexable result set the figure drivers aggregate.

Every grid point is expressed as a :class:`repro.exec.SimJob` and routed
through :func:`repro.exec.execute_jobs`, so a sweep can run on a forked
worker pool (``executor=ExecutorConfig(jobs=N)``) and/or be served from
the content-addressed result cache. The default (``executor=None``)
executes in-process with no cache — identical behaviour and results to
the historical serial loop.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.config.machine import MachineConfig
from repro.exec import ExecProgress, ExecReport, ExecutorConfig, execute_jobs, jobs_for_grid
from repro.metrics.aggregate import harmonic_mean
from repro.metrics.ipc import SimResult
from repro.workloads.mixes import Mix

#: IQ sizes swept in the paper's figures.
PAPER_IQ_SIZES = (32, 48, 64, 96, 128)

#: Scheduler designs compared in Figures 3-8.
PAPER_SCHEDULERS = ("traditional", "2op_block", "2op_ooo")


@dataclass(slots=True)
class SweepResult:
    """Results of a (scheduler, IQ size, mix) grid."""

    results: dict[tuple[str, int, str], SimResult] = field(
        default_factory=dict
    )
    fairness: dict[tuple[str, int, str], float] = field(default_factory=dict)
    #: Execution counts of the run that produced this sweep (cached vs
    #: simulated grid points); None for hand-assembled results.
    exec_report: ExecReport | None = None

    def get(self, scheduler: str, iq_size: int, mix_name: str) -> SimResult:
        """Result of one grid point."""
        return self.results[(scheduler, iq_size, mix_name)]

    def mix_names(self) -> list[str]:
        """All mix names present, sorted."""
        return sorted({k[2] for k in self.results})

    # ------------------------------------------------------------------
    def hmean_ipc(self, scheduler: str, iq_size: int) -> float:
        """Harmonic-mean throughput IPC across mixes (paper §5)."""
        ipcs = [
            r.throughput_ipc
            for (s, q, _), r in self.results.items()
            if s == scheduler and q == iq_size
        ]
        return harmonic_mean(ipcs)

    def hmean_fairness(self, scheduler: str, iq_size: int) -> float:
        """Harmonic-mean fairness metric across mixes."""
        vals = [
            v
            for (s, q, _), v in self.fairness.items()
            if s == scheduler and q == iq_size
        ]
        return harmonic_mean(vals)

    def mean_extra(self, scheduler: str, iq_size: int, key: str) -> float:
        """Arithmetic mean of a diagnostic statistic across mixes."""
        vals = [
            r.extra(key)
            for (s, q, _), r in self.results.items()
            if s == scheduler and q == iq_size
        ]
        if not vals:
            raise KeyError(f"no results for {scheduler}@{iq_size}")
        return sum(vals) / len(vals)


def run_sweep(mixes: Sequence[Mix], base_config: MachineConfig,
              schedulers: Sequence[str] = PAPER_SCHEDULERS,
              iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
              max_insns: int = 20_000, seed: int = 0,
              with_fairness: bool = False,
              progress: Callable[[str], None] | None = None,
              executor: ExecutorConfig | None = None) -> SweepResult:
    """Run the full grid.

    Args:
        mixes: workloads to simulate (e.g. a subset of Table 2-4 mixes).
        base_config: machine template; scheduler and IQ size are swept.
        schedulers: scheduler kinds to compare.
        iq_sizes: issue-queue capacities to sweep.
        max_insns: per-thread commit budget (the paper uses 100 M; scale
            down for tractable pure-Python runs — shapes are stable from
            a few tens of thousands of instructions, see EXPERIMENTS.md).
        seed: root seed for trace generation.
        with_fairness: also run single-thread baselines and compute the
            fairness metric per grid point.
        progress: optional callback receiving a human-readable line per
            completed grid point (in completion order, which only matches
            grid order for in-process execution).
        executor: parallelism/caching policy (:class:`ExecutorConfig`);
            None executes in-process with no cache. Results are
            byte-identical regardless of worker count or cache state.
    """
    keyed = jobs_for_grid(
        mixes, base_config, schedulers, iq_sizes, max_insns, seed,
        with_fairness=with_fairness,
    )
    mix_names = {tuple(m.benchmarks): m.name for m in mixes}

    def _line(event: ExecProgress) -> None:
        if event.payload is None:
            return
        result = event.payload.result
        mix_name = mix_names.get(event.job.benchmarks,
                                 "+".join(event.job.benchmarks))
        progress(
            f"{result.scheduler:>12} iq={result.iq_size:<4} {mix_name}: "
            f"IPC={result.throughput_ipc:.3f}"
        )

    payloads, report = execute_jobs(
        [job for _, job in keyed], executor,
        progress=_line if progress is not None else None,
    )
    out = SweepResult(exec_report=report)
    for (key, _), payload in zip(keyed, payloads):
        out.results[key] = payload.result
        if with_fairness and payload.fairness is not None:
            out.fairness[key] = payload.fairness
    return out

"""Configuration sweeps over (scheduler, IQ size, mix).

The paper's evaluation is a grid: three scheduler designs x five IQ
sizes x 12 mixes per thread count. ``run_sweep`` executes the grid and
returns an indexable result set the figure drivers aggregate.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.config.machine import MachineConfig
from repro.metrics.aggregate import harmonic_mean
from repro.metrics.ipc import SimResult
from repro.workloads.mixes import Mix

#: IQ sizes swept in the paper's figures.
PAPER_IQ_SIZES = (32, 48, 64, 96, 128)

#: Scheduler designs compared in Figures 3-8.
PAPER_SCHEDULERS = ("traditional", "2op_block", "2op_ooo")


@dataclass(slots=True)
class SweepResult:
    """Results of a (scheduler, IQ size, mix) grid."""

    results: dict[tuple[str, int, str], SimResult] = field(
        default_factory=dict
    )
    fairness: dict[tuple[str, int, str], float] = field(default_factory=dict)

    def get(self, scheduler: str, iq_size: int, mix_name: str) -> SimResult:
        """Result of one grid point."""
        return self.results[(scheduler, iq_size, mix_name)]

    def mix_names(self) -> list[str]:
        """All mix names present, sorted."""
        return sorted({k[2] for k in self.results})

    # ------------------------------------------------------------------
    def hmean_ipc(self, scheduler: str, iq_size: int) -> float:
        """Harmonic-mean throughput IPC across mixes (paper §5)."""
        ipcs = [
            r.throughput_ipc
            for (s, q, _), r in self.results.items()
            if s == scheduler and q == iq_size
        ]
        return harmonic_mean(ipcs)

    def hmean_fairness(self, scheduler: str, iq_size: int) -> float:
        """Harmonic-mean fairness metric across mixes."""
        vals = [
            v
            for (s, q, _), v in self.fairness.items()
            if s == scheduler and q == iq_size
        ]
        return harmonic_mean(vals)

    def mean_extra(self, scheduler: str, iq_size: int, key: str) -> float:
        """Arithmetic mean of a diagnostic statistic across mixes."""
        vals = [
            r.extra(key)
            for (s, q, _), r in self.results.items()
            if s == scheduler and q == iq_size
        ]
        if not vals:
            raise KeyError(f"no results for {scheduler}@{iq_size}")
        return sum(vals) / len(vals)


def run_sweep(mixes: Sequence[Mix], base_config: MachineConfig,
              schedulers: Sequence[str] = PAPER_SCHEDULERS,
              iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
              max_insns: int = 20_000, seed: int = 0,
              with_fairness: bool = False,
              progress: Callable[[str], None] | None = None) -> SweepResult:
    """Run the full grid.

    Args:
        mixes: workloads to simulate (e.g. a subset of Table 2-4 mixes).
        base_config: machine template; scheduler and IQ size are swept.
        schedulers: scheduler kinds to compare.
        iq_sizes: issue-queue capacities to sweep.
        max_insns: per-thread commit budget (the paper uses 100 M; scale
            down for tractable pure-Python runs — shapes are stable from
            a few tens of thousands of instructions, see EXPERIMENTS.md).
        seed: root seed for trace generation.
        with_fairness: also run single-thread baselines and compute the
            fairness metric per grid point.
        progress: optional callback receiving a human-readable line per
            completed grid point.
    """
    from repro.experiments.runner import simulate_mix, simulate_mix_with_fairness

    out = SweepResult()
    for scheduler in schedulers:
        for iq_size in iq_sizes:
            cfg = base_config.replace(scheduler=scheduler, iq_size=iq_size)
            for mix in mixes:
                if with_fairness:
                    result, fair = simulate_mix_with_fairness(
                        mix.benchmarks, cfg, max_insns, seed
                    )
                    out.fairness[(scheduler, iq_size, mix.name)] = fair
                else:
                    result = simulate_mix(mix.benchmarks, cfg, max_insns, seed)
                out.results[(scheduler, iq_size, mix.name)] = result
                if progress is not None:
                    progress(
                        f"{scheduler:>12} iq={iq_size:<4} {mix.name}: "
                        f"IPC={result.throughput_ipc:.3f}"
                    )
    return out

"""Drivers regenerating the paper's Figures 1 and 3–8.

Each driver returns a :class:`FigureResult` holding the same series the
paper plots (one value per IQ size per scheduler), normalised the same
way:

* **Figure 1** — speedup of 2OP_BLOCK over the traditional scheduler of
  the same capacity, one curve per thread count (2/3/4), harmonic mean
  over the 12 mixes of the matching workload table.
* **Figures 3/5/7** — throughput-IPC speedup of {traditional, 2OP_BLOCK,
  2OP_BLOCK+OOO-dispatch} for 2/3/4-thread workloads. Each scheme's
  curve is normalised to the traditional scheduler at the smallest IQ
  size, so same-size ratios between curves match the percentages quoted
  in the paper's text.
* **Figures 4/6/8** — the same comparison in terms of the fairness
  metric (harmonic mean of weighted IPCs).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.config.machine import MachineConfig
from repro.config.presets import paper_machine
from repro.exec import ExecutorConfig
from repro.experiments.sweep import (
    PAPER_IQ_SIZES,
    PAPER_SCHEDULERS,
    SweepResult,
    run_sweep,
)
from repro.workloads.mixes import Mix, mixes_for_threads


@dataclass(slots=True)
class FigureResult:
    """One regenerated figure: series of values per scheduler."""

    figure: str
    metric: str
    iq_sizes: tuple[int, ...]
    #: scheduler -> one value per IQ size.
    series: dict[str, list[float]] = field(default_factory=dict)
    sweep: SweepResult | None = None

    def speedup_over(self, scheduler: str, baseline: str) -> list[float]:
        """Per-IQ-size ratio of one scheduler's series over another's."""
        return [
            s / b
            for s, b in zip(self.series[scheduler], self.series[baseline])
        ]

    def rows(self) -> list[tuple]:
        """Tabular form: (iq_size, *scheduler values)."""
        scheds = sorted(self.series)
        return [
            (iq, *(self.series[s][i] for s in scheds))
            for i, iq in enumerate(self.iq_sizes)
        ]


def _resolve_mixes(num_threads: int, mixes: Sequence[Mix] | None,
                   max_mixes: int | None) -> list[Mix]:
    chosen = list(mixes) if mixes is not None else list(
        mixes_for_threads(num_threads)
    )
    if max_mixes is not None:
        chosen = chosen[:max_mixes]
    return chosen


def figure1(max_insns: int = 10_000, seed: int = 0,
            iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
            thread_counts: Sequence[int] = (2, 3, 4),
            max_mixes: int | None = None,
            base_config: MachineConfig | None = None,
            progress=None,
            executor: ExecutorConfig | None = None) -> FigureResult:
    """Figure 1: 2OP_BLOCK speedup over same-size traditional IQ.

    Returns a :class:`FigureResult` whose series keys are ``"2 threads"``
    etc., one speedup value per IQ size.
    """
    base = base_config if base_config is not None else paper_machine()
    result = FigureResult(
        figure="figure1",
        metric="2OP_BLOCK IPC speedup vs traditional (same capacity)",
        iq_sizes=tuple(iq_sizes),
    )
    for threads in thread_counts:
        chosen = _resolve_mixes(threads, None, max_mixes)
        sweep = run_sweep(
            chosen, base,
            schedulers=("traditional", "2op_block"),
            iq_sizes=iq_sizes, max_insns=max_insns, seed=seed,
            progress=progress, executor=executor,
        )
        result.series[f"{threads} threads"] = [
            sweep.hmean_ipc("2op_block", q) / sweep.hmean_ipc("traditional", q)
            for q in iq_sizes
        ]
    return result


def _speedup_figure(figure: str, num_threads: int, fairness: bool,
                    max_insns: int, seed: int,
                    iq_sizes: Sequence[int],
                    mixes: Sequence[Mix] | None,
                    max_mixes: int | None,
                    base_config: MachineConfig | None,
                    progress,
                    executor: ExecutorConfig | None = None) -> FigureResult:
    base = base_config if base_config is not None else paper_machine()
    chosen = _resolve_mixes(num_threads, mixes, max_mixes)
    sweep = run_sweep(
        chosen, base,
        schedulers=PAPER_SCHEDULERS, iq_sizes=iq_sizes,
        max_insns=max_insns, seed=seed,
        with_fairness=fairness, progress=progress, executor=executor,
    )
    value = sweep.hmean_fairness if fairness else sweep.hmean_ipc
    baseline = value("traditional", iq_sizes[0])
    metric = (
        "fairness (hmean weighted IPC) speedup"
        if fairness else "throughput IPC speedup"
    )
    result = FigureResult(
        figure=figure,
        metric=f"{metric}, {num_threads}-thread workloads, "
               f"normalised to traditional@{iq_sizes[0]}",
        iq_sizes=tuple(iq_sizes),
        sweep=sweep,
    )
    for sched in PAPER_SCHEDULERS:
        result.series[sched] = [value(sched, q) / baseline for q in iq_sizes]
    return result


def figure3(max_insns: int = 10_000, seed: int = 0,
            iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
            mixes: Sequence[Mix] | None = None,
            max_mixes: int | None = None,
            base_config: MachineConfig | None = None,
            progress=None,
            executor: ExecutorConfig | None = None) -> FigureResult:
    """Figure 3: throughput-IPC speedup, 2-threaded workloads."""
    return _speedup_figure("figure3", 2, False, max_insns, seed, iq_sizes,
                           mixes, max_mixes, base_config, progress,
                           executor)


def figure4(max_insns: int = 10_000, seed: int = 0,
            iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
            mixes: Sequence[Mix] | None = None,
            max_mixes: int | None = None,
            base_config: MachineConfig | None = None,
            progress=None,
            executor: ExecutorConfig | None = None) -> FigureResult:
    """Figure 4: fairness improvement, 2-threaded workloads."""
    return _speedup_figure("figure4", 2, True, max_insns, seed, iq_sizes,
                           mixes, max_mixes, base_config, progress,
                           executor)


def figure5(max_insns: int = 10_000, seed: int = 0,
            iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
            mixes: Sequence[Mix] | None = None,
            max_mixes: int | None = None,
            base_config: MachineConfig | None = None,
            progress=None,
            executor: ExecutorConfig | None = None) -> FigureResult:
    """Figure 5: throughput-IPC speedup, 3-threaded workloads."""
    return _speedup_figure("figure5", 3, False, max_insns, seed, iq_sizes,
                           mixes, max_mixes, base_config, progress,
                           executor)


def figure6(max_insns: int = 10_000, seed: int = 0,
            iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
            mixes: Sequence[Mix] | None = None,
            max_mixes: int | None = None,
            base_config: MachineConfig | None = None,
            progress=None,
            executor: ExecutorConfig | None = None) -> FigureResult:
    """Figure 6: fairness improvement, 3-threaded workloads."""
    return _speedup_figure("figure6", 3, True, max_insns, seed, iq_sizes,
                           mixes, max_mixes, base_config, progress,
                           executor)


def figure7(max_insns: int = 10_000, seed: int = 0,
            iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
            mixes: Sequence[Mix] | None = None,
            max_mixes: int | None = None,
            base_config: MachineConfig | None = None,
            progress=None,
            executor: ExecutorConfig | None = None) -> FigureResult:
    """Figure 7: throughput-IPC speedup, 4-threaded workloads."""
    return _speedup_figure("figure7", 4, False, max_insns, seed, iq_sizes,
                           mixes, max_mixes, base_config, progress,
                           executor)


def figure8(max_insns: int = 10_000, seed: int = 0,
            iq_sizes: Sequence[int] = PAPER_IQ_SIZES,
            mixes: Sequence[Mix] | None = None,
            max_mixes: int | None = None,
            base_config: MachineConfig | None = None,
            progress=None,
            executor: ExecutorConfig | None = None) -> FigureResult:
    """Figure 8: fairness improvement, 4-threaded workloads."""
    return _speedup_figure("figure8", 4, True, max_insns, seed, iq_sizes,
                           mixes, max_mixes, base_config, progress,
                           executor)


#: All figure drivers keyed by the paper's figure number.
FIGURE_DRIVERS = {
    "1": figure1,
    "3": figure3,
    "4": figure4,
    "5": figure5,
    "6": figure6,
    "7": figure7,
    "8": figure8,
}

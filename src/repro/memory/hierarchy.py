"""Two-level cache hierarchy with main memory (paper Table 1).

Latency model: the functional-unit latency of a load (2 cycles, Table 1)
covers an L1 hit. ``AccessResult.extra_latency`` is the *additional*
delay: the L2 hit time (10) for an L1 miss that hits in L2, or the memory
latency (150) for an L2 miss. Caches are shared by all SMT threads, as in
the paper's SMT model.

The model is deliberately MSHR-free: misses to the same line from
different instructions each pay the full penalty. This overestimates
memory stalls slightly but does so identically for every scheduler
design, preserving relative results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machine import MemoryConfig
from repro.memory.cache import SetAssociativeCache


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of a data-side access."""

    l1_hit: bool
    l2_hit: bool
    extra_latency: int

    @property
    def went_to_memory(self) -> bool:
        """True when the access missed all caches."""
        return not self.l1_hit and not self.l2_hit


class MemoryHierarchy:
    """L1I + L1D + unified L2 + main memory."""

    __slots__ = ("cfg", "l1i", "l1d", "l2", "_res_hit", "_res_l2", "_res_mem")

    def __init__(self, cfg: MemoryConfig) -> None:
        self.cfg = cfg
        self.l1i = SetAssociativeCache(cfg.l1i)
        self.l1d = SetAssociativeCache(cfg.l1d)
        self.l2 = SetAssociativeCache(cfg.l2)
        # An access outcome is fully determined by the level that hit and
        # the (fixed) config latencies, so the three possible results are
        # shared frozen instances instead of a fresh allocation per call.
        self._res_hit = AccessResult(True, True, 0)
        self._res_l2 = AccessResult(False, True, cfg.l2.hit_latency)
        self._res_mem = AccessResult(False, False, cfg.memory_latency)

    # ------------------------------------------------------------------
    def access_data(self, addr: int) -> AccessResult:  # repro: hot
        """Data-side access (loads at execute, stores at commit).

        The L1 lookup is ``SetAssociativeCache.access`` inlined — the L1
        hit path is the overwhelmingly common case and pays for no
        second call.
        """
        l1 = self.l1d
        l1.accesses += 1
        block = addr >> l1._line_bits
        ways = l1._sets[block & l1._set_mask]
        tag = block >> l1._tag_shift
        if tag in ways:
            if ways[0] != tag:
                ways.insert(0, ways.pop(ways.index(tag)))
            return self._res_hit
        l1.misses += 1
        ways.insert(0, tag)
        if len(ways) > l1._assoc:
            ways.pop()
        if self.l2.access(addr):
            return self._res_l2
        return self._res_mem

    def access_inst(self, pc: int) -> AccessResult:  # repro: hot
        """Instruction-side access (fetch); L1I lookup inlined as above."""
        l1 = self.l1i
        l1.accesses += 1
        block = pc >> l1._line_bits
        ways = l1._sets[block & l1._set_mask]
        tag = block >> l1._tag_shift
        if tag in ways:
            if ways[0] != tag:
                ways.insert(0, ways.pop(ways.index(tag)))
            return self._res_hit
        l1.misses += 1
        ways.insert(0, tag)
        if len(ways) > l1._assoc:
            ways.pop()
        if self.l2.access(pc):
            return self._res_l2
        return self._res_mem

    def warm_data(self, addrs) -> None:
        """Install data lines (L1D, then L2 on an L1D miss) without
        touching the access counters; tag-store state afterwards is
        identical to calling :meth:`access_data` per address."""
        l1_fill = self.l1d.fill
        l2_fill = self.l2.fill
        for addr in addrs:
            if not l1_fill(addr):
                l2_fill(addr)

    def warm_inst(self, pcs) -> None:
        """Instruction-side counterpart of :meth:`warm_data`."""
        l1_fill = self.l1i.fill
        l2_fill = self.l2.fill
        for pc in pcs:
            if not l1_fill(pc):
                l2_fill(pc)

    def flush(self) -> None:
        """Invalidate all levels."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()

    def reset_stats(self) -> None:
        """Zero all counters, keeping cache contents (post-warmup)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()

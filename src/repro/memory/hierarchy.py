"""Two-level cache hierarchy with main memory (paper Table 1).

Latency model: the functional-unit latency of a load (2 cycles, Table 1)
covers an L1 hit. ``AccessResult.extra_latency`` is the *additional*
delay: the L2 hit time (10) for an L1 miss that hits in L2, or the memory
latency (150) for an L2 miss. Caches are shared by all SMT threads, as in
the paper's SMT model.

The model is deliberately MSHR-free: misses to the same line from
different instructions each pay the full penalty. This overestimates
memory stalls slightly but does so identically for every scheduler
design, preserving relative results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machine import MemoryConfig
from repro.memory.cache import SetAssociativeCache


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of a data-side access."""

    l1_hit: bool
    l2_hit: bool
    extra_latency: int

    @property
    def went_to_memory(self) -> bool:
        """True when the access missed all caches."""
        return not self.l1_hit and not self.l2_hit


class MemoryHierarchy:
    """L1I + L1D + unified L2 + main memory."""

    __slots__ = ("cfg", "l1i", "l1d", "l2")

    def __init__(self, cfg: MemoryConfig) -> None:
        self.cfg = cfg
        self.l1i = SetAssociativeCache(cfg.l1i)
        self.l1d = SetAssociativeCache(cfg.l1d)
        self.l2 = SetAssociativeCache(cfg.l2)

    # ------------------------------------------------------------------
    def access_data(self, addr: int) -> AccessResult:
        """Data-side access (loads at execute, stores at commit)."""
        if self.l1d.access(addr):
            return AccessResult(True, True, 0)
        if self.l2.access(addr):
            return AccessResult(False, True, self.cfg.l2.hit_latency)
        return AccessResult(False, False, self.cfg.memory_latency)

    def access_inst(self, pc: int) -> AccessResult:
        """Instruction-side access (fetch)."""
        if self.l1i.access(pc):
            return AccessResult(True, True, 0)
        if self.l2.access(pc):
            return AccessResult(False, True, self.cfg.l2.hit_latency)
        return AccessResult(False, False, self.cfg.memory_latency)

    def flush(self) -> None:
        """Invalidate all levels."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()

    def reset_stats(self) -> None:
        """Zero all counters, keeping cache contents (post-warmup)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()

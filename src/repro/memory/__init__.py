"""Memory substrate: set-associative caches and the two-level hierarchy."""

from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = ["SetAssociativeCache", "MemoryHierarchy", "AccessResult"]

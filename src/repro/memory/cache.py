"""Set-associative cache with true-LRU replacement.

The model tracks tags only (the simulator is trace driven; data values
are never needed). Writes allocate, matching the write-allocate,
write-back policy of SimpleScalar's default caches.
"""

from __future__ import annotations

from repro.config.machine import CacheConfig


class SetAssociativeCache:
    """Tag store of one cache level.

    Each set is a Python list ordered MRU-first; with the small
    associativities of Table 1 (2–8 ways) list rotation is faster than an
    ``OrderedDict`` and allocation free in steady state.
    """

    __slots__ = (
        "cfg",
        "_sets",
        "_line_bits",
        "_set_mask",
        "_tag_shift",
        "_assoc",
        "accesses",
        "misses",
    )

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        self._sets: list[list[int]] = [[] for _ in range(cfg.num_sets)]
        self._line_bits = cfg.line_bytes.bit_length() - 1
        self._set_mask = cfg.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        self._assoc = cfg.assoc
        self.accesses = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def access(self, addr: int) -> bool:  # repro: hot
        """Access the line containing ``addr``; returns True on hit.

        Misses allocate the line (evicting true-LRU if the set is full).
        The miss path uses a membership test rather than ``index`` inside
        ``try/except`` — exception raising costs roughly a microsecond
        and misses dominate residency installation and cold regions.
        """
        self.accesses += 1
        block = addr >> self._line_bits
        ways = self._sets[block & self._set_mask]
        tag = block >> self._tag_shift
        if tag in ways:
            if ways[0] != tag:
                ways.insert(0, ways.pop(ways.index(tag)))
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self._assoc:
            ways.pop()
        return False

    def fill(self, addr: int) -> bool:  # repro: hot
        """:meth:`access` minus the statistics counters.

        Bulk warm-up path: the tag store evolves exactly as under
        :meth:`access` (same LRU updates, same allocations) but the
        access/miss counters stay untouched. Used for residency
        installation, where counters are reset afterwards anyway.
        """
        block = addr >> self._line_bits
        ways = self._sets[block & self._set_mask]
        tag = block >> self._tag_shift
        if tag in ways:
            i = ways.index(tag)
            if i:
                ways.insert(0, ways.pop(i))
            return True
        ways.insert(0, tag)
        if len(ways) > self._assoc:
            ways.pop()
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or allocating."""
        block = addr >> self._line_bits
        ways = self._sets[block & self._set_mask]
        tag = block >> self._tag_shift
        return tag in ways

    def flush(self) -> None:
        """Invalidate every line (statistics are preserved)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        """Zero the access/miss counters (content is preserved) — used
        after a warmup phase so reported rates cover the measured region."""
        self.accesses = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed so far."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit so far."""
        return 1.0 - self.miss_rate if self.accesses else 0.0

"""Minimal asyncio HTTP/1.1 plumbing for the sweep service.

The service speaks plain HTTP/JSON (plus newline-delimited JSON for
streams) over stdlib asyncio — no third-party web framework, matching
the repository's no-new-dependencies rule. This module owns the wire
format only: request parsing with hard size limits, response encoding,
and the NDJSON streaming preamble. Routing and semantics live in
:mod:`repro.serve.server`.

Deliberately small surface: one request per connection
(``Connection: close``), ``Content-Length`` bodies only (no chunked
requests), no TLS. The service is an internal cluster protocol, not an
internet-facing web server.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Hard limits: a request line/header block/body beyond these is a
#: protocol error, not a buffering exercise.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """Malformed HTTP from a peer (maps to a 400 when answerable)."""


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    #: Path with the query string stripped.
    path: str
    #: Raw query string ("" when absent).
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Parse the body as JSON; raises :class:`ProtocolError`."""
        if not self.body:
            raise ProtocolError("expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; None on a cleanly closed connection."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request-line") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request line too long") from exc
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as exc:
            raise ProtocolError("connection closed mid-headers") from exc
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError("header block too large")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise ProtocolError("bad Content-Length") from exc
        if n < 0 or n > MAX_BODY_BYTES:
            raise ProtocolError("body too large")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    return Request(method=method, path=path, query=query,
                   headers=headers, body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json",
                   headers: dict[str, str] | None = None) -> bytes:
    """One complete ``Connection: close`` response. ``headers`` adds
    extra response headers (e.g. ``Retry-After`` on a 429/503)."""
    reason = _REASONS.get(status, "Unknown")
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def send_json(writer: asyncio.StreamWriter, status: int,
                    payload: object,
                    headers: dict[str, str] | None = None) -> None:
    """Encode ``payload`` (sorted keys — byte-stable) and send it."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    writer.write(response_bytes(status, body, headers=headers))
    await writer.drain()


async def send_error(writer: asyncio.StreamWriter, status: int,
                     message: str,
                     headers: dict[str, str] | None = None,
                     **fields: object) -> None:
    """One structured error body: ``{"error": ..., **fields}`` — the
    extra fields are how a 429 carries its machine-readable
    ``retry_after``/queue occupancy alongside the header."""
    await send_json(writer, status, {"error": message, **fields},
                    headers=headers)


async def start_stream(writer: asyncio.StreamWriter,
                       content_type: str = "application/x-ndjson",
                       ) -> None:
    """Send the header block of an unbounded streaming response; the
    caller then writes NDJSON lines and closes the connection to end
    the stream (HTTP/1.0-style delimiting — both of our clients read
    to EOF)."""
    head = (
        "HTTP/1.1 200 OK\r\n"
        f"Content-Type: {content_type}\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1"))
    await writer.drain()

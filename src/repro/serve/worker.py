"""Worker agent: attach to a sweep server, execute jobs, ship results.

``python -m repro.serve worker --connect http://host:port`` runs one
agent. The agent opens a single long-lived connection, upgrades it to
the NDJSON frame protocol (:mod:`repro.serve.protocol`), announces
itself with a ``hello`` frame (name + slot count), then executes every
``job`` frame the server shards to it:

* the job is rebuilt from its fingerprint (no shared filesystem
  needed) and run on a thread pool of ``slots`` threads, keeping the
  connection's event loop free to heartbeat and accept further jobs;
* the result travels back as a checksummed ``result`` frame through
  the same byte-stable codec the on-disk cache uses — the server
  cannot tell (and tests assert it cannot tell) a remote result from
  a local one;
* a heartbeat frame every :data:`~repro.serve.protocol.HEARTBEAT_PERIOD`
  seconds keeps the server's watchdog quiet; a worker that stops
  beating is declared dead and its jobs re-shard.

Chaos parity: the agent honours the same :class:`ChaosConfig` worker
faults as the forked farm — a *kill* is a hard ``os._exit(73)`` of the
whole agent (worker churn, triggering journal-driven re-shard), a
*hang* silences the heartbeats so the server watchdog must catch it —
plus the network-site faults (``net_drop``/``net_dup``/``net_delay``)
applied to outgoing result frames. Every decision is keyed by (job
hash, attempt), so retried attempts converge exactly as they do
locally.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import urlsplit

from repro.exec.chaos import CHAOS_EXIT_CODE, ChaosConfig
from repro.serve.protocol import (
    HEARTBEAT_PERIOD,
    encode_result_frame,
    job_from_fingerprint,
    read_frame,
    send_frame,
)


def parse_server_url(url: str) -> tuple[str, int]:
    """(host, port) of an ``http://host:port`` server URL."""
    split = urlsplit(url if "//" in url else f"//{url}")
    if split.scheme not in ("", "http"):
        raise ValueError(f"unsupported scheme in server URL {url!r}")
    if not split.hostname or not split.port:
        raise ValueError(f"server URL must be http://host:port, "
                         f"got {url!r}")
    return split.hostname, split.port


class WorkerAgent:
    """One attached worker: a connection, a thread pool, a heartbeat."""

    def __init__(self, url: str, *, slots: int = 1,
                 name: str | None = None,
                 chaos: ChaosConfig | None = None) -> None:
        self.host, self.port = parse_server_url(url)
        self.slots = max(1, slots)
        self.name = name or f"{os.uname().nodename}-{os.getpid()}"
        self.chaos = chaos
        self._writer: asyncio.StreamWriter | None = None
        self._send_lock = asyncio.Lock()
        #: Heartbeats pause while "hung" (chaos) so the server watchdog
        #: sees exactly what a stuck worker looks like.
        self._hung = False
        #: (hash, attempt) pairs already accepted — a duplicated
        #: dispatch frame (chaos net_dup) must not run a job twice.
        self._seen: set[tuple[str, int]] = set()

    async def _send(self, frame: dict, *, site: str = "",
                    key: str = "", attempt: int = 0) -> None:
        assert self._writer is not None
        async with self._send_lock:
            await send_frame(self._writer, frame, chaos=self.chaos,
                            site=site, key=key, attempt=attempt)

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(HEARTBEAT_PERIOD)
            if self._hung:
                continue
            await self._send({"type": "heartbeat"})

    async def _run_job(self, pool: ThreadPoolExecutor,
                       frame: dict) -> None:
        job_hash = str(frame["hash"])
        attempt = int(frame.get("attempt", 0))
        chaos = self.chaos
        kill_point = None
        if chaos is not None:
            kill_point = chaos.kill_point(job_hash, attempt)
            if chaos.should_hang(job_hash, attempt):
                self._hung = True
                await asyncio.sleep(chaos.hang_seconds)
            slow = chaos.slow_delay(job_hash, attempt)
            if slow > 0.0:
                # Heartbeat-but-slow: beats keep flowing (self._hung
                # stays False), so the server's liveness watchdog must
                # not fire — only the per-job deadline may reap this.
                await asyncio.sleep(slow)
            if kill_point == "early":
                os._exit(CHAOS_EXIT_CODE)
        try:
            job = job_from_fingerprint(frame["fingerprint"])
            loop = asyncio.get_event_loop()
            payload = await loop.run_in_executor(pool, job.run)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - serialised to server
            await self._send(
                {"type": "job-error", "hash": job_hash,
                 "attempt": attempt,
                 "error": f"{type(exc).__name__}: {exc}"},
                site="serve-result", key=job_hash, attempt=attempt,
            )
            return
        if chaos is not None and kill_point == "late":
            os._exit(CHAOS_EXIT_CODE)
        await self._send(
            encode_result_frame(job_hash, attempt, payload),
            site="serve-result", key=job_hash, attempt=attempt,
        )

    async def run(self) -> None:
        """Connect, attach, and serve jobs until shutdown or EOF."""
        reader, writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._writer = writer
        writer.write(
            b"POST /v1/workers/attach HTTP/1.1\r\n"
            b"Content-Length: 0\r\n\r\n"
        )
        await writer.drain()
        await reader.readuntil(b"\r\n\r\n")  # upgrade response headers
        await self._send({"type": "hello", "name": self.name,
                          "slots": self.slots, "pid": os.getpid()})
        beat = asyncio.ensure_future(self._heartbeat_loop())
        pool = ThreadPoolExecutor(max_workers=self.slots)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None or frame.get("type") == "shutdown":
                    break
                if frame.get("type") != "job":
                    continue
                key = (str(frame.get("hash")),
                       int(frame.get("attempt", 0)))
                if key in self._seen:
                    continue  # duplicated dispatch frame (chaos)
                self._seen.add(key)
                task = asyncio.ensure_future(self._run_job(pool, frame))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            beat.cancel()
            for task in tasks:
                task.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            writer.close()


def run_worker(url: str, *, slots: int = 1, name: str | None = None,
               chaos: ChaosConfig | None = None) -> None:
    """Blocking entry point (the CLI and cluster worker processes)."""
    agent = WorkerAgent(url, slots=slots, name=name, chaos=chaos)
    try:
        asyncio.run(agent.run())
    except (ConnectionError, OSError,  # repro: noqa[RPR007]
            asyncio.IncompleteReadError):
        # Server went away; a supervised worker just exits and lets
        # its supervisor decide whether to respawn.
        pass

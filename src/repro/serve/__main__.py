"""``python -m repro.serve`` — server, worker, submit, smoke.

Usage::

    python -m repro.serve server --port 8742 --cache-dir results/cache \\
        --journal-dir results/journal --policy hash-ring

    python -m repro.serve worker --connect http://host:8742 --slots 2

    python -m repro.serve submit --server http://host:8742 \\
        --threads 2 --schedulers traditional,2op_ooo --iq-sizes 8,16

    python -m repro.serve drain --server http://host:8742

    python -m repro.serve smoke --workers 2       # golden-match check
    python -m repro.serve overload-smoke          # backpressure drill

``smoke`` is the distributed analogue of ``python -m repro.exec
chaos-smoke``: it runs a small grid on a single host (the golden), then
cold and warm through a loopback cluster, and fails unless the cluster
results are byte-identical to the golden and the warm re-submission
simulates nothing. ``REPRO_CHAOS`` (including the ``net_*`` knobs)
applies to the cluster run, making this a one-command fault drill.

``overload-smoke`` is the same idea for the overload machinery: N
concurrent submitters race distinct grids into a server whose
admission budget is a single job, and the drill fails unless
backpressure engaged (at least one submission was queued), every
submitter's results are byte-identical to its own single-host golden
run, no submitter starved, and a warm resubmission simulates nothing.

The server drains gracefully on SIGTERM (or ``drain``/the
``POST /v1/admin/drain`` endpoint): in-flight jobs get ``--drain-grace``
seconds to finish, the rest are journalled as ``interrupted``, and a
restarted server resumes them with zero re-simulation. See
"Operating under load" in docs/distributed.md.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.exec.chaos import ChaosConfig
from repro.exec.pool import ExecutorConfig, execute_jobs
from repro.serve.policy import POLICIES


def _cmd_server(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve.server import SweepServer

    server = SweepServer(
        host=args.host, port=args.port,
        cache_dir=args.cache_dir, journal_dir=args.journal_dir,
        policy=args.policy, retries=args.retries,
        timeout=args.timeout, heartbeat_grace=args.heartbeat_grace,
        chaos=ChaosConfig.from_env(),
        rotate_bytes=args.rotate_bytes,
        max_in_flight=args.max_in_flight, max_queue=args.max_queue,
        drain_grace=args.drain_grace,
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        stopped = asyncio.Event()

        async def _drain_and_stop() -> None:
            summary = await server.drain()
            print(f"drained: {summary['finished']} job(s) finished, "
                  f"{summary['interrupted']} journalled as interrupted "
                  f"(resume by resubmitting against the same journal)")
            stopped.set()

        def _on_sigterm() -> None:
            # SIGTERM = graceful drain: finish in-flight work against
            # the grace deadline, journal the rest, then exit.
            if server.state == "serving":
                asyncio.ensure_future(_drain_and_stop())

        try:
            loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
        except (NotImplementedError, RuntimeError):  # repro: noqa[RPR007] — no signal support on this platform/thread; SIGTERM drain is then simply unavailable, ^C still works
            pass
        port = await server.start()
        print(f"sweep server listening on http://{args.host}:{port} "
              f"(policy={server.policy.name}, "
              f"cache={args.cache_dir or 'off'}, "
              f"journal={args.journal_dir or 'off'}, "
              f"budget={args.max_in_flight or 'unbounded'})")
        assert server._server is not None
        async with server._server:
            forever = asyncio.ensure_future(
                server._server.serve_forever())
            waiter = asyncio.ensure_future(stopped.wait())
            await asyncio.wait({forever, waiter},
                               return_when=asyncio.FIRST_COMPLETED)
            forever.cancel()
            waiter.cancel()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # repro: noqa[RPR007] — Ctrl-C is the
        pass                   # server's hard-stop path (SIGTERM drains)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.serve.worker import run_worker

    run_worker(args.connect, slots=args.slots, name=args.name,
               chaos=ChaosConfig.from_env())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import SweepClient

    client = SweepClient(args.server, submitter=args.submitter,
                         weight=args.weight)
    grid = {
        "profile": args.profile,
        "threads": args.threads,
        "schedulers": args.schedulers.split(","),
        "iq_sizes": [int(q) for q in args.iq_sizes.split(",")],
        "max_insns": args.insns,
        "seed": args.seed,
    }
    reply = client.submit({"grid": grid})
    sweep_id = reply["sweep"]
    print(f"sweep {sweep_id}: {reply['total']} job(s), "
          f"status {reply['status']}, "
          f"admission {reply.get('admission', 'admitted')}"
          f"{' (attached to in-flight run)' if reply['attached'] else ''}")
    for event in client.stream_events(sweep_id):
        kind = event.get("event")
        if kind in ("cached", "resumed", "simulated", "failed"):
            print(f"  [{event['completed']}/{event['total']}] "
                  f"{kind}: {event['job'][:16]}")
    _, report = client.fetch_results(sweep_id)
    print(f"done: {report.simulated} simulated, {report.cached} cached, "
          f"{report.resumed} resumed, {report.failed} failed, "
          f"{report.retried} retried")
    return 1 if report.failed else 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from repro.serve.client import SweepClient

    client = SweepClient(args.server)
    summary = client.drain(args.grace)
    print(f"drained: {summary['finished']} job(s) finished, "
          f"{summary['interrupted']} journalled as interrupted")
    return 0


def _smoke_jobs(insns: int, seed: int = 0) -> list:
    from repro.config.presets import small_machine
    from repro.exec.jobs import jobs_for_grid
    from repro.workloads.mixes import TWO_THREAD_MIXES

    keyed = jobs_for_grid(
        TWO_THREAD_MIXES[:2], small_machine(),
        ("traditional", "2op_ooo"), (8, 16), insns, seed,
    )
    return [job for _, job in keyed]


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Golden-match smoke across a loopback cluster (cold + warm)."""
    from repro.serve.client import execute_remote
    from repro.serve.cluster import LocalCluster

    jobs = _smoke_jobs(args.insns)
    golden, _ = execute_jobs(jobs, ExecutorConfig(jobs=1))

    chaos = ChaosConfig.from_env()
    with tempfile.TemporaryDirectory() as cache_dir, \
            tempfile.TemporaryDirectory() as journal_dir, \
            LocalCluster(
                workers=args.workers, cache_dir=cache_dir,
                journal_dir=journal_dir, policy=args.policy,
                # A dropped dispatch frame is only recovered by the
                # per-job deadline, so keep it tight: smoke jobs run in
                # well under a second each.
                retries=8, timeout=10.0, heartbeat_grace=2.0,
                chaos=chaos, respawn=chaos is not None,
            ) as cluster:
        cold, cold_report = execute_remote(jobs, cluster.url)
        warm, warm_report = execute_remote(jobs, cluster.url)

    if [p.result for p in cold] != [p.result for p in golden]:
        print("serve smoke FAILED: cluster results differ from the "
              "single-host golden run", file=sys.stderr)
        return 1
    if [p.result for p in warm] != [p.result for p in golden]:
        print("serve smoke FAILED: warm re-submission results differ "
              "from the golden run", file=sys.stderr)
        return 1
    if warm_report.simulated != 0:
        print(f"serve smoke FAILED: warm re-submission simulated "
              f"{warm_report.simulated} job(s); expected 0",
              file=sys.stderr)
        return 1
    faults = ""
    if chaos is not None:
        faults = (f" under chaos (seed={chaos.seed}, "
                  f"kill={chaos.kill_p:g}, net_drop={chaos.net_drop_p:g}, "
                  f"net_dup={chaos.net_dup_p:g}, "
                  f"net_delay={chaos.net_delay_p:g})")
    print(
        f"ok: {cold_report.total}-point grid on {args.workers} "
        f"worker(s) via {args.policy}{faults} — cold run simulated "
        f"{cold_report.simulated} ({cold_report.retried} retried), "
        f"warm re-submission simulated 0, both byte-identical to the "
        "single-host golden run"
    )
    return 0


def _cmd_overload_smoke(args: argparse.Namespace) -> int:
    """Backpressure drill: concurrent submitters against a tiny job
    budget must all complete byte-identically, fairly, and a warm
    resubmission must simulate nothing."""
    import threading

    from repro.serve.client import SweepClient
    from repro.serve.cluster import LocalCluster

    grids = [_smoke_jobs(args.insns, seed=i)
             for i in range(args.submitters)]
    goldens = [execute_jobs(jobs, ExecutorConfig(jobs=1))[0]
               for jobs in grids]

    def run_all(cluster: LocalCluster, phase: str,
                ) -> tuple[list, list, list[dict]]:
        outs: list = [None] * len(grids)
        reports: list = [None] * len(grids)
        errors: list = []
        replies: list[dict] = []

        def submitter(i: int) -> None:
            client = SweepClient(cluster.url, submitter=f"s{i}")
            try:
                reply = client.submit({"jobs": [
                    j.fingerprint_payload() for j in grids[i]]})
                replies.append(reply)
                for _ in client.stream_events(str(reply["sweep"])):
                    pass
                outs[i], reports[i] = client.fetch_results(
                    str(reply["sweep"]))
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(f"{phase} submitter s{i}: {exc}")

        threads = [threading.Thread(target=submitter, args=(i,))
                   for i in range(len(grids))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            for line in errors:
                print(f"overload smoke FAILED: {line}",
                      file=sys.stderr)
            raise SystemExit(1)
        return outs, reports, replies

    with tempfile.TemporaryDirectory() as cache_dir, \
            tempfile.TemporaryDirectory() as journal_dir, \
            LocalCluster(
                workers=args.workers, cache_dir=cache_dir,
                journal_dir=journal_dir, policy="fair-share",
                retries=8, timeout=10.0, heartbeat_grace=2.0,
                max_in_flight=args.budget, max_queue=args.queue,
            ) as cluster:
        cold, cold_reports, cold_replies = run_all(cluster, "cold")
        warm, warm_reports, _ = run_all(cluster, "warm")
        health = SweepClient(cluster.url).health()

    for i, golden in enumerate(goldens):
        for label, outs in (("cold", cold), ("warm", warm)):
            if [p.result for p in outs[i]] != [p.result for p in golden]:
                print(f"overload smoke FAILED: {label} results for "
                      f"submitter s{i} differ from its single-host "
                      f"golden run", file=sys.stderr)
                return 1
    if not any(r.get("admission") == "queued" for r in cold_replies):
        print("overload smoke FAILED: no submission was queued — the "
              f"budget of {args.budget} never engaged", file=sys.stderr)
        return 1
    warm_simulated = sum(r.simulated for r in warm_reports)
    if warm_simulated:
        print(f"overload smoke FAILED: warm resubmission simulated "
              f"{warm_simulated} job(s); expected 0", file=sys.stderr)
        return 1
    shares = health.get("submitters", {})
    starved = [f"s{i}" for i in range(len(grids))
               if not shares.get(f"s{i}", {}).get("completed")]
    if starved:
        print(f"overload smoke FAILED: submitter(s) {starved} have no "
              f"completions in /v1/health", file=sys.stderr)
        return 1
    total = sum(r.total for r in cold_reports)
    print(
        f"ok: {len(grids)} submitters x {total // len(grids)} jobs "
        f"against a {args.budget}-slot budget on {args.workers} "
        f"worker(s) — backpressure engaged, every submitter completed "
        f"byte-identically to its golden run, warm resubmission "
        f"simulated 0"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="distributed sweep service "
                    "(see docs/distributed.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("server", help="run the sweep server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8742)
    p.add_argument("--cache-dir", default=None,
                   help="shared result-cache root (off when omitted)")
    p.add_argument("--journal-dir", default=None,
                   help="run-journal root (off when omitted; required "
                        "for resume)")
    p.add_argument("--policy", choices=sorted(POLICIES),
                   default="hash-ring")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-job deadline before re-dispatch, seconds")
    p.add_argument("--heartbeat-grace", type=float, default=5.0)
    p.add_argument("--rotate-bytes", type=int, default=4 * 1024 * 1024,
                   help="journal size-rotation threshold")
    p.add_argument("--max-in-flight", type=int, default=None,
                   help="admission budget: unresolved jobs beyond this "
                        "are queued (unbounded when omitted)")
    p.add_argument("--max-queue", type=int, default=None,
                   help="backlog headroom past the budget before "
                        "submissions get 429 (unbounded when omitted)")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   help="seconds in-flight jobs get to finish on "
                        "drain/SIGTERM before being journalled as "
                        "interrupted")

    p = sub.add_parser("worker", help="attach a worker agent")
    p.add_argument("--connect", required=True,
                   help="server URL, e.g. http://host:8742")
    p.add_argument("--slots", type=int, default=1,
                   help="concurrent jobs this worker runs")
    p.add_argument("--name", default=None)

    p = sub.add_parser("submit", help="submit a grid and stream "
                                      "progress")
    p.add_argument("--server", required=True)
    p.add_argument("--profile", choices=["paper", "small", "tiny"],
                   default="small")
    p.add_argument("--threads", type=int, default=2)
    p.add_argument("--schedulers", default="traditional,2op_ooo")
    p.add_argument("--iq-sizes", default="8,16")
    p.add_argument("--insns", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--submitter", default="anonymous",
                   help="submitter id for the server's fair-share "
                        "accounting")
    p.add_argument("--weight", type=float, default=1.0,
                   help="fair-share weight of this submitter")

    p = sub.add_parser("drain", help="gracefully drain a server")
    p.add_argument("--server", required=True)
    p.add_argument("--grace", type=float, default=None,
                   help="override the server's drain grace, seconds")

    p = sub.add_parser(
        "smoke",
        help="assert a loopback-cluster sweep matches the single-host "
             "golden run (cold and warm)",
    )
    p.add_argument("--insns", type=int, default=400)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--policy", choices=sorted(POLICIES),
                   default="hash-ring")

    p = sub.add_parser(
        "overload-smoke",
        help="assert concurrent submitters against a tiny job budget "
             "all complete fairly, byte-identically and with zero "
             "re-simulation on resubmit",
    )
    p.add_argument("--insns", type=int, default=300)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--submitters", type=int, default=3)
    p.add_argument("--budget", type=int, default=1,
                   help="server --max-in-flight")
    p.add_argument("--queue", type=int, default=64,
                   help="server --max-queue")

    args = parser.parse_args(argv)
    if args.command == "server":
        return _cmd_server(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "drain":
        return _cmd_drain(args)
    if args.command == "overload-smoke":
        return _cmd_overload_smoke(args)
    return _cmd_smoke(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Synchronous client for the sweep server.

This is the glue that makes remote execution invisible to callers:
:func:`execute_remote` has the same contract as the local half of
:func:`repro.exec.pool.execute_jobs` — submit the batch, stream
progress, fetch ordered results, return ``(payloads, ExecReport)`` —
so setting ``ExecutorConfig(server=...)`` (or ``REPRO_SERVER``) is the
*only* change a sweep, figure driver or benchmark needs to run on a
cluster.

Built on stdlib ``http.client`` (the callers are synchronous; no
event loop to integrate with). Each call is one request; the event
stream holds its connection open and yields NDJSON records until the
server reports ``sweep-end``.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Iterator
from dataclasses import dataclass

from repro.exec.jobs import JobResult
from repro.exec.ledger import (
    ExecProgress,
    ExecReport,
    JobFailure,
    ProgressFn,
)
from repro.serve.worker import parse_server_url


class ServerError(RuntimeError):
    """The server answered with an error status (or not at all)."""


@dataclass(frozen=True, slots=True)
class _RemoteJob:
    """Stand-in for a job that failed server-side: all the caller can
    know (and all :class:`~repro.exec.pool.ExecutionError` needs) is
    its description."""

    description: str

    def describe(self) -> str:
        return self.description


def _request(server: str, method: str, path: str,
             payload: object | None = None,
             timeout: float | None = None) -> dict:
    host, port = parse_server_url(server)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        data = resp.read()
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServerError(
                f"{method} {path}: non-JSON response "
                f"(status {resp.status}): {data[:200]!r}"
            ) from exc
        if resp.status >= 400:
            message = (decoded.get("error", data[:200])
                       if isinstance(decoded, dict) else data[:200])
            raise ServerError(f"{method} {path}: {resp.status} {message}")
        if not isinstance(decoded, dict):
            raise ServerError(f"{method} {path}: expected an object")
        return decoded
    except (ConnectionError, OSError, http.client.HTTPException) as exc:
        raise ServerError(
            f"{method} {path}: cannot reach sweep server at "
            f"{server}: {exc}"
        ) from exc
    finally:
        conn.close()


def submit(server: str, payload: dict) -> dict:
    """POST one submission (``jobs``/``grid``/``resume`` vocabulary);
    returns the server's ``{"sweep": ..., "status": ...}`` reply."""
    return _request(server, "POST", "/v1/sweeps", payload)


def sweep_status(server: str, sweep_id: str) -> dict:
    return _request(server, "GET", f"/v1/sweeps/{sweep_id}")


def cache_stats(server: str) -> dict:
    """The server's shared-cache report (same structure as
    ``python -m repro.exec cache stats --json``)."""
    return _request(server, "GET", "/v1/cache")


def stream_events(server: str, sweep_id: str,
                  timeout: float | None = None) -> Iterator[dict]:
    """Yield the sweep's NDJSON progress events; ends after
    ``sweep-end`` (or on server EOF)."""
    host, port = parse_server_url(server)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", f"/v1/sweeps/{sweep_id}/events")
        resp = conn.getresponse()
        if resp.status != 200:
            raise ServerError(
                f"GET /v1/sweeps/{sweep_id}/events: {resp.status}"
            )
        buf = b""
        while True:
            chunk = resp.read1(64 * 1024)
            if not chunk:
                return
            buf += chunk
            while b"\n" in buf:
                line, _, buf = buf.partition(b"\n")
                if not line.strip():
                    continue
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("event") == "sweep-end":
                    return
    except (ConnectionError, OSError, http.client.HTTPException) as exc:
        raise ServerError(
            f"event stream for sweep {sweep_id} broke: {exc}"
        ) from exc
    finally:
        conn.close()


def _decode_body(entry: dict) -> object:
    from repro.exec.cache import decode_job_result

    if entry.get("body_kind", "sim") == "sim":
        return decode_job_result(entry["body"])
    return entry["body"]


def _report_from_dict(raw: dict) -> ExecReport:
    report = ExecReport(
        total=int(raw.get("total", 0)),
        cached=int(raw.get("cached", 0)),
        resumed=int(raw.get("resumed", 0)),
        simulated=int(raw.get("simulated", 0)),
        failed=int(raw.get("failed", 0)),
        retried=int(raw.get("retried", 0)),
        run_id=raw.get("run_id"),
    )
    for failure in raw.get("failures", []):
        report.job_failures.append(JobFailure(
            job=_RemoteJob(str(failure.get("job", "?"))),
            message=str(failure.get("message", "failed remotely")),
        ))
    return report


def fetch_results(server: str, sweep_id: str,
                  ) -> tuple[list[object | None], ExecReport]:
    """Ordered (positional) decoded results + final report of a
    finished sweep."""
    reply = _request(server, "GET", f"/v1/sweeps/{sweep_id}/results")
    results: list[object | None] = []
    for entry in reply.get("results", []):
        results.append(None if entry is None else _decode_body(entry))
    return results, _report_from_dict(reply.get("report", {}))


def execute_remote(jobs, server: str,
                   progress: ProgressFn | None = None,
                   ) -> tuple[list[object | None], ExecReport]:
    """Run a batch on a sweep server; local-executor-shaped return.

    Results come back positionally (one slot per job, None where it
    failed terminally), decoded through the byte-stable codec — so a
    remote sweep is indistinguishable from a local one to the caller.
    """
    jobs = list(jobs)
    fingerprints = [job.fingerprint_payload() for job in jobs]
    reply = submit(server, {"jobs": fingerprints})
    sweep_id = str(reply["sweep"])

    if progress is not None:
        by_hash = {job.content_hash(): job for job in jobs}
        running = ExecReport(total=len(jobs), run_id=sweep_id)
        for event in stream_events(server, sweep_id):
            kind = event.get("event")
            if kind not in ("cached", "resumed", "simulated", "failed"):
                continue
            setattr(running, kind,
                    getattr(running, kind) + 1)
            payload: object | None = None
            if "body" in event:
                payload = _decode_body(event)
            job = by_hash.get(str(event.get("job", "")))
            if job is None:
                continue
            progress(ExecProgress(
                job=job,
                payload=(payload if isinstance(payload, JobResult)
                         else None),
                outcome=str(kind),
                report=running,
            ))
    else:
        for _ in stream_events(server, sweep_id):
            pass

    return fetch_results(server, sweep_id)


def resume_remote(server: str, run_id: str,
                  ) -> tuple[list[object | None], ExecReport]:
    """Ask the server to resume an interrupted run from its journal."""
    reply = submit(server, {"resume": run_id})
    sweep_id = str(reply["sweep"])
    for _ in stream_events(server, sweep_id):
        pass
    return fetch_results(server, sweep_id)

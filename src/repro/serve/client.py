"""Synchronous client for the sweep server.

This is the glue that makes remote execution invisible to callers:
:func:`execute_remote` has the same contract as the local half of
:func:`repro.exec.pool.execute_jobs` — submit the batch, stream
progress, fetch ordered results, return ``(payloads, ExecReport)`` —
so setting ``ExecutorConfig(server=...)`` (or ``REPRO_SERVER``) is the
*only* change a sweep, figure driver or benchmark needs to run on a
cluster.

Built on stdlib ``http.client`` (the callers are synchronous; no
event loop to integrate with). Each call is one request; the event
stream holds its connection open and yields NDJSON records until the
server reports ``sweep-end``.

Two layers:

* the **module functions** (:func:`submit`, :func:`stream_events`,
  :func:`execute_remote`, ...) are one-shot: any connection failure or
  error status raises :class:`ServerError` immediately;
* :class:`SweepClient` wraps them in overload-aware retry machinery —
  deterministic seeded exponential backoff with jitter
  (:class:`RetryPolicy`), ``Retry-After``-honouring 429 handling, a
  per-server circuit breaker (:class:`CircuitBreaker`) that stops
  hammering a refusing/overloaded server, and an event stream that
  survives mid-stream connection drops by reconnecting and skipping
  the replayed history. When the breaker is open, calls fail fast
  with :class:`CircuitOpenError` — which is what
  ``ExecutorConfig.allow_local_fallback`` catches to degrade to local
  execution against the same cache and journal.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Iterator
from dataclasses import dataclass
from time import (  # repro: noqa[RPR001]
    monotonic as _monotonic,
    sleep as _sleep,
)

from repro.exec.chaos import ChaosConfig
from repro.exec.jobs import JobResult
from repro.exec.ledger import (
    ExecProgress,
    ExecReport,
    JobFailure,
    ProgressFn,
)
from repro.serve.worker import parse_server_url
from repro.util.rng import make_rng


class ServerError(RuntimeError):
    """The server answered with an error status (or not at all).

    ``status`` is the HTTP status when the server answered (None for
    connection-level failures); ``retry_after`` is the server's
    suggested wait in seconds when it sent one (429/503).
    """

    def __init__(self, message: str, *, status: int | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class CircuitOpenError(ServerError):
    """The client's circuit breaker is open: too many consecutive
    connection failures or 429s, and the cooldown has not elapsed.
    Fails fast instead of queueing more load onto a struggling server;
    ``ExecutorConfig.allow_local_fallback`` catches exactly this to
    degrade to local execution."""


class SweepInterrupted(ServerError):
    """The sweep was interrupted server-side (graceful drain) and will
    not finish on this server. Resubmitting the same grid — to a
    restarted server sharing the journal directory — resumes it with
    zero re-simulation."""


@dataclass(frozen=True, slots=True)
class _RemoteJob:
    """Stand-in for a job that failed server-side: all the caller can
    know (and all :class:`~repro.exec.pool.ExecutionError` needs) is
    its description."""

    description: str

    def describe(self) -> str:
        return self.description


def _request(server: str, method: str, path: str,
             payload: object | None = None,
             timeout: float | None = None) -> dict:
    host, port = parse_server_url(server)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        data = resp.read()
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServerError(
                f"{method} {path}: non-JSON response "
                f"(status {resp.status}): {data[:200]!r}"
            ) from exc
        if resp.status >= 400:
            message = (decoded.get("error", data[:200])
                       if isinstance(decoded, dict) else data[:200])
            retry_after: float | None = None
            header = resp.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            raise ServerError(
                f"{method} {path}: {resp.status} {message}",
                status=resp.status, retry_after=retry_after,
            )
        if not isinstance(decoded, dict):
            raise ServerError(f"{method} {path}: expected an object")
        return decoded
    except (ConnectionError, OSError, http.client.HTTPException) as exc:
        raise ServerError(
            f"{method} {path}: cannot reach sweep server at "
            f"{server}: {exc}"
        ) from exc
    finally:
        conn.close()


def submit(server: str, payload: dict) -> dict:
    """POST one submission (``jobs``/``grid``/``resume`` vocabulary);
    returns the server's ``{"sweep": ..., "status": ...}`` reply."""
    return _request(server, "POST", "/v1/sweeps", payload)


def sweep_status(server: str, sweep_id: str) -> dict:
    return _request(server, "GET", f"/v1/sweeps/{sweep_id}")


def cache_stats(server: str) -> dict:
    """The server's shared-cache report (same structure as
    ``python -m repro.exec cache stats --json``)."""
    return _request(server, "GET", "/v1/cache")


def stream_events(server: str, sweep_id: str,
                  timeout: float | None = None) -> Iterator[dict]:
    """Yield the sweep's NDJSON progress events; ends after
    ``sweep-end`` (or on server EOF)."""
    host, port = parse_server_url(server)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", f"/v1/sweeps/{sweep_id}/events")
        resp = conn.getresponse()
        if resp.status != 200:
            raise ServerError(
                f"GET /v1/sweeps/{sweep_id}/events: {resp.status}"
            )
        buf = b""
        while True:
            chunk = resp.read1(64 * 1024)
            if not chunk:
                return
            buf += chunk
            while b"\n" in buf:
                line, _, buf = buf.partition(b"\n")
                if not line.strip():
                    continue
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("event") == "sweep-end":
                    return
    except (ConnectionError, OSError, http.client.HTTPException) as exc:
        raise ServerError(
            f"event stream for sweep {sweep_id} broke: {exc}"
        ) from exc
    finally:
        conn.close()


def _decode_body(entry: dict) -> object:
    from repro.exec.cache import decode_job_result

    if entry.get("body_kind", "sim") == "sim":
        return decode_job_result(entry["body"])
    return entry["body"]


def _report_from_dict(raw: dict) -> ExecReport:
    report = ExecReport(
        total=int(raw.get("total", 0)),
        cached=int(raw.get("cached", 0)),
        resumed=int(raw.get("resumed", 0)),
        simulated=int(raw.get("simulated", 0)),
        failed=int(raw.get("failed", 0)),
        retried=int(raw.get("retried", 0)),
        run_id=raw.get("run_id"),
    )
    for failure in raw.get("failures", []):
        report.job_failures.append(JobFailure(
            job=_RemoteJob(str(failure.get("job", "?"))),
            message=str(failure.get("message", "failed remotely")),
        ))
    return report


def fetch_results(server: str, sweep_id: str,
                  ) -> tuple[list[object | None], ExecReport]:
    """Ordered (positional) decoded results + final report of a
    finished sweep."""
    reply = _request(server, "GET", f"/v1/sweeps/{sweep_id}/results")
    results: list[object | None] = []
    for entry in reply.get("results", []):
        results.append(None if entry is None else _decode_body(entry))
    return results, _report_from_dict(reply.get("report", {}))


def _pump_events(jobs: list, sweep_id: str, events: Iterator[dict],
                 progress: ProgressFn | None) -> None:
    """Drain a sweep's event stream, translating job outcomes into
    :class:`ExecProgress` callbacks (shared by the one-shot and the
    retrying client)."""
    if progress is None:
        for _ in events:
            pass
        return
    by_hash = {job.content_hash(): job for job in jobs}
    running = ExecReport(total=len(jobs), run_id=sweep_id)
    for event in events:
        kind = event.get("event")
        if kind not in ("cached", "resumed", "simulated", "failed"):
            continue
        setattr(running, kind,
                getattr(running, kind) + 1)
        payload: object | None = None
        if "body" in event:
            payload = _decode_body(event)
        job = by_hash.get(str(event.get("job", "")))
        if job is None:
            continue
        progress(ExecProgress(
            job=job,
            payload=(payload if isinstance(payload, JobResult)
                     else None),
            outcome=str(kind),
            report=running,
        ))


def execute_remote(jobs, server: str,
                   progress: ProgressFn | None = None,
                   ) -> tuple[list[object | None], ExecReport]:
    """Run a batch on a sweep server; local-executor-shaped return.

    Results come back positionally (one slot per job, None where it
    failed terminally), decoded through the byte-stable codec — so a
    remote sweep is indistinguishable from a local one to the caller.
    One-shot: any failure raises immediately; :class:`SweepClient`
    adds retry/backoff/breaker semantics on top of the same wire calls.
    """
    jobs = list(jobs)
    fingerprints = [job.fingerprint_payload() for job in jobs]
    reply = submit(server, {"jobs": fingerprints})
    sweep_id = str(reply["sweep"])
    _pump_events(jobs, sweep_id, stream_events(server, sweep_id),
                 progress)
    return fetch_results(server, sweep_id)


def resume_remote(server: str, run_id: str,
                  ) -> tuple[list[object | None], ExecReport]:
    """Ask the server to resume an interrupted run from its journal."""
    reply = submit(server, {"resume": run_id})
    sweep_id = str(reply["sweep"])
    for _ in stream_events(server, sweep_id):
        pass
    return fetch_results(server, sweep_id)


# ----------------------------------------------------------------------
# overload-aware client: backoff, circuit breaker, resilient streams
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Deterministic seeded exponential backoff with jitter.

    The delay for attempt ``n`` is ``min(cap, base * 2**n)`` scaled by
    a jitter factor drawn from ``make_rng(seed, "client-backoff",
    server, n)`` — a pure function of (seed, server, attempt), so two
    runs of the same client behave identically while two *different*
    submitters (different seeds) desynchronise instead of retrying in
    lockstep (the thundering-herd fix).
    """

    #: Total tries per logical request (first try included).
    attempts: int = 5
    #: First retry delay in seconds; doubles each retry.
    base: float = 0.05
    #: Ceiling on any single delay.
    cap: float = 2.0
    #: Fraction of the delay randomised away: the actual delay is
    #: uniform in ``[delay * (1 - jitter), delay]``.
    jitter: float = 0.5
    #: Root seed for the jitter stream (per-submitter in practice).
    seed: int = 0

    def delay(self, server: str, attempt: int) -> float:
        raw = min(self.cap, self.base * (2.0 ** attempt))
        u = float(make_rng(self.seed, "client-backoff", server,
                           attempt).random())
        return raw * (1.0 - self.jitter * u)


class CircuitBreaker:
    """Per-server circuit breaker: closed → open → half-open.

    ``threshold`` consecutive overload failures (connection refused,
    429, 503) open the circuit; while open, requests fail fast with
    :class:`CircuitOpenError` instead of adding load. After
    ``cooldown`` seconds the breaker goes half-open and admits exactly
    one probe request: success closes the circuit, failure re-opens it
    for another cooldown. The clock is injectable so tests control
    time.
    """

    def __init__(self, *, threshold: int = 3, cooldown: float = 1.0,
                 clock=_monotonic) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """"closed" | "open" | "half-open" (read-only diagnostic)."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a request may proceed right now (a half-open
        breaker admits a single probe at a time)."""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        was_open = self._opened_at is not None
        self._probing = False
        self._failures += 1
        if was_open:
            # Failed half-open probe: fresh cooldown.
            self._opened_at = self._clock()
        elif self._failures >= self.threshold:
            self._opened_at = self._clock()

    def force_open(self) -> None:
        """Trip the breaker immediately (tests, admin tooling)."""
        self._failures = max(self._failures, self.threshold)
        self._opened_at = self._clock()
        self._probing = False


def _overload(exc: ServerError) -> bool:
    """Whether a failure signals overload/unavailability (retryable,
    counts toward the breaker) as opposed to a semantic error (400,
    404, 409... — retrying cannot help, server is plainly alive)."""
    return exc.status in (None, 429, 503)


class SweepClient:
    """Overload-aware synchronous client for one sweep server.

    Wraps the module-level one-shot calls with:

    * retry with :class:`RetryPolicy` backoff on connection failures,
      429 and 503 — honouring the server's ``Retry-After`` when it
      exceeds the computed backoff;
    * a :class:`CircuitBreaker` shared across the client's requests:
      when open, calls raise :class:`CircuitOpenError` without
      touching the network;
    * a resilient event stream that reconnects after mid-stream drops
      and skips the server's replayed history (the server replays all
      events on reconnect — exactly-once delivery to the caller);
    * submitter identity: every submission carries ``submitter`` and
      ``weight`` for the server's fair-share accounting.

    Safe to retry by construction: sweep ids are content-derived, so a
    resubmitted POST attaches to the live sweep instead of forking a
    duplicate.

    ``sleep`` is injectable for tests; ``chaos`` applies the
    ``net_refuse`` client-connect fault deterministically.
    """

    def __init__(self, server: str, *,
                 submitter: str = "anonymous", weight: float = 1.0,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 timeout: float | None = None,
                 sleep=_sleep,
                 chaos: ChaosConfig | None = None) -> None:
        self.server = server
        self.submitter = submitter
        self.weight = weight
        self.retry = retry if retry is not None else RetryPolicy(
            seed=int.from_bytes(submitter.encode()[:4] or b"\0", "big")
        )
        self.breaker = (breaker if breaker is not None
                        else CircuitBreaker())
        self.timeout = timeout
        self._sleep = sleep
        self.chaos = chaos

    # -- request machinery ---------------------------------------------
    def _call(self, method: str, path: str,
              payload: object | None = None) -> dict:
        last: ServerError | None = None
        for attempt in range(self.retry.attempts):
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"{method} {path}: circuit open for {self.server} "
                    f"after repeated overload failures",
                ) from last
            try:
                if (self.chaos is not None
                        and self.chaos.should_refuse(
                            "client-connect", path, attempt)):
                    raise ServerError(
                        f"{method} {path}: connection refused (chaos)"
                    )
                reply = _request(self.server, method, path, payload,
                                 timeout=self.timeout)
            except ServerError as exc:
                if not _overload(exc):
                    raise
                self.breaker.record_failure()
                last = exc
                if attempt + 1 >= self.retry.attempts:
                    break
                delay = self.retry.delay(self.server, attempt)
                if exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
                self._sleep(delay)
                continue
            self.breaker.record_success()
            return reply
        assert last is not None
        if not self.breaker.allow():
            raise CircuitOpenError(
                f"{method} {path}: circuit open for {self.server} "
                f"after {self.retry.attempts} overload failures",
            ) from last
        raise last

    # -- thin endpoint wrappers ----------------------------------------
    def submit(self, payload: dict) -> dict:
        """POST one submission stamped with this client's submitter
        identity (``jobs``/``grid``/``resume`` vocabulary)."""
        stamped = dict(payload)
        stamped.setdefault("submitter", self.submitter)
        stamped.setdefault("weight", self.weight)
        return self._call("POST", "/v1/sweeps", stamped)

    def sweep_status(self, sweep_id: str) -> dict:
        return self._call("GET", f"/v1/sweeps/{sweep_id}")

    def health(self) -> dict:
        """The server's ``/v1/health`` report (queue depth, shares,
        worker liveness, drain state)."""
        return self._call("GET", "/v1/health")

    def drain(self, grace: float | None = None) -> dict:
        """Ask the server to drain gracefully (see
        ``POST /v1/admin/drain``)."""
        body = {} if grace is None else {"grace": grace}
        return self._call("POST", "/v1/admin/drain", body)

    def stream_events(self, sweep_id: str) -> Iterator[dict]:
        """Yield the sweep's events; reconnects on mid-stream drops.

        The server replays the full event history to every subscriber,
        so after a reconnect the first ``seen`` events are skipped —
        the caller observes each event exactly once, in order. Ends
        cleanly after ``sweep-end`` or ``sweep-interrupted``.
        """
        seen = 0
        failures = 0
        while True:
            emitted = 0
            try:
                for event in stream_events(self.server, sweep_id,
                                           timeout=self.timeout):
                    emitted += 1
                    if emitted <= seen:
                        continue  # replayed history after reconnect
                    seen += 1
                    failures = 0
                    yield event
                    kind = event.get("event")
                    if kind in ("sweep-end", "sweep-interrupted"):
                        return
                return  # server ended the stream without a terminator
            except ServerError as exc:
                if not _overload(exc) and exc.status != 404:
                    raise
                # 404 is retryable here: a drained server's replacement
                # may not have seen the resubmission yet.
                failures += 1
                if failures >= self.retry.attempts:
                    raise
                self._sleep(self.retry.delay(
                    f"{self.server}/events", failures))

    def fetch_results(self, sweep_id: str,
                      ) -> tuple[list[object | None], ExecReport]:
        reply = self._call("GET", f"/v1/sweeps/{sweep_id}/results")
        results: list[object | None] = []
        for entry in reply.get("results", []):
            results.append(None if entry is None
                           else _decode_body(entry))
        return results, _report_from_dict(reply.get("report", {}))

    # -- executor-shaped entry points ----------------------------------
    def execute(self, jobs, progress: ProgressFn | None = None,
                ) -> tuple[list[object | None], ExecReport]:
        """Run a batch remotely; same contract as
        :func:`execute_remote` plus retry/backoff/breaker handling.

        Raises :class:`SweepInterrupted` if the server drained before
        the sweep finished (resubmit — to the restarted server — to
        resume), and :class:`CircuitOpenError` when the breaker gives
        up on the server entirely.
        """
        jobs = list(jobs)
        fingerprints = [job.fingerprint_payload() for job in jobs]
        reply = self.submit({"jobs": fingerprints})
        sweep_id = str(reply["sweep"])
        interrupted = False

        def watch(events: Iterator[dict]) -> Iterator[dict]:
            nonlocal interrupted
            for event in events:
                if event.get("event") == "sweep-interrupted":
                    interrupted = True
                yield event

        _pump_events(jobs, sweep_id,
                     watch(self.stream_events(sweep_id)), progress)
        if interrupted:
            raise SweepInterrupted(
                f"sweep {sweep_id} was interrupted by a server drain; "
                f"resubmit to resume from the journal"
            )
        return self.fetch_results(sweep_id)

    def resume(self, run_id: str,
               ) -> tuple[list[object | None], ExecReport]:
        """Resume an interrupted run from the server's journal."""
        reply = self.submit({"resume": run_id})
        sweep_id = str(reply["sweep"])
        for _ in self.stream_events(sweep_id):
            pass
        return self.fetch_results(sweep_id)

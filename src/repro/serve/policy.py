"""Pluggable job-to-worker allocation policies.

The server separates *what completes* from *where it runs*: every
policy yields byte-identical sweep results (test-enforced), because a
job's result depends only on its content, never its placement. Policies
therefore only trade off locality and load balance:

``hash-ring`` (default)
    Consistent hashing with virtual nodes over the job's content hash.
    Placement is a pure function of (job hash, live worker set): when a
    worker joins or leaves, only the ~1/N of jobs that the ring maps to
    the changed worker move — every other job keeps its owner. That
    stability is what makes worker churn cheap (only the dead worker's
    in-flight jobs re-shard) and is property-tested with hypothesis.

``least-loaded``
    Greedy: dispatch to the attached worker with the most free slots.
    Best raw utilisation for heterogeneous job costs; placement depends
    on timing, so no affinity across runs.

``ljf``
    Longest-job-first queue ordering (the single-host farm's
    anti-straggler heuristic, see :func:`repro.exec.pool.execute_jobs`)
    combined with least-loaded placement.

``fair-share``
    Weighted deficit round-robin over *submitters*: each submitter's
    pending jobs form a virtual queue, and every round each queue
    earns ``weight x quantum`` of deficit to spend on its own jobs in
    submission order. One huge grid can no longer starve a small one —
    worker slots are shared in proportion to weight, which is the
    paper's IQ lesson (a shared structure collapses under unregulated
    contention; dispatch policy must arbitrate it) applied to the
    server's shared job queue. Placement rides least-loaded.

Every policy is **placement/ordering-only**: byte-identical sweep
results under any policy is test-enforced, because a job's result
depends only on its content, never on where or when it ran.

Selection: ``python -m repro.serve server --policy NAME`` or
:func:`make_policy`.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

#: Virtual nodes per worker on the hash ring. More points smooth the
#: per-worker share toward 1/N at the cost of ring size; 64 keeps the
#: max/min share ratio under ~1.5 for small clusters.
RING_REPLICAS = 64


@dataclass(slots=True)
class WorkerView:
    """What a policy may know about one attached worker."""

    name: str
    #: Concurrent jobs the worker will run.
    slots: int
    #: Jobs currently dispatched to it and not yet resolved.
    in_flight: int

    @property
    def free(self) -> int:
        return self.slots - self.in_flight


@dataclass(frozen=True, slots=True)
class QueueEntry:
    """What a policy may know about one queued job."""

    hash: str
    #: Relative cost estimate (``max_insns``-shaped, policy-agnostic).
    cost: float
    #: Submitter id carried in the submission that first enqueued the
    #: job (dedup waiters from other submitters ride along for free).
    submitter: str = "anonymous"
    #: The submitter's fair-share weight (>= 0; 0 never starves — it
    #: is clamped to a minimal share).
    weight: float = 1.0
    #: Server-wide enqueue sequence number: the submission-order
    #: tiebreak every ordering falls back to.
    seq: int = 0


def _ring_point(label: str) -> int:
    """Position of a label on the 64-bit ring (stable across runs and
    platforms — plain sha256, no process-seeded hashing)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def ring_assign(job_hash: str, worker_names: Sequence[str],
                replicas: int = RING_REPLICAS) -> str:
    """Pure consistent-hash assignment: the ring owner of ``job_hash``
    among ``worker_names``.

    Exposed standalone so the stability property — adding a worker only
    moves keys *to* the new worker; removing one only moves the removed
    worker's keys — can be tested without a server.
    """
    if not worker_names:
        raise ValueError("ring_assign needs at least one worker")
    points: list[tuple[int, str]] = []
    for name in worker_names:
        for i in range(replicas):
            points.append((_ring_point(f"{name}#{i}"), name))
    points.sort()
    keys = [p for p, _ in points]
    idx = bisect.bisect_right(keys, _ring_point(job_hash)) % len(points)
    return points[idx][1]


class AllocationPolicy:
    """Strategy for ordering the queue and placing jobs on workers."""

    name = "base"

    def queue_order(self, pending: Sequence[QueueEntry]) -> list[str]:
        """Dispatch order for the pending :class:`QueueEntry` items.
        Default: submission order (enqueue sequence)."""
        return [e.hash for e in sorted(pending, key=lambda e: e.seq)]

    def pick_worker(self, job_hash: str, cost: float,
                    workers: Sequence[WorkerView]) -> str | None:
        """Worker to run ``job_hash`` on, or None to leave it queued
        (no worker acceptable right now)."""
        raise NotImplementedError


class HashRingPolicy(AllocationPolicy):
    """Consistent hashing: each job goes to its ring owner, full or
    not being the owner's problem — a full owner leaves the job queued
    rather than migrating it, preserving placement stability."""

    name = "hash-ring"

    def __init__(self, replicas: int = RING_REPLICAS) -> None:
        self.replicas = replicas

    def pick_worker(self, job_hash: str, cost: float,
                    workers: Sequence[WorkerView]) -> str | None:
        live = [w for w in workers if w.slots > 0]
        if not live:
            return None
        owner = ring_assign(job_hash, [w.name for w in live],
                            self.replicas)
        view = next(w for w in live if w.name == owner)
        return owner if view.free > 0 else None


class LeastLoadedPolicy(AllocationPolicy):
    """Greedy: most free slots wins (ties broken by name for
    determinism given the same worker states)."""

    name = "least-loaded"

    def pick_worker(self, job_hash: str, cost: float,
                    workers: Sequence[WorkerView]) -> str | None:
        best: WorkerView | None = None
        for w in sorted(workers, key=lambda w: w.name):
            if w.free <= 0:
                continue
            if best is None or w.free > best.free:
                best = w
        return best.name if best is not None else None


class LJFPolicy(LeastLoadedPolicy):
    """Longest-job-first ordering on top of least-loaded placement —
    the distributed analogue of the single-host farm's anti-straggler
    sort."""

    name = "ljf"

    def queue_order(self, pending: Sequence[QueueEntry]) -> list[str]:
        return [e.hash for e in
                sorted(pending, key=lambda e: (-e.cost, e.hash))]


#: Floor applied to a submitter's weight so a zero/negative weight can
#: deprioritise but never fully starve a submitter (starvation-freedom
#: is the point of the policy).
MIN_WEIGHT = 1e-3


class FairSharePolicy(LeastLoadedPolicy):
    """Per-submitter weighted deficit round-robin (DRR) ordering.

    Each submitter owns a virtual FIFO of its pending jobs (enqueue
    sequence order). Rounds visit submitters in sorted-name order;
    each visit credits the submitter's *deficit counter* with
    ``weight x quantum`` (quantum = the largest pending cost, so every
    round lets a weight-1 submitter afford at least its cheapest job)
    and then emits that submitter's jobs front-to-back while the
    deficit covers their cost. Leftover deficit carries across rounds
    — and across dispatch cycles while the submitter stays backlogged
    — so long-run worker-slot shares converge to the weight ratio even
    with heterogeneous job costs. A submitter whose queue drains loses
    its accumulated deficit (classic DRR: you cannot bank credit while
    idle).

    Ordering-only by construction: the emitted list is a permutation
    of the pending hashes, and placement is inherited least-loaded.
    """

    name = "fair-share"

    def __init__(self) -> None:
        #: Deficit carried per backlogged submitter between calls.
        self._deficit: dict[str, float] = {}

    def queue_order(self, pending: Sequence[QueueEntry]) -> list[str]:
        queues: dict[str, list[QueueEntry]] = {}
        weights: dict[str, float] = {}
        for entry in sorted(pending, key=lambda e: e.seq):
            queues.setdefault(entry.submitter, []).append(entry)
            weights[entry.submitter] = max(entry.weight, MIN_WEIGHT)
        # Idle submitters forfeit banked deficit (standard DRR reset).
        self._deficit = {s: d for s, d in self._deficit.items()
                         if s in queues}
        if not queues:
            return []
        quantum = max(e.cost for e in pending) or 1.0
        order: list[str] = []
        heads = {s: 0 for s in queues}
        while len(order) < len(pending):
            for submitter in sorted(queues):
                queue = queues[submitter]
                head = heads[submitter]
                if head >= len(queue):
                    continue
                credit = self._deficit.get(submitter, 0.0)
                credit += quantum * weights[submitter]
                while head < len(queue) and queue[head].cost <= credit:
                    credit -= queue[head].cost
                    order.append(queue[head].hash)
                    head += 1
                heads[submitter] = head
                # Backlogged submitters bank the remainder (that is
                # the "deficit" in DRR — a low-weight submitter saves
                # up across rounds until it can afford its head job);
                # a drained queue forfeits it (no banking while idle).
                self._deficit[submitter] = (credit if head < len(queue)
                                            else 0.0)
        return order


POLICIES: dict[str, type[AllocationPolicy]] = {
    HashRingPolicy.name: HashRingPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    LJFPolicy.name: LJFPolicy,
    FairSharePolicy.name: FairSharePolicy,
}


def make_policy(name: str) -> AllocationPolicy:
    """Instantiate a policy by CLI name; unknown names raise with the
    valid choices listed."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown allocation policy {name!r}; "
            f"choices: {', '.join(sorted(POLICIES))}"
        ) from None
    return cls()

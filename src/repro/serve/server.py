"""The sweep server: submissions in, sharded jobs out, results shared.

One :class:`SweepServer` owns four pieces of state, all mutated from a
single asyncio event loop (no locks):

* ``sweeps`` — one :class:`Sweep` per submission batch, keyed by the
  content-derived run id (:func:`repro.exec.journal.derive_run_id`).
  Two clients submitting the same grid concurrently get the *same*
  sweep object — the second submission attaches to the in-flight run.
  Each sweep drives its own :class:`~repro.exec.ledger.JobLedger`, so
  cache replay, journalling, retry accounting and progress events work
  exactly as they do for the single-host executor.
* ``jobs`` — the cross-sweep dedup table, keyed by job content hash.
  However many sweeps want a grid point, it executes at most once; each
  waiting (sweep, index) pair is resolved when the result lands.
* ``workers`` — the attached fleet. Placement is delegated to a
  pluggable :class:`~repro.serve.policy.AllocationPolicy` (consistent
  hash ring by default). A worker that disconnects, stops heartbeating
  or blows its job deadline has its in-flight jobs requeued through the
  normal retry budget — worker churn is just another fault.
* shared stores — one :class:`~repro.exec.cache.ResultCache` (the
  schema-v2 checksummed store doubles as the cluster-wide shared
  cache; a re-submitted grid is served from it without touching a
  worker) and one :class:`~repro.exec.journal.RunJournal` per sweep
  (the fsync'd journal doubles as the replication log: a server restart
  followed by re-submission — or ``{"resume": "<run-id>"}`` — replays
  completed grid points with zero re-simulation).

Overload model (see docs/distributed.md "Operating under load"): the
shared job queue is a contended structure exactly like the paper's
shared issue queue, so the server regulates it explicitly instead of
letting implicit FIFO decide. **Admission control** bounds unresolved
jobs: up to ``max_in_flight`` a submission is ``admitted``; beyond
that (but within ``max_in_flight + max_queue``) it is accepted
``queued``; past the queue bound the submission gets a structured
HTTP 429 with ``Retry-After``. **Fair share**: submissions carry a
``submitter`` id and ``weight``; the ``fair-share`` policy runs
weighted deficit round-robin over submitters so no grid starves
another (ordering-only — bytes never change). **Graceful drain**
(``POST /v1/admin/drain`` or SIGTERM): stop admitting, let dispatched
jobs finish against a deadline, journal the remainder as
``interrupted``, send workers the ``shutdown`` frame — a restart +
resubmission then replays every completed point with zero
re-simulation, the crash invariant extended to clean restarts.
``GET /v1/health`` reports all of it: queue depth, per-submitter
shares, worker liveness, drain state.

Failure model (see docs/distributed.md): results are **exactly-once**
— attempts are at-least-once (dropped frames, dead workers and
deadlines re-dispatch; duplicate and late result frames for a resolved
hash are discarded), but a job's effect lands once because jobs are
pure functions of their content and the dedup table resolves each hash
a single time per sweep index. Every result frame is checksummed with
the same digest the on-disk cache uses; a corrupt frame is treated as
lost, never believed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic as _monotonic  # repro: noqa[RPR001]

from repro.exec.cache import ResultCache, encode_job_result
from repro.exec.chaos import ChaosConfig
from repro.exec.jobs import JobResult, jobs_for_grid
from repro.exec.journal import RunJournal, derive_run_id
from repro.exec.ledger import ExecProgress, JobLedger
from repro.serve.http import (
    ProtocolError,
    Request,
    read_request,
    send_error,
    send_json,
    start_stream,
)
from repro.serve.policy import (
    AllocationPolicy,
    QueueEntry,
    WorkerView,
    make_policy,
)
from repro.serve.protocol import (
    FrameError,
    decode_result_frame,
    job_from_fingerprint,
    read_frame,
    send_frame,
)

#: Default grace (seconds of heartbeat silence) before a worker is
#: declared dead and its in-flight jobs re-shard.
DEFAULT_HEARTBEAT_GRACE = 5.0

#: Period of the deadline/heartbeat sweep task.
_TICK_SECONDS = 0.05

#: Default drain grace: how long dispatched jobs get to finish before
#: the remainder is journalled as ``interrupted``.
DEFAULT_DRAIN_GRACE = 10.0

#: Submitter id assumed when a submission does not carry one.
DEFAULT_SUBMITTER = "anonymous"


def _encode_body(payload: object) -> tuple[object, str]:
    """(JSON-safe body, kind) for a resolved payload — the same
    discrimination the journal and the wire protocol use."""
    if isinstance(payload, JobResult):
        return encode_job_result(payload), "sim"
    return payload, "raw"


@dataclass(slots=True)
class Sweep:
    """One submission batch and its ledger-driven lifecycle."""

    sweep_id: str
    ledger: JobLedger
    #: Event history (replayed to every ``/events`` subscriber).
    events: list[dict] = field(default_factory=list)
    #: Live subscriber queues; a ``None`` item ends the stream.
    queues: list[asyncio.Queue] = field(default_factory=list)
    finished: bool = False
    #: Who submitted it (fair-share attribution).
    submitter: str = DEFAULT_SUBMITTER
    #: Set when a drain journalled the sweep's remainder as
    #: ``interrupted`` — it will never finish on this server; a
    #: resubmission after restart resumes it.
    interrupted: bool = False

    def emit(self, event: dict) -> None:
        self.events.append(event)
        for q in self.queues:
            q.put_nowait(event)

    def end_streams(self) -> None:
        for q in self.queues:
            q.put_nowait(None)
        self.queues.clear()


@dataclass(slots=True)
class _SubmitterShare:
    """Fair-share bookkeeping for one submitter id."""

    weight: float = 1.0
    #: Sweeps this submitter has submitted (attach included).
    sweeps: int = 0
    #: Jobs first enqueued on this submitter's behalf.
    submitted: int = 0
    #: Of those, resolved successfully / failed terminally.
    completed: int = 0
    failed: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "weight": self.weight, "sweeps": self.sweeps,
            "submitted": self.submitted, "completed": self.completed,
            "failed": self.failed,
        }


@dataclass(slots=True)
class _JobState:
    """Cross-sweep execution state of one content hash."""

    job: object
    cost: float
    #: "queued" | "dispatched" | "done" | "failed"
    status: str = "queued"
    attempt: int = 0
    worker: str | None = None
    deadline: float | None = None
    payload: object | None = None
    error: str | None = None
    #: (sweep, index-in-that-sweep) pairs awaiting this hash.
    waiters: list[tuple[Sweep, int]] = field(default_factory=list)
    #: Fair-share attribution: the submitter whose submission first
    #: enqueued this hash, its weight, and the enqueue sequence number
    #: (the submission-order tiebreak policies fall back to).
    submitter: str = DEFAULT_SUBMITTER
    weight: float = 1.0
    seq: int = 0


@dataclass(slots=True)
class _Worker:
    """One attached worker connection."""

    name: str
    slots: int
    pid: int
    writer: asyncio.StreamWriter
    last_beat: float
    in_flight: set[str] = field(default_factory=set)


class SweepServer:
    """Asyncio HTTP/JSON job server for distributed sweeps.

    ``await start()`` binds and returns the port; ``await stop()``
    tears everything down. All handlers run on the caller's loop.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 cache_dir: str | Path | None = None,
                 journal_dir: str | Path | None = None,
                 policy: AllocationPolicy | str = "hash-ring",
                 retries: int = 1,
                 timeout: float | None = None,
                 heartbeat_grace: float = DEFAULT_HEARTBEAT_GRACE,
                 chaos: ChaosConfig | None = None,
                 rotate_bytes: int | None = None,
                 max_in_flight: int | None = None,
                 max_queue: int | None = None,
                 drain_grace: float = DEFAULT_DRAIN_GRACE) -> None:
        self.host = host
        self.port = port
        self.cache = (ResultCache(cache_dir, chaos=chaos)
                      if cache_dir is not None else None)
        self.journal_dir = (Path(journal_dir)
                            if journal_dir is not None else None)
        self.policy = (make_policy(policy) if isinstance(policy, str)
                       else policy)
        self.retries = retries
        self.timeout = timeout
        self.heartbeat_grace = heartbeat_grace
        self.chaos = chaos
        self.rotate_bytes = rotate_bytes
        #: Admission budget: unresolved jobs up to this are ``admitted``
        #: (dispatch-eligible immediately); None = unbounded.
        self.max_in_flight = max_in_flight
        #: Backlog headroom past the budget before submissions are
        #: rejected with 429; None = unbounded backlog.
        self.max_queue = max_queue
        self.drain_grace = drain_grace

        self.sweeps: dict[str, Sweep] = {}
        self.jobs: dict[str, _JobState] = {}
        self.workers: dict[str, _Worker] = {}
        #: Per-submitter fair-share registry (weights + counters).
        self.submitters: dict[str, _SubmitterShare] = {}
        #: "serving" | "draining" | "drained".
        self.state = "serving"
        self._wake = asyncio.Event()
        self._server: asyncio.Server | None = None
        self._tasks: list[asyncio.Task] = []
        self._worker_seq = 0
        self._enqueue_seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]  # repro: noqa[RPR017] — rebinds port 0 to the OS-assigned port once, before any handler can run
        self._tasks = [
            asyncio.ensure_future(self._dispatch_loop()),
            asyncio.ensure_future(self._tick_loop()),
        ]
        return self.port

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        self._tasks = []
        for w in list(self.workers.values()):
            try:
                await send_frame(w.writer, {"type": "shutdown"})
            except (ConnectionError, OSError):  # repro: noqa[RPR007]
                pass  # already gone; nothing to shut down
            w.writer.close()
        self.workers.clear()
        # Claim-then-close: the attribute is cleared *before* the
        # await, so a re-entrant stop() sees None instead of closing
        # the same server twice across the suspension point.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for sweep in self.sweeps.values():
            if not sweep.finished:
                # In-flight ledger: the fsync'd journal already holds
                # every completed transition; just release the fd.
                sweep.ledger.close()

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------
    def submit(self, jobs: list, run_id: str | None = None,
               resume: bool = False,
               submitter: str = DEFAULT_SUBMITTER,
               weight: float = 1.0) -> Sweep:
        """Create (or attach to) the sweep executing ``jobs``.

        ``submitter``/``weight`` feed the fair-share ledger: jobs first
        enqueued by this submission are attributed to ``submitter``,
        and a ``fair-share`` policy shares worker slots across
        submitters in proportion to their weights.
        """
        share = self.submitters.setdefault(submitter, _SubmitterShare())
        share.weight = weight
        share.sweeps += 1
        hashes = [job.content_hash() for job in jobs]
        sweep_id = run_id or derive_run_id(hashes)
        existing = self.sweeps.get(sweep_id)
        if existing is not None and not existing.finished:
            return existing

        journal = None
        if self.journal_dir is not None:
            path = self.journal_dir / f"{sweep_id}.jsonl"
            journal = RunJournal(
                self.journal_dir, sweep_id,
                # The journal is the replication log: if a prior server
                # (or a single-host run) journalled this grid, resume
                # it instead of rotating its completed work aside.
                resume=resume or path.exists(),
                rotate_bytes=self.rotate_bytes,
            )

        sweep = Sweep(sweep_id=sweep_id, ledger=JobLedger(
            jobs, hashes=hashes, cache=self.cache, journal=journal,
            resume=journal is not None, retries=self.retries,
            progress=None,
        ), submitter=submitter)
        # Bind the progress stream after construction so the callback
        # can close over the sweep object itself.
        sweep.ledger.progress = lambda ev: self._emit_progress(sweep, ev)
        self.sweeps[sweep_id] = sweep
        sweep.emit({"event": "sweep-start", "sweep": sweep_id,
                    "total": len(jobs), "submitter": submitter})

        pending = sweep.ledger.open()
        for idx in pending:
            self._enqueue(sweep, idx)
        self._check_sweep(sweep)
        self._wake.set()
        return sweep

    def _enqueue(self, sweep: Sweep, idx: int) -> None:
        job_hash = sweep.ledger.hashes[idx]
        job = sweep.ledger.jobs[idx]
        st = self.jobs.get(job_hash)
        if st is None or st.status == "failed":
            # Fresh hash — or a hash that failed terminally for an
            # earlier sweep: a new submission buys a fresh budget.
            self._enqueue_seq += 1
            share = self.submitters.setdefault(
                sweep.submitter, _SubmitterShare()
            )
            share.submitted += 1
            st = _JobState(
                job=job, cost=float(job.cost_estimate()),
                submitter=sweep.submitter, weight=share.weight,
                seq=self._enqueue_seq,
            )
            self.jobs[job_hash] = st
        if st.status == "done":
            # Dedup hit against a batch resolved earlier this session
            # (covers WorkJobs and cache-less servers; disk-cache hits
            # were already taken in ledger.open()).
            sweep.ledger.complete(idx, st.payload)
            return
        st.waiters.append((sweep, idx))

    def _emit_progress(self, sweep: Sweep, ev: ExecProgress) -> None:
        event: dict[str, object] = {
            "event": ev.outcome,
            "job": ev.job.content_hash(),
            "completed": ev.report.completed,
            "total": ev.report.total,
        }
        if ev.payload is not None:
            body, kind = _encode_body(ev.payload)
            event["body"] = body
            event["body_kind"] = kind
        sweep.emit(event)

    def _check_sweep(self, sweep: Sweep) -> None:
        if sweep.finished or not sweep.ledger.done:
            return
        sweep.ledger.summarize()
        sweep.ledger.close()
        sweep.finished = True
        sweep.emit({"event": "sweep-end", "sweep": sweep.sweep_id,
                    "report": sweep.ledger.report.as_dict()})
        for q in sweep.queues:
            q.put_nowait(None)
        sweep.queues.clear()

    # ------------------------------------------------------------------
    # job resolution
    # ------------------------------------------------------------------
    def _resolve(self, st: _JobState, job_hash: str,
                 payload: object) -> None:
        """A valid result landed for ``job_hash``: fan out to waiters."""
        if st.worker is not None:
            w = self.workers.get(st.worker)
            if w is not None:
                w.in_flight.discard(job_hash)
        st.status = "done"
        st.payload = payload
        st.worker = None
        st.deadline = None
        share = self.submitters.get(st.submitter)
        if share is not None:
            share.completed += 1
        waiters, st.waiters = st.waiters, []
        for sweep, idx in waiters:
            sweep.ledger.complete(idx, payload)
        for sweep, _ in waiters:
            self._check_sweep(sweep)
        self._wake.set()

    def _attempt_failed(self, st: _JobState, job_hash: str,
                        error: str) -> None:
        """One attempt died (crash, deadline, lost frame): retry or
        fail through every waiting ledger's budget."""
        if st.worker is not None:
            w = self.workers.get(st.worker)
            if w is not None:
                w.in_flight.discard(job_hash)
        st.worker = None
        st.deadline = None
        retryable = st.attempt < self.retries
        for sweep, idx in st.waiters:
            if retryable:
                sweep.ledger.retry(idx, st.attempt, error)
            else:
                sweep.ledger.fail(idx, error)
        if retryable:
            st.attempt += 1
            st.status = "queued"
            self._wake.set()
            return
        st.status = "failed"
        st.error = error
        share = self.submitters.get(st.submitter)
        if share is not None:
            share.failed += 1
        waiters, st.waiters = st.waiters, []
        for sweep, _ in waiters:
            self._check_sweep(sweep)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            await self._dispatch_once()

    async def _dispatch_once(self) -> None:
        if self.state != "serving":
            # Draining: in-flight jobs may finish, nothing new starts.
            return
        queued = [
            QueueEntry(hash=h, cost=st.cost, submitter=st.submitter,
                       weight=st.weight, seq=st.seq)
            for h, st in self.jobs.items() if st.status == "queued"
        ]
        if not queued or not self.workers:
            return
        for job_hash in self.policy.queue_order(queued):
            st = self.jobs[job_hash]
            if st.status != "queued":
                continue
            views = [WorkerView(w.name, w.slots, len(w.in_flight))
                     for w in self.workers.values()]
            target = self.policy.pick_worker(job_hash, st.cost, views)
            if target is None:
                continue
            await self._dispatch_to(self.workers[target], st, job_hash)

    async def _dispatch_to(self, w: _Worker, st: _JobState,
                           job_hash: str) -> None:
        st.status = "dispatched"
        st.worker = w.name
        if self.timeout is not None:
            st.deadline = _monotonic() + self.timeout
        w.in_flight.add(job_hash)
        for sweep, idx in st.waiters:
            sweep.ledger.start(idx, st.attempt)
        frame = {
            "type": "job",
            "hash": job_hash,
            "attempt": st.attempt,
            "fingerprint": st.job.fingerprint_payload(),
            "timeout": self.timeout,
        }
        try:
            # A chaos "drop" here means the worker never hears about
            # the job — the deadline sweep re-dispatches the attempt,
            # exactly like a lost packet would play out.
            await send_frame(w.writer, frame, chaos=self.chaos,
                             site="serve-dispatch", key=job_hash,
                             attempt=st.attempt)
        except (ConnectionError, OSError):
            await self._drop_worker(w, "connection lost")

    # ------------------------------------------------------------------
    # worker fleet
    # ------------------------------------------------------------------
    async def _serve_worker(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            hello = await read_frame(reader)
        except FrameError:
            writer.close()
            return
        if hello is None or hello.get("type") != "hello":
            writer.close()
            return
        self._worker_seq += 1
        name = str(hello.get("name") or f"worker-{self._worker_seq}")
        old = self.workers.get(name)
        if old is not None:
            # A reconnect under the same name supersedes the old link.
            await self._drop_worker(old, "superseded")
        w = _Worker(
            name=name, slots=max(1, int(hello.get("slots", 1))),
            pid=int(hello.get("pid", 0)), writer=writer,
            last_beat=_monotonic(),
        )
        self.workers[name] = w
        self._wake.set()
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "heartbeat":
                    w.last_beat = _monotonic()
                elif kind == "result":
                    self._on_result(frame)
                elif kind == "job-error":
                    self._on_job_error(frame)
        except (FrameError, ConnectionError, OSError):  # repro: noqa[RPR007]
            pass  # treated identically to a clean disconnect below
        finally:
            await self._drop_worker(w, "disconnected")

    async def _drop_worker(self, w: _Worker, reason: str) -> None:
        if self.workers.get(w.name) is w:
            del self.workers[w.name]
        w.writer.close()
        if self.state == "drained":
            # Drain already journalled every unresolved job as
            # interrupted and closed the ledgers — a straggling
            # disconnect must not write retry records to them.
            w.in_flight.clear()
            return
        for job_hash in list(w.in_flight):
            st = self.jobs.get(job_hash)
            if (st is not None and st.status == "dispatched"
                    and st.worker == w.name):
                self._attempt_failed(
                    st, job_hash, f"worker {w.name} {reason}"
                )
        w.in_flight.clear()
        self._wake.set()

    def _on_result(self, frame: dict) -> None:
        job_hash = str(frame.get("hash", ""))
        st = self.jobs.get(job_hash)
        if st is None or st.status in ("done", "failed"):
            return  # duplicate or late delivery: already resolved
        payload = decode_result_frame(frame)
        if payload is None:
            # Checksum mismatch: the frame is corrupt and therefore
            # *lost*, never believed. Re-dispatch the current attempt
            # if this was it; stale corrupt frames are just ignored.
            if (st.status == "dispatched"
                    and frame.get("attempt") == st.attempt):
                self._attempt_failed(st, job_hash,
                                     "corrupt result frame")
            return
        # A late result from a superseded attempt is still a valid
        # result — jobs are pure functions of their content.
        self._resolve(st, job_hash, payload)

    def _on_job_error(self, frame: dict) -> None:
        job_hash = str(frame.get("hash", ""))
        st = self.jobs.get(job_hash)
        if (st is None or st.status != "dispatched"
                or frame.get("attempt") != st.attempt):
            return  # stale error for an attempt we already gave up on
        self._attempt_failed(
            st, job_hash, str(frame.get("error") or "job failed")
        )

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(_TICK_SECONDS)
            now = _monotonic()
            for w in list(self.workers.values()):
                if now - w.last_beat > self.heartbeat_grace:
                    await self._drop_worker(w, "stopped heartbeating")
            for job_hash, st in list(self.jobs.items()):
                if (st.status == "dispatched" and st.deadline is not None
                        and now > st.deadline):
                    self._attempt_failed(
                        st, job_hash,
                        f"timed out after {self.timeout:g}s",
                    )
            self._wake.set()

    # ------------------------------------------------------------------
    # overload control: admission, fair-share accounting, drain
    # ------------------------------------------------------------------
    def unresolved_count(self) -> int:
        """Jobs admitted but not yet resolved (queued + dispatched)."""
        return sum(1 for st in self.jobs.values()
                   if st.status in ("queued", "dispatched"))

    def total_slots(self) -> int:
        return sum(w.slots for w in self.workers.values())

    def admission(self, incoming: int) -> tuple[str, int]:
        """Admission decision for a submission adding ``incoming``
        not-yet-resolved jobs.

        Returns ``(verdict, retry_after)`` where verdict is
        ``"admitted"`` (within the in-flight budget), ``"queued"``
        (over budget but within the bounded backlog) or ``"rejected"``
        (the backlog is full too — answer 429). ``retry_after`` is the
        suggested client wait in whole seconds: the excess over budget
        amortised across the fleet's slots, floored at 1 — coarse by
        design, deterministic by construction.
        """
        unresolved = self.unresolved_count()
        after = unresolved + incoming
        if self.max_in_flight is None or after <= self.max_in_flight:
            return "admitted", 0
        excess = after - self.max_in_flight
        retry_after = max(1, -(-excess // max(1, self.total_slots())))
        if self.max_queue is not None and excess > self.max_queue:
            return "rejected", retry_after
        return "queued", retry_after

    def submitter_shares(self) -> dict[str, dict[str, object]]:
        """Per-submitter fair-share snapshot (the ``/v1/health``
        payload): registry counters plus live queue occupancy."""
        shares = {name: share.as_dict()
                  for name, share in self.submitters.items()}
        for st in self.jobs.values():
            if st.status in ("queued", "dispatched"):
                entry = shares.setdefault(
                    st.submitter, _SubmitterShare().as_dict()
                )
                entry[st.status] = int(entry.get(st.status, 0)) + 1
        for entry in shares.values():
            entry.setdefault("queued", 0)
            entry.setdefault("dispatched", 0)
        return shares

    def health(self) -> dict[str, object]:
        """The ``GET /v1/health`` report."""
        now = _monotonic()
        queued = sum(1 for st in self.jobs.values()
                     if st.status == "queued")
        dispatched = sum(1 for st in self.jobs.values()
                         if st.status == "dispatched")
        return {
            "state": self.state,
            "queue": {
                "queued": queued,
                "dispatched": dispatched,
                "unresolved": queued + dispatched,
                "budget": self.max_in_flight,
                "queue_bound": self.max_queue,
            },
            "submitters": self.submitter_shares(),
            "workers": [
                {"name": w.name, "slots": w.slots, "pid": w.pid,
                 "in_flight": len(w.in_flight),
                 "beat_age": round(now - w.last_beat, 3),
                 "alive": now - w.last_beat <= self.heartbeat_grace}
                for w in self.workers.values()
            ],
            "sweeps": {
                "total": len(self.sweeps),
                "running": sum(1 for s in self.sweeps.values()
                               if not s.finished and not s.interrupted),
                "interrupted": sum(1 for s in self.sweeps.values()
                                   if s.interrupted),
            },
            "policy": self.policy.name,
        }

    async def drain(self, grace: float | None = None) -> dict:
        """Gracefully wind the server down under load.

        Stops admitting submissions (they answer 503), stops
        dispatching queued jobs, gives already-dispatched jobs
        ``grace`` seconds (default ``drain_grace``) to finish — their
        results journal as ``done`` exactly as in normal operation —
        then journals every still-unresolved job as ``interrupted``,
        ends all event streams, and sends every worker the ``shutdown``
        frame. Because the journal is the replication log, a restarted
        server given the same submissions replays all completed points
        with zero re-simulation and executes only the remainder.

        Idempotent: a second call returns the summary immediately.
        """
        if self.state == "drained":
            return {"state": self.state, "interrupted": 0, "finished": 0}
        self.state = "draining"
        grace = self.drain_grace if grace is None else grace
        # noqa[RPR010] on the clock reads: the grace deadline is
        # operational wall-clock (how long an operator waits), never
        # simulation state — results are journalled, not timed.
        deadline = _monotonic() + grace  # repro: noqa[RPR010] — drain grace is operational time
        finished = 0
        while _monotonic() < deadline:  # repro: noqa[RPR010] — drain grace is operational time
            if not any(st.status == "dispatched"
                       for st in self.jobs.values()):
                break
            await asyncio.sleep(_TICK_SECONDS)

        interrupted = 0
        for st in self.jobs.values():
            if st.status not in ("queued", "dispatched"):
                finished += 1
                continue
            interrupted += 1
            for sweep, idx in st.waiters:
                sweep.ledger.interrupt(idx, st.attempt or None)
        for sweep in self.sweeps.values():
            if sweep.finished:
                continue
            sweep.interrupted = True
            sweep.emit({"event": "sweep-interrupted",
                        "sweep": sweep.sweep_id,
                        "completed": sweep.ledger.report.completed,
                        "total": sweep.ledger.report.total})
            sweep.end_streams()
            # No run-end record: that absence is how a resubmission
            # knows the journal is an incomplete run to resume.
            sweep.ledger.close()
        for w in list(self.workers.values()):
            try:
                await send_frame(w.writer, {"type": "shutdown"})
            except (ConnectionError, OSError):  # repro: noqa[RPR007]
                pass  # worker already gone; drain proceeds
            w.writer.close()
        self.workers.clear()
        self.state = "drained"  # repro: noqa[RPR017] — drain() is the only writer of state after start; concurrent drains converge on the same value
        return {"state": self.state, "interrupted": interrupted,
                "finished": finished}

    # ------------------------------------------------------------------
    # HTTP surface
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                req = await read_request(reader)
            except ProtocolError as exc:
                await send_error(writer, 400, str(exc))
                return
            if req is None:
                return
            if req.method == "POST" and req.path == "/v1/workers/attach":
                if self.state != "serving":
                    # A draining server wants fewer workers, not more:
                    # upgrade, then immediately wave the worker off so
                    # its supervisor backs off instead of flapping.
                    await start_stream(writer)
                    await send_frame(writer, {"type": "shutdown"})
                    return
                # Upgrade: this connection becomes the worker link and
                # outlives the handler's request/response framing.
                await start_stream(writer)
                await self._serve_worker(reader, writer)
                return
            await self._route(req, reader, writer)
        except (ConnectionError, OSError):  # repro: noqa[RPR007]
            pass  # peer vanished mid-response; nothing to salvage
        finally:
            writer.close()

    async def _route(self, req: Request, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        if req.method == "POST" and req.path == "/v1/sweeps":
            await self._post_sweeps(req, writer)
            return
        if req.method == "POST" and req.path == "/v1/admin/drain":
            await self._post_drain(req, writer)
            return
        if req.method == "GET":
            if req.path == "/v1/health":
                await self._get_health(writer)
                return
            if req.path == "/v1/healthz":
                await send_json(writer, 200, {
                    "ok": True,
                    "workers": len(self.workers),
                    "sweeps": len(self.sweeps),
                })
                return
            if req.path == "/v1/workers":
                await send_json(writer, 200, {"workers": [
                    {"name": w.name, "slots": w.slots, "pid": w.pid,
                     "in_flight": len(w.in_flight)}
                    for w in self.workers.values()
                ]})
                return
            if req.path == "/v1/cache":
                if self.cache is None:
                    await send_error(writer, 404,
                                     "server runs without a cache")
                    return
                await send_json(writer, 200,
                                self.cache.stats().as_dict())
                return
            parts = req.path.strip("/").split("/")
            if len(parts) >= 3 and parts[:2] == ["v1", "sweeps"]:
                sweep = self.sweeps.get(parts[2])
                if sweep is None:
                    await send_error(writer, 404,
                                     f"no sweep {parts[2]}")
                    return
                if len(parts) == 3:
                    await self._get_sweep(sweep, writer)
                    return
                if len(parts) == 4 and parts[3] == "events":
                    await self._get_events(sweep, writer)
                    return
                if len(parts) == 4 and parts[3] == "results":
                    await self._get_results(sweep, writer)
                    return
        await send_error(writer, 404, f"no route {req.method} {req.path}")

    async def _post_sweeps(self, req: Request,
                           writer: asyncio.StreamWriter) -> None:
        if self.state != "serving":
            await send_error(
                writer, 503, f"server is {self.state}; not accepting "
                "submissions — resubmit to the replacement server",
                headers={"Retry-After": "1"}, state=self.state,
            )
            return
        try:
            payload = req.json()
        except ProtocolError as exc:
            await send_error(writer, 400, str(exc))
            return
        if not isinstance(payload, dict):
            await send_error(writer, 400, "submission must be an object")
            return
        try:
            jobs, run_id, resume = self._jobs_from_submission(payload)
        except (KeyError, TypeError, ValueError) as exc:
            await send_error(writer, 400, f"bad submission: {exc}")
            return
        if not jobs:
            await send_error(writer, 400, "submission contains no jobs")
            return
        submitter = str(payload.get("submitter", DEFAULT_SUBMITTER))
        try:
            weight = float(payload.get("weight", 1.0))
        except (TypeError, ValueError):
            await send_error(writer, 400, "weight must be a number")
            return
        # Admission: count the jobs this submission genuinely adds to
        # the unresolved set (deduped/cached hashes ride along free).
        incoming = len({
            h for h in (j.content_hash() for j in jobs)
            if h not in self.jobs or self.jobs[h].status == "failed"
        })
        verdict, retry_after = self.admission(incoming)
        if verdict == "rejected":
            await send_error(
                writer, 429, "job budget and queue are full",
                headers={"Retry-After": str(retry_after)},
                retry_after=retry_after,
                unresolved=self.unresolved_count(),
                incoming=incoming,
                budget=self.max_in_flight, queue_bound=self.max_queue,
            )
            return
        attached = run_id in self.sweeps if run_id is not None else (
            derive_run_id([j.content_hash() for j in jobs]) in self.sweeps
        )
        sweep = self.submit(jobs, run_id=run_id, resume=resume,
                            submitter=submitter, weight=weight)
        await send_json(writer, 202, {
            "sweep": sweep.sweep_id,
            "total": sweep.ledger.report.total,
            "status": "done" if sweep.finished else "running",
            "attached": attached,
            "admission": verdict,
            "retry_after": retry_after,
        })

    async def _post_drain(self, req: Request,
                          writer: asyncio.StreamWriter) -> None:
        grace: float | None = None
        if req.body:
            try:
                payload = req.json()
            except ProtocolError as exc:
                await send_error(writer, 400, str(exc))
                return
            if isinstance(payload, dict) and "grace" in payload:
                try:
                    grace = float(payload["grace"])
                except (TypeError, ValueError):
                    await send_error(writer, 400,
                                     "grace must be a number")
                    return
        summary = await self.drain(grace)
        await send_json(writer, 200, summary)

    async def _get_health(self, writer: asyncio.StreamWriter) -> None:
        await send_json(writer, 200, self.health())

    def _jobs_from_submission(
        self, payload: dict
    ) -> tuple[list, str | None, bool]:
        """Expand one POST body into jobs (+ run id for resumes).

        Three vocabularies: ``{"jobs": [fingerprint, ...]}`` (what the
        remote client ships), ``{"grid": {...}}`` (the ``run_sweep``
        grid vocabulary, expanded server-side), and
        ``{"resume": "<run-id>"}`` (rebuild the batch from the journal
        — the replication log — of an interrupted run).
        """
        if "resume" in payload:
            run_id = str(payload["resume"])
            if self.journal_dir is None:
                raise ValueError("server runs without a journal; "
                                 "nothing to resume from")
            path = self.journal_dir / f"{run_id}.jsonl"
            loaded = RunJournal(self.journal_dir, run_id, resume=True)
            jobs = loaded.queued_jobs()
            loaded.close()
            if not jobs:
                raise ValueError(f"journal {path} records no jobs")
            return jobs, run_id, True
        if "jobs" in payload:
            fps = payload["jobs"]
            if not isinstance(fps, list):
                raise ValueError('"jobs" must be a list of fingerprints')
            return [job_from_fingerprint(fp) for fp in fps], None, False
        if "grid" in payload:
            return _expand_grid(payload["grid"]), None, False
        raise ValueError('expected "jobs", "grid" or "resume"')

    async def _get_sweep(self, sweep: Sweep,
                         writer: asyncio.StreamWriter) -> None:
        report = sweep.ledger.report
        await send_json(writer, 200, {
            "sweep": sweep.sweep_id,
            "status": "done" if sweep.finished else "running",
            "completed": report.completed,
            "total": report.total,
            "report": report.as_dict(),
        })

    async def _get_events(self, sweep: Sweep,
                          writer: asyncio.StreamWriter) -> None:
        await start_stream(writer)
        for event in list(sweep.events):
            await send_frame(writer, event)
        # An interrupted sweep will never emit again on this server:
        # end after the replay instead of parking the subscriber.
        if not sweep.finished and not sweep.interrupted:
            queue: asyncio.Queue = asyncio.Queue()
            sweep.queues.append(queue)
            try:
                while True:
                    event = await queue.get()
                    if event is None:
                        break
                    await send_frame(writer, event)
            finally:
                if queue in sweep.queues:
                    sweep.queues.remove(queue)

    async def _get_results(self, sweep: Sweep,
                           writer: asyncio.StreamWriter) -> None:
        if not sweep.finished:
            await send_error(writer, 409,
                             f"sweep {sweep.sweep_id} still running")
            return
        encoded: list[dict | None] = []
        for payload in sweep.ledger.results:
            if payload is None:
                encoded.append(None)
                continue
            body, kind = _encode_body(payload)
            encoded.append({"body": body, "body_kind": kind})
        await send_json(writer, 200, {
            "sweep": sweep.sweep_id,
            "report": sweep.ledger.report.as_dict(),
            "results": encoded,
        })


def _expand_grid(grid: object) -> list:
    """Server-side expansion of the ``run_sweep`` grid vocabulary:
    machine profile by name, mixes by name (or thread count),
    schedulers x IQ sizes x mixes via the same
    :func:`~repro.exec.jobs.jobs_for_grid` every local sweep uses."""
    from repro.config import presets
    from repro.workloads.mixes import mixes_for_threads

    if not isinstance(grid, dict):
        raise ValueError("grid must be an object")
    profiles = {
        "paper": presets.paper_machine,
        "small": presets.small_machine,
        "tiny": presets.tiny_machine,
    }
    profile = str(grid.get("profile", "small"))
    if profile not in profiles:
        raise ValueError(f"unknown profile {profile!r}; "
                         f"choices: {', '.join(sorted(profiles))}")
    threads = int(grid.get("threads", 2))
    mixes = list(mixes_for_threads(threads))
    if "mixes" in grid:
        wanted = {str(m) for m in grid["mixes"]}
        by_name = {m.name: m for m in mixes}
        unknown = wanted - set(by_name)
        if unknown:
            raise ValueError(
                f"unknown mixes for threads={threads}: "
                f"{', '.join(sorted(unknown))}"
            )
        mixes = [m for m in mixes if m.name in wanted]
    keyed = jobs_for_grid(
        mixes,
        profiles[profile](),
        tuple(str(s) for s in grid.get("schedulers",
                                       ("traditional", "2op_ooo"))),
        tuple(int(q) for q in grid.get("iq_sizes", (16,))),
        int(grid.get("max_insns", 2000)),
        int(grid.get("seed", 0)),
        with_fairness=bool(grid.get("with_fairness", False)),
    )
    return [job for _, job in keyed]

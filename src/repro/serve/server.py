"""The sweep server: submissions in, sharded jobs out, results shared.

One :class:`SweepServer` owns four pieces of state, all mutated from a
single asyncio event loop (no locks):

* ``sweeps`` — one :class:`Sweep` per submission batch, keyed by the
  content-derived run id (:func:`repro.exec.journal.derive_run_id`).
  Two clients submitting the same grid concurrently get the *same*
  sweep object — the second submission attaches to the in-flight run.
  Each sweep drives its own :class:`~repro.exec.ledger.JobLedger`, so
  cache replay, journalling, retry accounting and progress events work
  exactly as they do for the single-host executor.
* ``jobs`` — the cross-sweep dedup table, keyed by job content hash.
  However many sweeps want a grid point, it executes at most once; each
  waiting (sweep, index) pair is resolved when the result lands.
* ``workers`` — the attached fleet. Placement is delegated to a
  pluggable :class:`~repro.serve.policy.AllocationPolicy` (consistent
  hash ring by default). A worker that disconnects, stops heartbeating
  or blows its job deadline has its in-flight jobs requeued through the
  normal retry budget — worker churn is just another fault.
* shared stores — one :class:`~repro.exec.cache.ResultCache` (the
  schema-v2 checksummed store doubles as the cluster-wide shared
  cache; a re-submitted grid is served from it without touching a
  worker) and one :class:`~repro.exec.journal.RunJournal` per sweep
  (the fsync'd journal doubles as the replication log: a server restart
  followed by re-submission — or ``{"resume": "<run-id>"}`` — replays
  completed grid points with zero re-simulation).

Failure model (see docs/distributed.md): results are **exactly-once**
— attempts are at-least-once (dropped frames, dead workers and
deadlines re-dispatch; duplicate and late result frames for a resolved
hash are discarded), but a job's effect lands once because jobs are
pure functions of their content and the dedup table resolves each hash
a single time per sweep index. Every result frame is checksummed with
the same digest the on-disk cache uses; a corrupt frame is treated as
lost, never believed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic as _monotonic  # repro: noqa[RPR001]

from repro.exec.cache import ResultCache, encode_job_result
from repro.exec.chaos import ChaosConfig
from repro.exec.jobs import JobResult, jobs_for_grid
from repro.exec.journal import RunJournal, derive_run_id
from repro.exec.ledger import ExecProgress, JobLedger
from repro.serve.http import (
    ProtocolError,
    Request,
    read_request,
    send_error,
    send_json,
    start_stream,
)
from repro.serve.policy import AllocationPolicy, WorkerView, make_policy
from repro.serve.protocol import (
    FrameError,
    decode_result_frame,
    job_from_fingerprint,
    read_frame,
    send_frame,
)

#: Default grace (seconds of heartbeat silence) before a worker is
#: declared dead and its in-flight jobs re-shard.
DEFAULT_HEARTBEAT_GRACE = 5.0

#: Period of the deadline/heartbeat sweep task.
_TICK_SECONDS = 0.05


def _encode_body(payload: object) -> tuple[object, str]:
    """(JSON-safe body, kind) for a resolved payload — the same
    discrimination the journal and the wire protocol use."""
    if isinstance(payload, JobResult):
        return encode_job_result(payload), "sim"
    return payload, "raw"


@dataclass(slots=True)
class Sweep:
    """One submission batch and its ledger-driven lifecycle."""

    sweep_id: str
    ledger: JobLedger
    #: Event history (replayed to every ``/events`` subscriber).
    events: list[dict] = field(default_factory=list)
    #: Live subscriber queues; a ``None`` item ends the stream.
    queues: list[asyncio.Queue] = field(default_factory=list)
    finished: bool = False

    def emit(self, event: dict) -> None:
        self.events.append(event)
        for q in self.queues:
            q.put_nowait(event)


@dataclass(slots=True)
class _JobState:
    """Cross-sweep execution state of one content hash."""

    job: object
    cost: float
    #: "queued" | "dispatched" | "done" | "failed"
    status: str = "queued"
    attempt: int = 0
    worker: str | None = None
    deadline: float | None = None
    payload: object | None = None
    error: str | None = None
    #: (sweep, index-in-that-sweep) pairs awaiting this hash.
    waiters: list[tuple[Sweep, int]] = field(default_factory=list)


@dataclass(slots=True)
class _Worker:
    """One attached worker connection."""

    name: str
    slots: int
    pid: int
    writer: asyncio.StreamWriter
    last_beat: float
    in_flight: set[str] = field(default_factory=set)


class SweepServer:
    """Asyncio HTTP/JSON job server for distributed sweeps.

    ``await start()`` binds and returns the port; ``await stop()``
    tears everything down. All handlers run on the caller's loop.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 cache_dir: str | Path | None = None,
                 journal_dir: str | Path | None = None,
                 policy: AllocationPolicy | str = "hash-ring",
                 retries: int = 1,
                 timeout: float | None = None,
                 heartbeat_grace: float = DEFAULT_HEARTBEAT_GRACE,
                 chaos: ChaosConfig | None = None,
                 rotate_bytes: int | None = None) -> None:
        self.host = host
        self.port = port
        self.cache = (ResultCache(cache_dir, chaos=chaos)
                      if cache_dir is not None else None)
        self.journal_dir = (Path(journal_dir)
                            if journal_dir is not None else None)
        self.policy = (make_policy(policy) if isinstance(policy, str)
                       else policy)
        self.retries = retries
        self.timeout = timeout
        self.heartbeat_grace = heartbeat_grace
        self.chaos = chaos
        self.rotate_bytes = rotate_bytes

        self.sweeps: dict[str, Sweep] = {}
        self.jobs: dict[str, _JobState] = {}
        self.workers: dict[str, _Worker] = {}
        self._wake = asyncio.Event()
        self._server: asyncio.Server | None = None
        self._tasks: list[asyncio.Task] = []
        self._worker_seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._tasks = [
            asyncio.ensure_future(self._dispatch_loop()),
            asyncio.ensure_future(self._tick_loop()),
        ]
        return self.port

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        self._tasks = []
        for w in list(self.workers.values()):
            try:
                await send_frame(w.writer, {"type": "shutdown"})
            except (ConnectionError, OSError):  # repro: noqa[RPR007]
                pass  # already gone; nothing to shut down
            w.writer.close()
        self.workers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for sweep in self.sweeps.values():
            if not sweep.finished:
                # In-flight ledger: the fsync'd journal already holds
                # every completed transition; just release the fd.
                sweep.ledger.close()

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------
    def submit(self, jobs: list, run_id: str | None = None,
               resume: bool = False) -> Sweep:
        """Create (or attach to) the sweep executing ``jobs``."""
        hashes = [job.content_hash() for job in jobs]
        sweep_id = run_id or derive_run_id(hashes)
        existing = self.sweeps.get(sweep_id)
        if existing is not None and not existing.finished:
            return existing

        journal = None
        if self.journal_dir is not None:
            path = self.journal_dir / f"{sweep_id}.jsonl"
            journal = RunJournal(
                self.journal_dir, sweep_id,
                # The journal is the replication log: if a prior server
                # (or a single-host run) journalled this grid, resume
                # it instead of rotating its completed work aside.
                resume=resume or path.exists(),
                rotate_bytes=self.rotate_bytes,
            )

        sweep = Sweep(sweep_id=sweep_id, ledger=JobLedger(
            jobs, hashes=hashes, cache=self.cache, journal=journal,
            resume=journal is not None, retries=self.retries,
            progress=None,
        ))
        # Bind the progress stream after construction so the callback
        # can close over the sweep object itself.
        sweep.ledger.progress = lambda ev: self._emit_progress(sweep, ev)
        self.sweeps[sweep_id] = sweep
        sweep.emit({"event": "sweep-start", "sweep": sweep_id,
                    "total": len(jobs)})

        pending = sweep.ledger.open()
        for idx in pending:
            self._enqueue(sweep, idx)
        self._check_sweep(sweep)
        self._wake.set()
        return sweep

    def _enqueue(self, sweep: Sweep, idx: int) -> None:
        job_hash = sweep.ledger.hashes[idx]
        job = sweep.ledger.jobs[idx]
        st = self.jobs.get(job_hash)
        if st is None or st.status == "failed":
            # Fresh hash — or a hash that failed terminally for an
            # earlier sweep: a new submission buys a fresh budget.
            st = _JobState(job=job, cost=float(job.cost_estimate()))
            self.jobs[job_hash] = st
        if st.status == "done":
            # Dedup hit against a batch resolved earlier this session
            # (covers WorkJobs and cache-less servers; disk-cache hits
            # were already taken in ledger.open()).
            sweep.ledger.complete(idx, st.payload)
            return
        st.waiters.append((sweep, idx))

    def _emit_progress(self, sweep: Sweep, ev: ExecProgress) -> None:
        event: dict[str, object] = {
            "event": ev.outcome,
            "job": ev.job.content_hash(),
            "completed": ev.report.completed,
            "total": ev.report.total,
        }
        if ev.payload is not None:
            body, kind = _encode_body(ev.payload)
            event["body"] = body
            event["body_kind"] = kind
        sweep.emit(event)

    def _check_sweep(self, sweep: Sweep) -> None:
        if sweep.finished or not sweep.ledger.done:
            return
        sweep.ledger.summarize()
        sweep.ledger.close()
        sweep.finished = True
        sweep.emit({"event": "sweep-end", "sweep": sweep.sweep_id,
                    "report": sweep.ledger.report.as_dict()})
        for q in sweep.queues:
            q.put_nowait(None)
        sweep.queues.clear()

    # ------------------------------------------------------------------
    # job resolution
    # ------------------------------------------------------------------
    def _resolve(self, st: _JobState, job_hash: str,
                 payload: object) -> None:
        """A valid result landed for ``job_hash``: fan out to waiters."""
        if st.worker is not None:
            w = self.workers.get(st.worker)
            if w is not None:
                w.in_flight.discard(job_hash)
        st.status = "done"
        st.payload = payload
        st.worker = None
        st.deadline = None
        waiters, st.waiters = st.waiters, []
        for sweep, idx in waiters:
            sweep.ledger.complete(idx, payload)
        for sweep, _ in waiters:
            self._check_sweep(sweep)
        self._wake.set()

    def _attempt_failed(self, st: _JobState, job_hash: str,
                        error: str) -> None:
        """One attempt died (crash, deadline, lost frame): retry or
        fail through every waiting ledger's budget."""
        if st.worker is not None:
            w = self.workers.get(st.worker)
            if w is not None:
                w.in_flight.discard(job_hash)
        st.worker = None
        st.deadline = None
        retryable = st.attempt < self.retries
        for sweep, idx in st.waiters:
            if retryable:
                sweep.ledger.retry(idx, st.attempt, error)
            else:
                sweep.ledger.fail(idx, error)
        if retryable:
            st.attempt += 1
            st.status = "queued"
            self._wake.set()
            return
        st.status = "failed"
        st.error = error
        waiters, st.waiters = st.waiters, []
        for sweep, _ in waiters:
            self._check_sweep(sweep)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            await self._dispatch_once()

    async def _dispatch_once(self) -> None:
        queued = [(h, self.jobs[h].cost) for h in self.jobs
                  if self.jobs[h].status == "queued"]
        if not queued or not self.workers:
            return
        for job_hash in self.policy.queue_order(queued):
            st = self.jobs[job_hash]
            if st.status != "queued":
                continue
            views = [WorkerView(w.name, w.slots, len(w.in_flight))
                     for w in self.workers.values()]
            target = self.policy.pick_worker(job_hash, st.cost, views)
            if target is None:
                continue
            await self._dispatch_to(self.workers[target], st, job_hash)

    async def _dispatch_to(self, w: _Worker, st: _JobState,
                           job_hash: str) -> None:
        st.status = "dispatched"
        st.worker = w.name
        if self.timeout is not None:
            st.deadline = _monotonic() + self.timeout
        w.in_flight.add(job_hash)
        for sweep, idx in st.waiters:
            sweep.ledger.start(idx, st.attempt)
        frame = {
            "type": "job",
            "hash": job_hash,
            "attempt": st.attempt,
            "fingerprint": st.job.fingerprint_payload(),
            "timeout": self.timeout,
        }
        try:
            # A chaos "drop" here means the worker never hears about
            # the job — the deadline sweep re-dispatches the attempt,
            # exactly like a lost packet would play out.
            await send_frame(w.writer, frame, chaos=self.chaos,
                             site="serve-dispatch", key=job_hash,
                             attempt=st.attempt)
        except (ConnectionError, OSError):
            await self._drop_worker(w, "connection lost")

    # ------------------------------------------------------------------
    # worker fleet
    # ------------------------------------------------------------------
    async def _serve_worker(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            hello = await read_frame(reader)
        except FrameError:
            writer.close()
            return
        if hello is None or hello.get("type") != "hello":
            writer.close()
            return
        self._worker_seq += 1
        name = str(hello.get("name") or f"worker-{self._worker_seq}")
        old = self.workers.get(name)
        if old is not None:
            # A reconnect under the same name supersedes the old link.
            await self._drop_worker(old, "superseded")
        w = _Worker(
            name=name, slots=max(1, int(hello.get("slots", 1))),
            pid=int(hello.get("pid", 0)), writer=writer,
            last_beat=_monotonic(),
        )
        self.workers[name] = w
        self._wake.set()
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "heartbeat":
                    w.last_beat = _monotonic()
                elif kind == "result":
                    self._on_result(frame)
                elif kind == "job-error":
                    self._on_job_error(frame)
        except (FrameError, ConnectionError, OSError):  # repro: noqa[RPR007]
            pass  # treated identically to a clean disconnect below
        finally:
            await self._drop_worker(w, "disconnected")

    async def _drop_worker(self, w: _Worker, reason: str) -> None:
        if self.workers.get(w.name) is w:
            del self.workers[w.name]
        w.writer.close()
        for job_hash in list(w.in_flight):
            st = self.jobs.get(job_hash)
            if (st is not None and st.status == "dispatched"
                    and st.worker == w.name):
                self._attempt_failed(
                    st, job_hash, f"worker {w.name} {reason}"
                )
        w.in_flight.clear()
        self._wake.set()

    def _on_result(self, frame: dict) -> None:
        job_hash = str(frame.get("hash", ""))
        st = self.jobs.get(job_hash)
        if st is None or st.status in ("done", "failed"):
            return  # duplicate or late delivery: already resolved
        payload = decode_result_frame(frame)
        if payload is None:
            # Checksum mismatch: the frame is corrupt and therefore
            # *lost*, never believed. Re-dispatch the current attempt
            # if this was it; stale corrupt frames are just ignored.
            if (st.status == "dispatched"
                    and frame.get("attempt") == st.attempt):
                self._attempt_failed(st, job_hash,
                                     "corrupt result frame")
            return
        # A late result from a superseded attempt is still a valid
        # result — jobs are pure functions of their content.
        self._resolve(st, job_hash, payload)

    def _on_job_error(self, frame: dict) -> None:
        job_hash = str(frame.get("hash", ""))
        st = self.jobs.get(job_hash)
        if (st is None or st.status != "dispatched"
                or frame.get("attempt") != st.attempt):
            return  # stale error for an attempt we already gave up on
        self._attempt_failed(
            st, job_hash, str(frame.get("error") or "job failed")
        )

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(_TICK_SECONDS)
            now = _monotonic()
            for w in list(self.workers.values()):
                if now - w.last_beat > self.heartbeat_grace:
                    await self._drop_worker(w, "stopped heartbeating")
            for job_hash, st in list(self.jobs.items()):
                if (st.status == "dispatched" and st.deadline is not None
                        and now > st.deadline):
                    self._attempt_failed(
                        st, job_hash,
                        f"timed out after {self.timeout:g}s",
                    )
            self._wake.set()

    # ------------------------------------------------------------------
    # HTTP surface
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                req = await read_request(reader)
            except ProtocolError as exc:
                await send_error(writer, 400, str(exc))
                return
            if req is None:
                return
            if req.method == "POST" and req.path == "/v1/workers/attach":
                # Upgrade: this connection becomes the worker link and
                # outlives the handler's request/response framing.
                await start_stream(writer)
                await self._serve_worker(reader, writer)
                return
            await self._route(req, reader, writer)
        except (ConnectionError, OSError):  # repro: noqa[RPR007]
            pass  # peer vanished mid-response; nothing to salvage
        finally:
            writer.close()

    async def _route(self, req: Request, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        if req.method == "POST" and req.path == "/v1/sweeps":
            await self._post_sweeps(req, writer)
            return
        if req.method == "GET":
            if req.path == "/v1/healthz":
                await send_json(writer, 200, {
                    "ok": True,
                    "workers": len(self.workers),
                    "sweeps": len(self.sweeps),
                })
                return
            if req.path == "/v1/workers":
                await send_json(writer, 200, {"workers": [
                    {"name": w.name, "slots": w.slots, "pid": w.pid,
                     "in_flight": len(w.in_flight)}
                    for w in self.workers.values()
                ]})
                return
            if req.path == "/v1/cache":
                if self.cache is None:
                    await send_error(writer, 404,
                                     "server runs without a cache")
                    return
                await send_json(writer, 200,
                                self.cache.stats().as_dict())
                return
            parts = req.path.strip("/").split("/")
            if len(parts) >= 3 and parts[:2] == ["v1", "sweeps"]:
                sweep = self.sweeps.get(parts[2])
                if sweep is None:
                    await send_error(writer, 404,
                                     f"no sweep {parts[2]}")
                    return
                if len(parts) == 3:
                    await self._get_sweep(sweep, writer)
                    return
                if len(parts) == 4 and parts[3] == "events":
                    await self._get_events(sweep, writer)
                    return
                if len(parts) == 4 and parts[3] == "results":
                    await self._get_results(sweep, writer)
                    return
        await send_error(writer, 404, f"no route {req.method} {req.path}")

    async def _post_sweeps(self, req: Request,
                           writer: asyncio.StreamWriter) -> None:
        try:
            payload = req.json()
        except ProtocolError as exc:
            await send_error(writer, 400, str(exc))
            return
        if not isinstance(payload, dict):
            await send_error(writer, 400, "submission must be an object")
            return
        try:
            jobs, run_id, resume = self._jobs_from_submission(payload)
        except (KeyError, TypeError, ValueError) as exc:
            await send_error(writer, 400, f"bad submission: {exc}")
            return
        if not jobs:
            await send_error(writer, 400, "submission contains no jobs")
            return
        attached = run_id in self.sweeps if run_id is not None else (
            derive_run_id([j.content_hash() for j in jobs]) in self.sweeps
        )
        sweep = self.submit(jobs, run_id=run_id, resume=resume)
        await send_json(writer, 202, {
            "sweep": sweep.sweep_id,
            "total": sweep.ledger.report.total,
            "status": "done" if sweep.finished else "running",
            "attached": attached,
        })

    def _jobs_from_submission(
        self, payload: dict
    ) -> tuple[list, str | None, bool]:
        """Expand one POST body into jobs (+ run id for resumes).

        Three vocabularies: ``{"jobs": [fingerprint, ...]}`` (what the
        remote client ships), ``{"grid": {...}}`` (the ``run_sweep``
        grid vocabulary, expanded server-side), and
        ``{"resume": "<run-id>"}`` (rebuild the batch from the journal
        — the replication log — of an interrupted run).
        """
        if "resume" in payload:
            run_id = str(payload["resume"])
            if self.journal_dir is None:
                raise ValueError("server runs without a journal; "
                                 "nothing to resume from")
            path = self.journal_dir / f"{run_id}.jsonl"
            loaded = RunJournal(self.journal_dir, run_id, resume=True)
            jobs = loaded.queued_jobs()
            loaded.close()
            if not jobs:
                raise ValueError(f"journal {path} records no jobs")
            return jobs, run_id, True
        if "jobs" in payload:
            fps = payload["jobs"]
            if not isinstance(fps, list):
                raise ValueError('"jobs" must be a list of fingerprints')
            return [job_from_fingerprint(fp) for fp in fps], None, False
        if "grid" in payload:
            return _expand_grid(payload["grid"]), None, False
        raise ValueError('expected "jobs", "grid" or "resume"')

    async def _get_sweep(self, sweep: Sweep,
                         writer: asyncio.StreamWriter) -> None:
        report = sweep.ledger.report
        await send_json(writer, 200, {
            "sweep": sweep.sweep_id,
            "status": "done" if sweep.finished else "running",
            "completed": report.completed,
            "total": report.total,
            "report": report.as_dict(),
        })

    async def _get_events(self, sweep: Sweep,
                          writer: asyncio.StreamWriter) -> None:
        await start_stream(writer)
        for event in list(sweep.events):
            await send_frame(writer, event)
        if not sweep.finished:
            queue: asyncio.Queue = asyncio.Queue()
            sweep.queues.append(queue)
            try:
                while True:
                    event = await queue.get()
                    if event is None:
                        break
                    await send_frame(writer, event)
            finally:
                if queue in sweep.queues:
                    sweep.queues.remove(queue)

    async def _get_results(self, sweep: Sweep,
                           writer: asyncio.StreamWriter) -> None:
        if not sweep.finished:
            await send_error(writer, 409,
                             f"sweep {sweep.sweep_id} still running")
            return
        encoded: list[dict | None] = []
        for payload in sweep.ledger.results:
            if payload is None:
                encoded.append(None)
                continue
            body, kind = _encode_body(payload)
            encoded.append({"body": body, "body_kind": kind})
        await send_json(writer, 200, {
            "sweep": sweep.sweep_id,
            "report": sweep.ledger.report.as_dict(),
            "results": encoded,
        })


def _expand_grid(grid: object) -> list:
    """Server-side expansion of the ``run_sweep`` grid vocabulary:
    machine profile by name, mixes by name (or thread count),
    schedulers x IQ sizes x mixes via the same
    :func:`~repro.exec.jobs.jobs_for_grid` every local sweep uses."""
    from repro.config import presets
    from repro.workloads.mixes import mixes_for_threads

    if not isinstance(grid, dict):
        raise ValueError("grid must be an object")
    profiles = {
        "paper": presets.paper_machine,
        "small": presets.small_machine,
        "tiny": presets.tiny_machine,
    }
    profile = str(grid.get("profile", "small"))
    if profile not in profiles:
        raise ValueError(f"unknown profile {profile!r}; "
                         f"choices: {', '.join(sorted(profiles))}")
    threads = int(grid.get("threads", 2))
    mixes = list(mixes_for_threads(threads))
    if "mixes" in grid:
        wanted = {str(m) for m in grid["mixes"]}
        by_name = {m.name: m for m in mixes}
        unknown = wanted - set(by_name)
        if unknown:
            raise ValueError(
                f"unknown mixes for threads={threads}: "
                f"{', '.join(sorted(unknown))}"
            )
        mixes = [m for m in mixes if m.name in wanted]
    keyed = jobs_for_grid(
        mixes,
        profiles[profile](),
        tuple(str(s) for s in grid.get("schedulers",
                                       ("traditional", "2op_ooo"))),
        tuple(int(q) for q in grid.get("iq_sizes", (16,))),
        int(grid.get("max_insns", 2000)),
        int(grid.get("seed", 0)),
        with_fairness=bool(grid.get("with_fairness", False)),
    )
    return [job for _, job in keyed]

"""In-process cluster harness: one server, N forked loopback workers.

The smoke command, CI and the test suite all need a real distributed
topology — separate worker *processes* talking to a real socket server
— without any deployment machinery. :class:`LocalCluster` provides it
as a context manager::

    with LocalCluster(workers=2, cache_dir=..., journal_dir=...) as c:
        results, report = execute_remote(jobs, c.url)

The server runs its own asyncio loop on a daemon thread; workers are
forked processes (like the local farm's) each running a
:class:`~repro.serve.worker.WorkerAgent` against the loopback address.
With ``respawn=True`` a supervisor thread restarts any worker that
dies — which is exactly what chaos worker-kills need: the replacement
attaches under a fresh name, the hash ring re-shards, and the sweep
still completes byte-identically. A worker that keeps dying (e.g. the
server is draining and waves every attach off) is respawned with
capped exponential backoff rather than in a tight flap loop; a worker
that stays up resets the backoff.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
from pathlib import Path
from time import monotonic as _monotonic, sleep as _sleep  # repro: noqa[RPR001]

from repro.exec.chaos import ChaosConfig
from repro.serve.server import SweepServer
from repro.serve.worker import run_worker

#: Default for ``attach_timeout``: how long __enter__ waits for the
#: fleet to attach before failing.
_ATTACH_TIMEOUT = 30.0

#: Supervisor poll period for dead workers; also the base of the
#: respawn backoff.
_RESPAWN_POLL = 0.1

#: Ceiling on the per-worker respawn backoff.
_RESPAWN_BACKOFF_CAP = 2.0

#: A worker that survives this long is considered healthy: the next
#: respawn starts from the base backoff again.
_RESPAWN_HEALTHY_AFTER = 1.0


def _worker_process(url: str, slots: int, name: str,
                    chaos: ChaosConfig | None) -> None:
    run_worker(url, slots=slots, name=name, chaos=chaos)


class LocalCluster:
    """Context manager owning a sweep server plus loopback workers."""

    def __init__(self, workers: int = 2, *,
                 slots: int = 1,
                 cache_dir: str | Path | None = None,
                 journal_dir: str | Path | None = None,
                 policy: str = "hash-ring",
                 retries: int = 8,
                 timeout: float | None = 60.0,
                 heartbeat_grace: float = 5.0,
                 chaos: ChaosConfig | None = None,
                 rotate_bytes: int | None = None,
                 respawn: bool = False,
                 attach_timeout: float = _ATTACH_TIMEOUT,
                 max_in_flight: int | None = None,
                 max_queue: int | None = None,
                 drain_grace: float | None = None) -> None:
        self.num_workers = workers
        self.slots = slots
        self.chaos = chaos
        self.respawn = respawn
        self.attach_timeout = attach_timeout
        server_kwargs: dict = {}
        if drain_grace is not None:
            server_kwargs["drain_grace"] = drain_grace
        self.server = SweepServer(
            cache_dir=cache_dir, journal_dir=journal_dir, policy=policy,
            retries=retries, timeout=timeout,
            heartbeat_grace=heartbeat_grace, chaos=chaos,
            rotate_bytes=rotate_bytes,
            max_in_flight=max_in_flight, max_queue=max_queue,
            **server_kwargs,
        )
        self.url: str = ""
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._procs: list = []
        #: proc -> (spawn time, backoff to apply if it dies quickly).
        self._spawn_info: dict = {}
        self._spawned = 0
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        #: Guards _procs/_spawn_info/_spawned: the respawn supervisor
        #: thread and the harness thread (__enter__/_teardown) both
        #: mutate them.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _spawn_worker(self, backoff: float = _RESPAWN_POLL) -> None:
        ctx = multiprocessing.get_context("fork")
        with self._lock:
            self._spawned += 1
            name = f"w{self._spawned}"
        # Forked outside the lock: the child must never inherit it in
        # the locked state (RPR016).
        proc = ctx.Process(
            target=_worker_process,
            args=(self.url, self.slots, name, self.chaos),
            daemon=True,
        )
        proc.start()
        with self._lock:
            self._procs.append(proc)
            self._spawn_info[proc] = (_monotonic(), backoff)

    def _supervise(self) -> None:
        """Respawn dead workers so chaos kills cause churn, not
        starvation — with capped exponential backoff per flapping
        worker so a refusing/draining server is probed gently, not
        hammered."""
        pending: list[tuple[float, float]] = []  # (due time, backoff)
        while not self._stop.wait(_RESPAWN_POLL):
            now = _monotonic()
            with self._lock:
                procs = list(self._procs)
            for proc in procs:
                if proc.is_alive():
                    continue
                proc.join()
                with self._lock:
                    self._procs.remove(proc)
                    born, backoff = self._spawn_info.pop(
                        proc, (now, _RESPAWN_POLL))
                if now - born >= _RESPAWN_HEALTHY_AFTER:
                    # Lived long enough to count as healthy: the
                    # replacement starts from the base backoff.
                    pending.append((now, _RESPAWN_POLL))
                else:
                    pending.append((
                        now + backoff,
                        min(backoff * 2.0, _RESPAWN_BACKOFF_CAP),
                    ))
            due = [p for p in pending if p[0] <= now]
            pending = [p for p in pending if p[0] > now]
            for _, next_backoff in due:
                self._spawn_worker(next_backoff)

    def _attached_workers(self) -> int:
        assert self._loop is not None
        fut = asyncio.run_coroutine_threadsafe(
            _count_workers(self.server), self._loop
        )
        return fut.result(timeout=5.0)

    # ------------------------------------------------------------------
    def __enter__(self) -> "LocalCluster":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True,
            name="sweep-server",
        )
        self._thread.start()
        port = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(timeout=10.0)
        self.url = f"http://127.0.0.1:{port}"
        for _ in range(self.num_workers):
            self._spawn_worker()
        deadline = _monotonic() + self.attach_timeout
        while self._attached_workers() < self.num_workers:
            if _monotonic() > deadline:
                self._teardown()
                raise TimeoutError(
                    f"only {self._attached_workers()} of "
                    f"{self.num_workers} workers attached within "
                    f"{self.attach_timeout:g}s"
                )
            _sleep(0.02)
        if self.respawn:
            self._supervisor = threading.Thread(
                target=self._supervise, daemon=True,
                name="worker-supervisor",
            )
            self._supervisor.start()
        return self

    def drain(self, grace: float | None = None) -> dict:
        """Drain the server from the harness thread (see
        :meth:`SweepServer.drain`); workers exit on the shutdown frame
        and, with ``respawn=True``, their replacements are waved off
        by the draining server and backed off by the supervisor."""
        assert self._loop is not None
        fut = asyncio.run_coroutine_threadsafe(
            self.server.drain(grace), self._loop
        )
        return fut.result(timeout=(grace or self.server.drain_grace) + 30.0)

    def _teardown(self) -> None:
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        with self._lock:
            procs = list(self._procs)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join()
            else:
                proc.join()
        with self._lock:
            self._procs.clear()
            self._spawn_info.clear()
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=10.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
            self._loop.close()
            self._loop = None

    def __exit__(self, *exc_info: object) -> None:
        self._teardown()


async def _count_workers(server: SweepServer) -> int:
    # Runs on the server's loop, so reading its state is race-free.
    return len(server.workers)

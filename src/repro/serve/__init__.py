"""Distributed sweep service: job server, sharded workers, shared cache.

The grid executor (:mod:`repro.exec`) made sweeps parallel on one
host; this subsystem makes them parallel across *hosts* while keeping
every guarantee the single-host path earned — content-addressed dedup,
byte-identical results, crash-safe journalling, chaos-survivable
execution:

* :mod:`repro.serve.server`   — :class:`SweepServer`, the asyncio
  HTTP/JSON job server: accepts grid submissions, dedups jobs across
  concurrent sweeps by content hash, shards them over attached
  workers, streams per-sweep NDJSON progress;
* :mod:`repro.serve.worker`   — :class:`WorkerAgent`, the remote
  worker: rebuilds jobs from fingerprints, executes, ships
  checksummed results;
* :mod:`repro.serve.policy`   — pluggable :class:`AllocationPolicy`
  (consistent hash ring by default; least-loaded, LJF and weighted
  fair-share variants) — all placement/ordering-only, never
  result-affecting;
* :mod:`repro.serve.protocol` / :mod:`repro.serve.http` — the NDJSON
  frame protocol (with deterministic network-fault injection) and the
  minimal stdlib HTTP layer;
* :mod:`repro.serve.client`   — the synchronous client;
  ``ExecutorConfig(server=...)`` (or ``REPRO_SERVER``) routes any
  existing sweep through it unchanged. :class:`SweepClient` adds
  seeded-backoff retries, a per-server :class:`CircuitBreaker` and
  drop-surviving event streams on top of the one-shot calls;
* :mod:`repro.serve.cluster`  — :class:`LocalCluster`, the loopback
  server+workers harness used by tests, CI and ``make serve-smoke``.

The server is overload-safe: an in-flight budget admits or queues
submissions (429 + ``Retry-After`` beyond the bounded backlog), the
``fair-share`` policy shares worker slots across submitters by
weighted deficit round-robin, ``POST /v1/admin/drain`` (or SIGTERM
under ``python -m repro.serve server``) winds the server down with the
journal as the replication log, and ``GET /v1/health`` reports queue
depth, per-submitter shares, worker liveness and drain state.

The test-enforced headline invariant: a sweep executed by this service
— with worker churn, dropped/duplicated/delayed messages, connection
refusals and worker kills injected, even across a drain + restart —
completes with results byte-identical to a fault-free single-host
:func:`repro.exec.execute_jobs` run, and a repeat submission simulates
nothing. See docs/distributed.md.
"""

from repro.serve.client import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    ServerError,
    SweepClient,
    SweepInterrupted,
    cache_stats,
    execute_remote,
    fetch_results,
    resume_remote,
    stream_events,
    submit,
)
from repro.serve.cluster import LocalCluster
from repro.serve.policy import (
    POLICIES,
    AllocationPolicy,
    FairSharePolicy,
    HashRingPolicy,
    LeastLoadedPolicy,
    LJFPolicy,
    QueueEntry,
    WorkerView,
    make_policy,
    ring_assign,
)
from repro.serve.server import Sweep, SweepServer
from repro.serve.worker import WorkerAgent, run_worker

__all__ = [
    "POLICIES",
    "AllocationPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "FairSharePolicy",
    "HashRingPolicy",
    "LJFPolicy",
    "LeastLoadedPolicy",
    "LocalCluster",
    "QueueEntry",
    "RetryPolicy",
    "ServerError",
    "Sweep",
    "SweepClient",
    "SweepInterrupted",
    "SweepServer",
    "WorkerAgent",
    "WorkerView",
    "cache_stats",
    "execute_remote",
    "fetch_results",
    "make_policy",
    "resume_remote",
    "ring_assign",
    "run_worker",
    "stream_events",
    "submit",
]

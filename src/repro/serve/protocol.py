"""Worker-link wire protocol: checksummed NDJSON frames.

The server and its workers exchange newline-delimited JSON *frames*
over one long-lived duplex stream (opened by ``POST /v1/workers/attach``
and upgraded away from HTTP). Frame types:

server -> worker
    ``{"type": "job", "hash": h, "attempt": n, "fingerprint": {...},
    "timeout": t | null}``
        Execute one job. ``fingerprint`` is the job's own
        reconstruction payload (see ``SimJob.fingerprint_payload``), so
        the worker needs no shared filesystem.
    ``{"type": "shutdown"}``
        Detach and exit. Sent when the server stops, at the end of a
        graceful drain (after the grace window and the ``interrupted``
        journal records), and — immediately after upgrade — to any
        worker that attaches while the server is draining or drained,
        so supervisors back their respawns off instead of flapping.

worker -> server
    ``{"type": "hello", "name": ..., "slots": n, "pid": ...}``
        First frame after attach.
    ``{"type": "result", "hash": h, "attempt": n, "body": {...},
    "checksum": ...}``
        A completed job. ``body`` is the byte-stable encoded result
        (the cache codec), ``checksum`` is ``hash_payload(body)`` —
        the same schema-v2 integrity check the on-disk cache applies,
        extended over the wire. A frame whose checksum does not match
        is treated as lost: the server re-dispatches the attempt.
    ``{"type": "job-error", "hash": h, "attempt": n, "error": ...}``
        The job raised; the server decides retry-vs-fail.
    ``{"type": "heartbeat", "t": monotonic}``
        Liveness, sent every :data:`HEARTBEAT_PERIOD` seconds. Silence
        past the server's grace window marks the worker dead and
        re-shards its in-flight jobs.

Every frame is one ``json.dumps(sort_keys=True)`` line — human-greppable
and byte-stable. :func:`send_frame` is the single chaos injection point
for *network* faults: with a :class:`~repro.exec.chaos.ChaosConfig`
carrying ``net_drop``/``net_dup``/``net_delay`` it can drop, duplicate
or delay any frame, keyed deterministically by (site, job hash,
attempt) exactly like the executor's delivery faults — so a chaotic
cluster run is reproducible from the seed alone.
"""

from __future__ import annotations

import asyncio
import json

from repro.exec.chaos import ChaosConfig
from repro.exec.jobs import JobResult, SimJob, WorkJob, hash_payload

#: Seconds between worker heartbeat frames.
HEARTBEAT_PERIOD = 0.5

#: Longest single NDJSON frame we will buffer (an encoded SimJob result
#: is a few KB; this leaves three orders of magnitude of headroom).
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameError(ValueError):
    """A peer sent bytes that are not a well-formed frame."""


def job_from_fingerprint(fp: dict):
    """Rebuild a job from its fingerprint payload, dispatching on the
    ``kind`` discriminator (absent = historical SimJob)."""
    if fp.get("kind") == "work":
        return WorkJob.from_fingerprint(fp)
    return SimJob.from_fingerprint(fp)


def encode_result_frame(job_hash: str, attempt: int,
                        payload: object) -> dict:
    """Frame a completed job's payload for transport.

    :class:`JobResult` payloads use the cache codec (float-normalised,
    byte-stable — what makes a remote result indistinguishable from a
    local one); raw (WorkJob) payloads embed verbatim, discriminated by
    ``body_kind`` like the journal does.
    """
    from repro.exec.cache import encode_job_result

    if isinstance(payload, JobResult):
        body: object = encode_job_result(payload)
        kind = "sim"
    else:
        body = payload
        kind = "raw"
    return {
        "type": "result",
        "hash": job_hash,
        "attempt": attempt,
        "body": body,
        "body_kind": kind,
        "checksum": hash_payload({"body": body}),
    }


def decode_result_frame(frame: dict) -> object | None:
    """Verify and decode a ``result`` frame's payload.

    Returns the decoded payload, or **None when the checksum does not
    match** — the caller must treat that frame as never delivered (the
    attempt is re-dispatched), mirroring how the cache quarantines a
    corrupt entry rather than serving it.
    """
    from repro.exec.cache import decode_job_result

    body = frame.get("body")
    if frame.get("checksum") != hash_payload({"body": body}):
        return None
    if frame.get("body_kind", "sim") == "sim":
        return decode_job_result(body)
    return body


def frame_bytes(frame: dict) -> bytes:
    """One frame as its canonical NDJSON line."""
    return (json.dumps(frame, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


async def send_frame(writer: asyncio.StreamWriter, frame: dict, *,
                     chaos: ChaosConfig | None = None,
                     site: str = "", key: str = "",
                     attempt: int = 0) -> None:
    """Write one frame, applying deterministic network chaos.

    Faults are keyed by (site, key, attempt): a dropped dispatch is
    dropped again on replay of the same attempt, but the *next* attempt
    goes through — the same convergence contract as the executor's
    delivery faults, so chaotic runs terminate.
    """
    if chaos is not None and chaos.net_enabled:
        delay = chaos.net_delay(site, key, attempt)
        if delay > 0.0:
            await asyncio.sleep(delay)
        fault = chaos.net_fault(site, key, attempt)
        if fault == "drop":
            return
        if fault == "dup":
            writer.write(frame_bytes(frame))
    writer.write(frame_bytes(frame))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; None on EOF at a frame boundary."""
    buf = b""
    while True:
        try:
            buf = await reader.readuntil(b"\n")
            break
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise FrameError("stream closed mid-frame") from exc
        except asyncio.LimitOverrunError as exc:
            # Frame longer than the StreamReader buffer: drain in
            # chunks up to our own (much larger) cap.
            chunk = await reader.read(exc.consumed)
            buf += chunk
            if len(buf) > MAX_FRAME_BYTES:
                raise FrameError("frame too large") from exc
            rest = await _read_line_chunked(reader, buf)
            if rest is None:
                raise FrameError("stream closed mid-frame") from exc
            buf = rest
            break
    try:
        frame = json.loads(buf.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"malformed frame: {buf[:120]!r}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise FrameError(f"frame without a type: {buf[:120]!r}")
    return frame


async def _read_line_chunked(reader: asyncio.StreamReader,
                             prefix: bytes) -> bytes | None:
    buf = prefix
    while b"\n" not in buf:
        chunk = await reader.read(64 * 1024)
        if not chunk:
            return None
        buf += chunk
        if len(buf) > MAX_FRAME_BYTES:
            raise FrameError("frame too large")
    line, _, _rest = buf.partition(b"\n")
    return line + b"\n"

"""repro — reproduction of Sharkey & Ponomarev, *Balancing ILP and TLP in SMT
Architectures through Out-of-Order Instruction Dispatch* (ICPP 2006).

The package implements, from scratch:

* a cycle-level trace-driven SMT pipeline simulator in the style of M-Sim
  (:mod:`repro.pipeline`), including an I-Count front end
  (:mod:`repro.frontend`), register renaming (:mod:`repro.rename`),
  a gshare/BTB branch predictor (:mod:`repro.branch`) and a full cache
  hierarchy (:mod:`repro.memory`);
* the paper's three instruction schedulers — the traditional 2-comparator
  issue queue, the 2OP_BLOCK reduced-comparator scheduler, and 2OP_BLOCK
  augmented with out-of-order dispatch (:mod:`repro.core`);
* synthetic SPEC CPU2000 workload models (:mod:`repro.trace`,
  :mod:`repro.workloads`) standing in for the Alpha binaries the paper
  simulates (see DESIGN.md for the substitution argument);
* experiment drivers that regenerate every figure and in-text statistic of
  the paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import simulate_mix, paper_machine

    cfg = paper_machine(iq_size=64, scheduler="2op_ooo")
    result = simulate_mix(["parser", "vortex"], cfg, max_insns=20_000)
    print(result.throughput_ipc)
"""

from repro.config.machine import MachineConfig
from repro.config.presets import paper_machine, small_machine
from repro.experiments.runner import simulate_benchmark, simulate_mix
from repro.metrics.ipc import SimResult

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "paper_machine",
    "small_machine",
    "simulate_mix",
    "simulate_benchmark",
    "SimResult",
    "__version__",
]

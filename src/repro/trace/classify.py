"""Single-thread ILP classification (paper §2).

The paper classifies each SPEC benchmark as low / medium / high ILP by
simulating it alone in the superscalar configuration; low-ILP programs
are memory bound and high-ILP programs execution bound. This module
reruns that methodology on the synthetic profiles so the classes used by
the workload mixes (Tables 2–4) are *measured*, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.profiles import ALL_BENCHMARKS, get_profile

#: Throughput-IPC thresholds separating the classes on the Table 1
#: machine (64-entry IQ, traditional scheduler, one thread). Calibrated
#: once against the profile targets; tests assert agreement.
DEFAULT_LOW_THRESHOLD = 0.80
DEFAULT_HIGH_THRESHOLD = 2.30


@dataclass(frozen=True, slots=True)
class Classification:
    """Measured classification of one benchmark."""

    name: str
    ipc: float
    ilp_class: str
    target_class: str

    @property
    def matches_target(self) -> bool:
        """True when the measured class equals the profile's target."""
        return self.ilp_class == self.target_class


def classify_ipc(ipc: float,
                 low_threshold: float = DEFAULT_LOW_THRESHOLD,
                 high_threshold: float = DEFAULT_HIGH_THRESHOLD) -> str:
    """Map a single-thread IPC to an ILP class label."""
    if low_threshold >= high_threshold:
        raise ValueError("low_threshold must be below high_threshold")
    if ipc < low_threshold:
        return "low"
    if ipc >= high_threshold:
        return "high"
    return "med"


def classify_benchmark(name: str, max_insns: int = 20_000, seed: int = 0,
                       config=None,
                       low_threshold: float = DEFAULT_LOW_THRESHOLD,
                       high_threshold: float = DEFAULT_HIGH_THRESHOLD,
                       ) -> Classification:
    """Simulate ``name`` alone and classify it by throughput IPC."""
    from repro.config.presets import paper_machine
    from repro.experiments.runner import simulate_benchmark

    cfg = config if config is not None else paper_machine()
    result = simulate_benchmark(name, cfg, max_insns=max_insns, seed=seed)
    profile = get_profile(name)
    return Classification(
        name=name,
        ipc=result.throughput_ipc,
        ilp_class=classify_ipc(
            result.throughput_ipc, low_threshold, high_threshold
        ),
        target_class=profile.ilp_class,
    )


def classify_all(max_insns: int = 20_000, seed: int = 0, config=None,
                 benchmarks: tuple[str, ...] | None = None,
                 ) -> list[Classification]:
    """Classify every benchmark (or the given subset)."""
    names = benchmarks if benchmarks is not None else ALL_BENCHMARKS
    return [
        classify_benchmark(name, max_insns=max_insns, seed=seed, config=config)
        for name in names
    ]

"""Deterministic synthetic trace generation.

A trace is produced from a :class:`~repro.trace.profiles.BenchmarkProfile`
plus a seed. The generator models a synthetic *static program*:

* a code footprint of ``code_kb`` holding one instruction per 4-byte
  slot, with a branch site every ``1/branch_frac`` slots — so branch
  PCs recur at a fixed set of static sites and the gshare predictor can
  actually learn them;
* each branch site has a fixed dominant direction and a fixed target
  (backward with 70 % probability, loop-like); dynamic outcomes follow
  the dominant direction with probability ``branch_predictability``;
* destination registers are assigned round-robin within the integer /
  floating-point register pools, so a producer ``d < 31`` class-writes
  back is still architecturally live — register dependences are *true*
  dependences with exactly controlled distances;
* data addresses mix sequential stride streams (``seq_frac``) with
  uniform references over the ``footprint_kb`` working set, and loads
  optionally chain through the previous load's destination
  (``pointer_chase``) to model pointer codes.

Traces are independent of the machine configuration, so they are cached
and replayed across every scheduler/IQ-size combination of an experiment
— both a large speedup and a guarantee that scheduler comparisons see
identical instruction streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.opcodes import FP_PRODUCERS, OpClass
from repro.isa.registers import (
    FP_BASE,
    NO_REG,
    REG_FP_ZERO,
    REG_INT_ZERO,
)
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.util.rng import make_rng

#: Writable (renamable) registers per class: r0..r30 / f0..f30.
_INT_POOL = REG_INT_ZERO  # 31 registers: 0..30
_FP_POOL = REG_FP_ZERO - FP_BASE  # 31 registers: 32..62

#: Probability that an ALU/FP/branch instruction has at least one
#: register source (the rest use immediates / the zero register).
_FIRST_SRC_PROB = 0.9

#: Fraction of branch sites whose taken target is backward (loops).
_BACKWARD_FRAC = 0.7

#: Probability that an instruction's second source operand is produced by
#: a different dependence strand than its first.
_CROSS_STRAND_PROB = 0.15

#: Probability that a computation's first source is the strand's most
#: recently loaded value. Loaded values fan out to many direct consumers
#: in real code; on a cache miss those consumers are exactly the
#: instructions that reach dispatch with two non-ready operands, wait
#: long for the first (the load), and then issue in a burst — the
#: population the 2OP_* schedulers keep out of the issue queue.
_LOAD_CONSUME_PROB = 0.35

#: Stride streams used for sequential accesses (bytes). Small strides so
#: a 256-byte L1 line serves ~10-30 stream accesses, approximating the
#: spatial locality real compiled loops exhibit.
_STREAM_STRIDES = (8, 8, 16, 32)

#: Size of the L1-resident "hot set" that captures temporal locality
#: (stack frames, globals, hot heap objects).
_HOT_BYTES = 8 * 1024

#: Upper bound on each stride stream's circular region. Streams model
#: repeated loop passes over the same arrays, so they wrap: after warmup
#: their lines live in the cache hierarchy and the truly memory-bound
#: traffic is carried by the uniform-random component instead.
_STREAM_REGION_BYTES = 32 * 1024

#: Data prefix (bytes) covered by ``Trace.warm_addrs``. In steady state a
#: working set no larger than the cache hierarchy is fully resident; at
#: reduced simulation scales the uniform-random access component would
#: otherwise see only compulsory misses. Touching the first
#: ``min(footprint, cap)`` bytes before measurement reproduces the
#: steady-state residency: small footprints become fully cached, while
#: for huge footprints the resident fraction matches capacity/footprint.
_WARM_PREFIX_CAP = 4 * 1024 * 1024

#: Stride of the warm-address walk; covers every line for line sizes
#: >= 128 bytes (Table 1 uses 128/256/512-byte lines).
_WARM_STEP = 128

_OP_LIST = list(OpClass)


@dataclass(slots=True)
class Trace:
    """A generated instruction stream, stored column-wise.

    Columns are plain Python lists for fast scalar access in the
    simulator's fetch loop (NumPy scalar indexing would dominate the
    profile otherwise — see DESIGN.md §6).
    """

    name: str
    seed: int
    op: list[int] = field(repr=False)
    dest: list[int] = field(repr=False)
    src1: list[int] = field(repr=False)
    src2: list[int] = field(repr=False)
    pc: list[int] = field(repr=False)
    addr: list[int] = field(repr=False)
    taken: list[bool] = field(repr=False)
    target: list[int] = field(repr=False)
    #: data addresses to touch (in order) before timed simulation so the
    #: cache hierarchy starts in steady-state residency; see
    #: :data:`_WARM_PREFIX_CAP`.
    warm_addrs: list[int] = field(default_factory=list, repr=False)
    #: instruction addresses to pre-touch (hot code is L1I/L2 resident in
    #: steady state).
    warm_pcs: list[int] = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return len(self.op)

    def instruction(self, i: int):
        """Materialise instruction ``i`` as a TraceInstruction (tests)."""
        from repro.isa.instruction import TraceInstruction

        return TraceInstruction(
            op=OpClass(self.op[i]),
            dest=self.dest[i],
            src1=self.src1[i],
            src2=self.src2[i],
            pc=self.pc[i],
            addr=self.addr[i],
            taken=self.taken[i],
            target=self.target[i],
        )

    def iter_instructions(self):
        """Yield every instruction as a TraceInstruction (tests/examples)."""
        for i in range(len(self.op)):
            yield self.instruction(i)


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

def _draw_ops(profile: BenchmarkProfile, n: int,
              rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` non-branch operation classes from the profile mix."""
    classes = [op for op in _OP_LIST if op is not OpClass.BRANCH]
    probs = np.array([profile.mix.get(op, 0.0) for op in classes], dtype=float)
    total = probs.sum()
    if total <= 0:
        raise ValueError(f"{profile.name}: mix has no non-branch operations")
    probs /= total
    idx = rng.choice(len(classes), size=n, p=probs)
    lut = np.array([int(op) for op in classes], dtype=np.uint8)
    return lut[idx]


def generate_trace(profile: BenchmarkProfile | str, n: int,
                   seed: int = 0) -> Trace:
    """Generate ``n`` instructions of the given benchmark.

    Deterministic in ``(profile.name, n, seed)``. Results are memoised;
    see :func:`clear_trace_cache`.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    key = (profile.fingerprint(), n, seed)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        return cached
    trace = _generate(profile, n, seed)
    if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
        _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
    _TRACE_CACHE[key] = trace
    return trace


def _generate(profile: BenchmarkProfile, n: int, seed: int) -> Trace:
    if n <= 0:
        raise ValueError(f"trace length must be positive, got {n}")
    rng = make_rng(seed, "trace", profile.name)

    branch_frac = profile.mix.get(OpClass.BRANCH, 0.0)
    # Static layout: one branch site every `period` slots.
    period = max(2, round(1.0 / branch_frac)) if branch_frac > 0 else 0
    code_slots = max(period * 4 if period else 64,
                     (profile.code_kb * 1024) // 4)
    if period:
        # Align the code footprint to whole blocks.
        code_slots -= code_slots % period
        num_sites = code_slots // period
    else:
        num_sites = 0

    # Per-site static branch behaviour. Outcomes follow a loop-like
    # pattern — the dominant direction for `K-1` out of `K` occurrences —
    # so a history-based predictor can actually learn them (purely
    # Bernoulli outcomes have maximal history entropy and would defeat
    # gshare in a way real programs do not). Noise occurrences flip the
    # pattern, tuning the achievable accuracy to
    # ``branch_predictability``.
    if num_sites:
        site_rng = make_rng(seed, "sites", profile.name)
        # ~30 % of sites are loop latches: taken-dominant, jumping
        # backward over a small body so execution revisits the same
        # handful of sites with repeating outcomes — the path locality a
        # real gshare predictor feeds on. The rest are fall-through
        # conditionals (not-taken-dominant, occasionally skipping
        # forward).
        latch = site_rng.random(num_sites) < _BACKWARD_FRAC * 0.45
        dominant_taken = latch.copy()
        mispred_budget = max(0.005, 1.0 - profile.branch_predictability)
        base_period = max(4, round(3.0 / mispred_budget))
        site_period = site_rng.integers(
            max(3, base_period // 2), base_period * 2, num_sites
        )
        site_count = np.zeros(num_sites, dtype=np.int64)
        noise_prob = mispred_budget / 3.0
        # Targets are block starts (slot index of the block's first insn).
        back_off = site_rng.integers(1, 9, num_sites)  # blocks backward
        fwd_off = site_rng.integers(1, 9, num_sites)  # blocks forward
        site_block = np.arange(num_sites)
        target_block = np.where(
            latch,
            (site_block - back_off) % num_sites,
            (site_block + fwd_off) % num_sites,
        )
        target_slot = target_block * period
    else:  # pragma: no cover - profiles always include branches
        dominant_taken = target_slot = None
        site_period = site_count = None
        noise_prob = 0.0

    # Pre-drawn randomness (vectorised; the assembly loop below is scalar).
    ops_pool = _draw_ops(profile, n, rng)
    u_first_src = rng.random(n)
    u_two_src = rng.random(n)
    # Long-lived ("far") operands are always ready at dispatch; model
    # them as dependence-free (see BenchmarkProfile.far_src_frac).
    far1 = rng.random(n) < profile.far_src_frac
    far2 = rng.random(n) < profile.far_src_frac
    u_seq = rng.random(n)
    u_chase = rng.random(n)
    u_outcome = rng.random(n)
    u_fp_load = rng.random(n)
    # Geometric dependence distances, drawn per potential source. The
    # distance is measured in *class-producer* occurrences; scale the mean
    # so the distance in dynamic instructions matches `dep_mean`.
    producer_frac = max(
        0.05,
        sum(
            frac for op, frac in profile.mix.items()
            if op not in (OpClass.STORE, OpClass.BRANCH)
        ),
    )
    # Distances are drawn within the instruction's dependence strand, so
    # divide by the strand count to keep `dep_mean` in whole-stream terms.
    # The floor keeps an instruction's two sources frequently *distinct*
    # registers — a mean of exactly 1 would collapse both onto the
    # strand's last producer, making two-non-ready (NDI) situations
    # impossible and neutering the 2OP_* designs under study.
    strands = profile.strands
    mean_dp = max(1.7, profile.dep_mean * producer_frac / strands)
    p_geom = min(1.0, 1.0 / mean_dp)
    dist1 = rng.geometric(p_geom, n)
    dist2 = rng.geometric(p_geom, n)
    strand_of = rng.integers(0, strands, n)
    # Second sources frequently come from a *different* strand, so the two
    # operands of an instruction arrive at very different times — the
    # paper's observation that two-non-ready instructions spend most of
    # their wait on the first source. The XOR trick picks a distinct
    # strand when there is more than one.
    cross2 = rng.random(n) < _CROSS_STRAND_PROB
    cross_pick = rng.integers(1, max(2, strands), n)
    u_loadsrc = rng.random(n)
    footprint = max(4096, profile.footprint_kb * 1024)
    # Non-stream accesses split between an L1-resident hot set (temporal
    # locality) and uniform references over the full working set.
    hot_bytes = min(footprint, _HOT_BYTES)
    u_hot = rng.random(n)
    hot_addr = rng.integers(0, hot_bytes, n)
    rand_addr = rng.integers(0, footprint, n)
    stream_pick = rng.integers(0, len(_STREAM_STRIDES), n)
    # Each stream walks circularly over its own region of the footprint;
    # see _STREAM_REGION_BYTES.
    stream_region = max(
        1024, min(footprint // len(_STREAM_STRIDES), _STREAM_REGION_BYTES)
    )
    stream_base = [
        int(rng.integers(0, max(1, footprint - stream_region))) & ~7
        for _ in _STREAM_STRIDES
    ]
    stream_off = [0] * len(_STREAM_STRIDES)

    # Rolling producer rings (registers written, most recent last), one
    # per dependence strand and register class. Ring capacities divide the
    # register pool so every ringed register is still architecturally live.
    cap_int = max(2, _INT_POOL // strands)
    cap_fp = max(2, _FP_POOL // strands)
    rings_int: list[list[int]] = [[] for _ in range(strands)]
    rings_fp: list[list[int]] = [[] for _ in range(strands)]
    rr_int = 0
    rr_fp = 0
    last_load_dest = [NO_REG] * strands

    op_col: list[int] = [0] * n
    dest_col: list[int] = [NO_REG] * n
    src1_col: list[int] = [NO_REG] * n
    src2_col: list[int] = [NO_REG] * n
    pc_col: list[int] = [0] * n
    addr_col: list[int] = [0] * n
    taken_col: list[bool] = [False] * n
    target_col: list[int] = [0] * n

    pc_slot = 0
    pool_i = 0  # index into the pre-drawn non-branch op pool

    def pick_src(ring: list[int], dist: int) -> int:
        if not ring:
            return NO_REG
        d = dist if dist <= len(ring) else len(ring)
        return ring[-d]

    for i in range(n):
        pc = pc_slot * 4
        pc_col[i] = pc
        is_branch_slot = period and (pc_slot % period == period - 1)
        if is_branch_slot:
            site = pc_slot // period
            op = OpClass.BRANCH
            # Loop pattern: off-direction once per `site_period` visits.
            visit = site_count[site]
            site_count[site] = visit + 1
            pattern_dominant = (visit % site_period[site]) != 0
            if u_outcome[i] < noise_prob:
                pattern_dominant = not pattern_dominant
            tk = bool(dominant_taken[site]) == pattern_dominant
            taken_col[i] = tk
            tgt_slot = int(target_slot[site])
            target_col[i] = tgt_slot * 4
            # Branch tests one integer register of some strand.
            if u_first_src[i] < _FIRST_SRC_PROB and not far1[i]:
                src1_col[i] = pick_src(rings_int[strand_of[i]], int(dist1[i]))
            op_col[i] = int(op)
            pc_slot = tgt_slot if tk else (pc_slot + 1) % code_slots
            continue

        op = OpClass(int(ops_pool[pool_i]))
        pool_i += 1
        op_col[i] = int(op)
        pc_slot = (pc_slot + 1) % code_slots

        if op is OpClass.LOAD:
            k = int(strand_of[i])
            fp_dest = u_fp_load[i] < profile.fp_load_frac
            chase = (
                u_chase[i] < profile.pointer_chase
                and last_load_dest[k] != NO_REG
            )
            if chase:
                src1_col[i] = last_load_dest[k]
                fp_dest = False  # chained pointers live in int registers
                addr_col[i] = int(rand_addr[i]) & ~7
            else:
                if u_first_src[i] < _FIRST_SRC_PROB and not far1[i]:
                    src1_col[i] = pick_src(rings_int[k], int(dist1[i]))
                if u_seq[i] < profile.seq_frac:
                    s = int(stream_pick[i])
                    stream_off[s] = (
                        stream_off[s] + _STREAM_STRIDES[s]
                    ) % stream_region
                    addr_col[i] = stream_base[s] + stream_off[s]
                elif u_hot[i] < profile.hot_frac:
                    addr_col[i] = int(hot_addr[i]) & ~7
                else:
                    addr_col[i] = int(rand_addr[i]) & ~7
            if fp_dest:
                dest = FP_BASE + (rr_fp % _FP_POOL)
                rr_fp += 1
                ring = rings_fp[k]
                ring.append(dest)
                if len(ring) > cap_fp:
                    ring.pop(0)
            else:
                dest = rr_int % _INT_POOL
                rr_int += 1
                ring = rings_int[k]
                ring.append(dest)
                if len(ring) > cap_int:
                    ring.pop(0)
                last_load_dest[k] = dest
            dest_col[i] = dest
            continue

        if op is OpClass.STORE:
            k = int(strand_of[i])
            # Data source (class follows the suite) + integer address base.
            if not far1[i]:
                if (profile.fp_load_frac > 0
                        and u_fp_load[i] < profile.fp_load_frac):
                    src1_col[i] = pick_src(rings_fp[k], int(dist1[i]))
                else:
                    src1_col[i] = pick_src(rings_int[k], int(dist1[i]))
            if not far2[i]:
                k2 = (k + int(cross_pick[i])) % strands if cross2[i] else k
                src2_col[i] = pick_src(rings_int[k2], int(dist2[i]))
            if u_seq[i] < profile.seq_frac:
                s = int(stream_pick[i])
                stream_off[s] = (
                    stream_off[s] + _STREAM_STRIDES[s]
                ) % stream_region
                addr_col[i] = stream_base[s] + stream_off[s]
            elif u_hot[i] < profile.hot_frac:
                addr_col[i] = int(hot_addr[i]) & ~7
            else:
                addr_col[i] = int(rand_addr[i]) & ~7
            continue

        # Register-computation ops (IALU/IMUL/IDIV/FP*/NOP).
        k = int(strand_of[i])
        is_fp = op in FP_PRODUCERS
        ring = rings_fp[k] if is_fp else rings_int[k]
        if u_first_src[i] < _FIRST_SRC_PROB:
            if not far1[i]:
                if (not is_fp and u_loadsrc[i] < _LOAD_CONSUME_PROB
                        and last_load_dest[k] != NO_REG):
                    src1_col[i] = last_load_dest[k]
                else:
                    src1_col[i] = pick_src(ring, int(dist1[i]))
            if u_two_src[i] < profile.frac_two_src and not far2[i]:
                if cross2[i] and strands > 1:
                    k2 = (k + int(cross_pick[i])) % strands
                    ring2 = rings_fp[k2] if is_fp else rings_int[k2]
                else:
                    ring2 = ring
                src2_col[i] = pick_src(ring2, int(dist2[i]))
        if op is not OpClass.NOP:
            if is_fp:
                dest = FP_BASE + (rr_fp % _FP_POOL)
                rr_fp += 1
                ring.append(dest)
                if len(ring) > cap_fp:
                    ring.pop(0)
            else:
                dest = rr_int % _INT_POOL
                rr_int += 1
                ring.append(dest)
                if len(ring) > cap_int:
                    ring.pop(0)
            dest_col[i] = dest

    # Steady-state residency prefix (see _WARM_PREFIX_CAP): the whole
    # footprint for cache-resident programs, a capacity-sized slice for
    # memory-bound ones, then the stream regions and the hot set last so
    # they end up closest in the LRU stacks.
    warm_addrs: list[int] = list(
        range(0, min(footprint, _WARM_PREFIX_CAP), _WARM_STEP)
    )
    for base in stream_base:
        warm_addrs.extend(range(base, base + stream_region, _WARM_STEP))
    warm_addrs.extend(range(0, hot_bytes, _WARM_STEP))
    warm_pcs = list(range(0, code_slots * 4, 64))

    return Trace(
        warm_addrs=warm_addrs,
        warm_pcs=warm_pcs,
        name=profile.name,
        seed=seed,
        op=op_col,
        dest=dest_col,
        src1=src1_col,
        src2=src2_col,
        pc=pc_col,
        addr=addr_col,
        taken=taken_col,
        target=target_col,
    )


# ---------------------------------------------------------------------------
# trace cache
# ---------------------------------------------------------------------------

_TRACE_CACHE: dict[tuple[str, int, int], Trace] = {}
_TRACE_CACHE_MAX = 64


def clear_trace_cache() -> None:
    """Drop all memoised traces (tests and memory-pressure control)."""
    _TRACE_CACHE.clear()

"""Statistical profiles of the 26 SPEC CPU2000 benchmarks.

Each profile parameterises the synthetic trace generator. The numbers
are not measurements of the original binaries (unavailable offline); they
are plausible values chosen so that

* integer programs issue no FP operations and vice versa dominate,
* memory-bound programs (the paper's **low ILP** class) have data
  footprints far exceeding the 2 MB L2 and short dependence distances,
* execution-bound programs (**high ILP**) fit their working set in the
  cache hierarchy and expose long dependence distances,
* the single-thread ILP classification produced by
  :mod:`repro.trace.classify` on the paper's Table 1 machine matches the
  class labels used in the paper's workload tables (Tables 2–4).

The ILP class recorded here is the *target* label; the classifier
recomputes it from simulation and the test suite asserts agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass
from repro.util.validate import check_positive, check_range

#: Canonical ILP class labels.
ILP_CLASSES = ("low", "med", "high")


@dataclass(frozen=True, slots=True)
class BenchmarkProfile:
    """Generator parameters for one synthetic benchmark.

    Attributes:
        name: SPEC program name (e.g. ``"gzip"``).
        suite: ``"int"`` or ``"fp"``.
        ilp_class: target classification (``low`` = memory bound,
            ``high`` = execution bound) per the paper's Tables 2–4.
        mix: fraction of dynamic instructions per :class:`OpClass`
            (must sum to 1).
        frac_two_src: probability that an ALU/FP operation carries a
            second register source operand.
        dep_mean: mean register dependence distance, in dynamic
            instructions, between a consumer and its producer (geometric
            distribution, clamped to the live-register window).
        footprint_kb: data working-set size in KiB.
        seq_frac: fraction of memory references that follow sequential
            stride streams (cache friendly); the rest are uniform over
            the footprint.
        pointer_chase: fraction of loads whose address register is
            produced by the immediately preceding load (serial chains,
            typical of pointer codes like mcf/parser/twolf).
        branch_predictability: probability a dynamic branch follows its
            static site's dominant direction; sets the achievable gshare
            accuracy.
        code_kb: instruction footprint in KiB (drives L1I behaviour).
        fp_load_frac: fraction of loads writing an FP register.
        hot_frac: fraction of non-stream memory references hitting an
            L1-resident hot set (temporal locality); the remainder are
            uniform over the full footprint.
        far_src_frac: probability that a register source refers to a
            long-lived, long-ago-produced value (stack/global base
            pointers, loop invariants, immediates materialised earlier)
            rather than a recent producer. Such operands are essentially
            always ready at dispatch — they are what makes most
            instructions *hidden dispatchable* rather than NDIs when a
            thread stalls (paper §4 measures ~90 % HDIs).
        strands: number of independent dependence strands interleaved in
            the instruction stream (parallel loop iterations, unrelated
            expression trees). A long-latency miss stalls only its own
            strand; the other strands keep supplying dispatchable
            instructions. Low-ILP programs have few strands, high-ILP
            many — this is the primary ILP knob.
    """

    name: str
    suite: str
    ilp_class: str
    mix: dict[OpClass, float]
    frac_two_src: float
    dep_mean: float
    footprint_kb: int
    seq_frac: float
    pointer_chase: float
    branch_predictability: float
    code_kb: int = 64
    fp_load_frac: float = 0.0
    hot_frac: float = 0.85
    far_src_frac: float = 0.10
    strands: int = 4

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"suite must be 'int' or 'fp', got {self.suite!r}")
        if self.ilp_class not in ILP_CLASSES:
            raise ValueError(
                f"ilp_class must be one of {ILP_CLASSES}, got {self.ilp_class!r}"
            )
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: mix sums to {total}, expected 1.0")
        for frac in self.mix.values():
            check_range("mix fraction", frac, 0.0, 1.0)
        check_range("frac_two_src", self.frac_two_src, 0.0, 1.0)
        check_positive("dep_mean", self.dep_mean)
        check_positive("footprint_kb", self.footprint_kb)
        check_range("seq_frac", self.seq_frac, 0.0, 1.0)
        check_range("pointer_chase", self.pointer_chase, 0.0, 1.0)
        check_range(
            "branch_predictability", self.branch_predictability, 0.5, 1.0
        )
        check_positive("code_kb", self.code_kb)
        check_range("fp_load_frac", self.fp_load_frac, 0.0, 1.0)
        check_range("hot_frac", self.hot_frac, 0.0, 1.0)
        check_range("far_src_frac", self.far_src_frac, 0.0, 1.0)
        check_range("strands", self.strands, 1, 8)

    def fingerprint(self) -> tuple:
        """Hashable identity covering *all* generator-relevant fields.

        Used as the trace-cache key so two profiles that merely share a
        name (e.g. ablation variants) never alias each other's traces.
        """
        return (
            self.name,
            self.suite,
            tuple(sorted((int(op), frac) for op, frac in self.mix.items())),
            self.frac_two_src,
            self.dep_mean,
            self.footprint_kb,
            self.seq_frac,
            self.pointer_chase,
            self.branch_predictability,
            self.code_kb,
            self.fp_load_frac,
            self.hot_frac,
            self.far_src_frac,
            self.strands,
        )


def _int_mix(load: float, store: float, branch: float,
             imul: float = 0.01, idiv: float = 0.002) -> dict[OpClass, float]:
    """Integer-program mix; the remainder is plain integer ALU work."""
    ialu = 1.0 - (load + store + branch + imul + idiv)
    if ialu < 0:
        raise ValueError("integer mix fractions exceed 1")
    return {
        OpClass.IALU: ialu,
        OpClass.IMUL: imul,
        OpClass.IDIV: idiv,
        OpClass.LOAD: load,
        OpClass.STORE: store,
        OpClass.BRANCH: branch,
    }


def _fp_mix(load: float, store: float, branch: float, fpadd: float,
            fpmul: float, fpdiv: float = 0.004, fpsqrt: float = 0.001,
            imul: float = 0.002) -> dict[OpClass, float]:
    """FP-program mix; integer ALU fills the remainder (address math)."""
    ialu = 1.0 - (
        load + store + branch + fpadd + fpmul + fpdiv + fpsqrt + imul
    )
    if ialu < 0:
        raise ValueError("fp mix fractions exceed 1")
    return {
        OpClass.IALU: ialu,
        OpClass.IMUL: imul,
        OpClass.LOAD: load,
        OpClass.STORE: store,
        OpClass.BRANCH: branch,
        OpClass.FPADD: fpadd,
        OpClass.FPMUL: fpmul,
        OpClass.FPDIV: fpdiv,
        OpClass.FPSQRT: fpsqrt,
    }


def _profiles() -> dict[str, BenchmarkProfile]:
    mk = BenchmarkProfile
    table = [
        # ---------------- SPEC CINT2000 ----------------
        # memory-bound pointer codes → low ILP
        mk("mcf", "int", "low", _int_mix(0.30, 0.09, 0.19),
           0.45, 2.2, 96 * 1024, 0.15, 0.35, 0.89, code_kb=16,
           hot_frac=0.92, strands=2),
        mk("parser", "int", "low", _int_mix(0.24, 0.10, 0.18),
           0.50, 2.5, 24 * 1024, 0.30, 0.12, 0.90, code_kb=12,
           hot_frac=0.92, strands=2),
        mk("twolf", "int", "low", _int_mix(0.25, 0.09, 0.16),
           0.50, 2.4, 16 * 1024, 0.25, 0.10, 0.88, code_kb=12,
           hot_frac=0.92, strands=2),
        mk("vpr", "int", "low", _int_mix(0.26, 0.10, 0.15),
           0.50, 2.6, 20 * 1024, 0.30, 0.10, 0.90, code_kb=12,
           hot_frac=0.92, strands=2),
        # medium
        mk("bzip2", "int", "med", _int_mix(0.25, 0.11, 0.13),
           0.55, 4.2, 3 * 1024, 0.60, 0.05, 0.93, code_kb=8, hot_frac=0.93, far_src_frac=0.18),
        mk("gcc", "int", "med", _int_mix(0.24, 0.13, 0.16),
           0.55, 4.0, 3 * 1024, 0.55, 0.06, 0.92, code_kb=64, hot_frac=0.92, far_src_frac=0.18),
        # execution-bound → high ILP
        mk("crafty", "int", "high", _int_mix(0.22, 0.08, 0.12),
           0.60, 7.5, 512, 0.80, 0.02, 0.95, code_kb=24, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("eon", "int", "high", _int_mix(0.23, 0.13, 0.10),
           0.60, 8.0, 256, 0.85, 0.02, 0.97, code_kb=24, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("gap", "int", "high", _int_mix(0.24, 0.10, 0.11),
           0.60, 7.0, 768, 0.80, 0.03, 0.96, code_kb=16, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("gzip", "int", "high", _int_mix(0.20, 0.09, 0.11),
           0.60, 7.8, 384, 0.85, 0.02, 0.95, code_kb=8, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("perlbmk", "int", "high", _int_mix(0.24, 0.12, 0.13),
           0.60, 7.2, 512, 0.80, 0.03, 0.96, code_kb=32, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("vortex", "int", "high", _int_mix(0.26, 0.14, 0.11),
           0.60, 7.6, 640, 0.82, 0.03, 0.97, code_kb=32, strands=6, hot_frac=0.55, far_src_frac=0.3),
        # ---------------- SPEC CFP2000 ----------------
        # memory-streaming far beyond L2 → low ILP
        mk("art", "fp", "low", _fp_mix(0.28, 0.08, 0.08, 0.16, 0.12),
           0.45, 2.3, 48 * 1024, 0.35, 0.05, 0.94,
           code_kb=8, fp_load_frac=0.7, hot_frac=0.90, strands=3),
        mk("equake", "fp", "low", _fp_mix(0.30, 0.08, 0.07, 0.15, 0.13),
           0.45, 2.4, 40 * 1024, 0.40, 0.06, 0.95,
           code_kb=12, fp_load_frac=0.7, hot_frac=0.90, strands=3),
        mk("lucas", "fp", "low", _fp_mix(0.26, 0.10, 0.04, 0.18, 0.16),
           0.45, 2.5, 64 * 1024, 0.45, 0.05, 0.97,
           code_kb=8, fp_load_frac=0.8, strands=3),
        mk("swim", "fp", "low", _fp_mix(0.28, 0.10, 0.03, 0.20, 0.14),
           0.45, 2.6, 96 * 1024, 0.50, 0.02, 0.98,
           code_kb=8, fp_load_frac=0.8, strands=3),
        # medium
        mk("ammp", "fp", "med", _fp_mix(0.26, 0.09, 0.06, 0.16, 0.14),
           0.55, 4.0, 3 * 1024, 0.55, 0.06, 0.95,
           code_kb=16, fp_load_frac=0.6, hot_frac=0.94, far_src_frac=0.18),
        mk("applu", "fp", "med", _fp_mix(0.25, 0.10, 0.03, 0.20, 0.16),
           0.55, 4.5, 3 * 1024, 0.65, 0.02, 0.97,
           code_kb=12, fp_load_frac=0.7, hot_frac=0.93, far_src_frac=0.18),
        mk("fma3d", "fp", "med", _fp_mix(0.26, 0.11, 0.06, 0.18, 0.14),
           0.55, 4.2, 3 * 1024, 0.60, 0.04, 0.95,
           code_kb=32, fp_load_frac=0.6, hot_frac=0.93, far_src_frac=0.18),
        mk("galgel", "fp", "med", _fp_mix(0.24, 0.08, 0.05, 0.20, 0.17),
           0.55, 4.6, 3 * 1024, 0.65, 0.02, 0.96,
           code_kb=16, fp_load_frac=0.7, hot_frac=0.92, far_src_frac=0.18),
        mk("wupwise", "fp", "med", _fp_mix(0.23, 0.09, 0.05, 0.18, 0.18),
           0.55, 4.8, 3 * 1024, 0.70, 0.02, 0.97,
           code_kb=8, fp_load_frac=0.7, hot_frac=0.92, far_src_frac=0.18),
        # execution bound → high ILP
        mk("apsi", "fp", "high", _fp_mix(0.22, 0.09, 0.04, 0.20, 0.17),
           0.60, 7.5, 1536, 0.80, 0.01, 0.97,
           code_kb=24, fp_load_frac=0.6, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("facerec", "fp", "high", _fp_mix(0.22, 0.08, 0.04, 0.21, 0.18),
           0.60, 8.0, 1024, 0.85, 0.01, 0.98,
           code_kb=16, fp_load_frac=0.7, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("mesa", "fp", "high", _fp_mix(0.22, 0.10, 0.08, 0.17, 0.15),
           0.60, 7.8, 768, 0.82, 0.02, 0.97,
           code_kb=16, fp_load_frac=0.5, strands=6, hot_frac=0.55, far_src_frac=0.3),
        mk("mgrid", "fp", "high", _fp_mix(0.24, 0.07, 0.02, 0.24, 0.18),
           0.60, 8.5, 1024, 0.90, 0.00, 0.99,
           code_kb=8, fp_load_frac=0.8, strands=7, hot_frac=0.55, far_src_frac=0.3),
        mk("sixtrack", "fp", "high", _fp_mix(0.21, 0.09, 0.05, 0.20, 0.17),
           0.60, 7.6, 1024, 0.82, 0.01, 0.97,
           code_kb=32, fp_load_frac=0.6, strands=6, hot_frac=0.55, far_src_frac=0.3),
    ]
    return {p.name: p for p in table}


#: Registry of all 26 profiles, keyed by benchmark name.
PROFILES: dict[str, BenchmarkProfile] = _profiles()

#: All benchmark names, alphabetical.
ALL_BENCHMARKS: tuple[str, ...] = tuple(sorted(PROFILES))


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by SPEC program name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(ALL_BENCHMARKS)}"
        ) from None


def benchmarks_by_class(ilp_class: str) -> tuple[str, ...]:
    """All benchmark names with the given target ILP class."""
    if ilp_class not in ILP_CLASSES:
        raise ValueError(f"unknown ILP class {ilp_class!r}")
    return tuple(
        name for name in ALL_BENCHMARKS
        if PROFILES[name].ilp_class == ilp_class
    )

"""Synthetic SPEC CPU2000 workload models.

The paper simulates precompiled Alpha binaries of all 26 SPEC CPU2000
programs. Those binaries (and an Alpha functional simulator) are not
reproducible here, so each program is replaced by a *statistical profile*
(:mod:`repro.trace.profiles`) driving a deterministic synthetic trace
generator (:mod:`repro.trace.generator`). The profiles control exactly
the program properties the studied mechanisms are sensitive to:

* instruction mix (which functional units, which latencies);
* register dependence-distance distribution (how often an instruction
  reaches dispatch with 0/1/2 non-ready sources);
* data footprint and access regularity (cache miss rates, hence
  long-latency producers);
* branch predictability (front-end bubbles).

See DESIGN.md §2 for the substitution argument.
"""

from repro.trace.generator import Trace, clear_trace_cache, generate_trace
from repro.trace.profiles import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    get_profile,
)
from repro.trace.classify import classify_benchmark, classify_all

__all__ = [
    "BenchmarkProfile",
    "ALL_BENCHMARKS",
    "get_profile",
    "Trace",
    "generate_trace",
    "clear_trace_cache",
    "classify_benchmark",
    "classify_all",
]

"""Throughput measurement, profiling, and the CI perf gate.

The pure-Python cycle loop bounds every experiment in this
reproduction, so its speed is a tracked artefact: ``run_bench``
measures it the same way ``benchmarks/bench_sim_speed.py`` does,
``BENCH_sim_speed.json`` at the repository root records the blessed
number, and ``gate_check`` fails CI on a >15 % regression against it
(see docs/performance.md).

CLI::

    python -m repro.perf bench                    # measure cycles/s
    python -m repro.perf bench --update-baseline  # bless a new number
    python -m repro.perf profile                  # cProfile + stage timers
    python -m repro.perf gate                     # compare vs baseline
"""

from repro.perf.bench import (
    DEFAULT_INSNS,
    DEFAULT_MIX,
    DEFAULT_REPS,
    DEFAULT_WARMUP,
    GATE_THRESHOLD,
    BenchResult,
    GateReport,
    decode_bench_result,
    default_baseline_path,
    dumps_baseline,
    encode_bench_result,
    gate_check,
    load_baseline,
    run_bench,
    write_baseline,
)
from repro.perf.profile import (
    STAGE_NAMES,
    Hotspot,
    ProfileReport,
    install_stage_timers,
    profile_run,
)

__all__ = [
    "DEFAULT_INSNS",
    "DEFAULT_MIX",
    "DEFAULT_REPS",
    "DEFAULT_WARMUP",
    "GATE_THRESHOLD",
    "STAGE_NAMES",
    "BenchResult",
    "GateReport",
    "Hotspot",
    "ProfileReport",
    "decode_bench_result",
    "default_baseline_path",
    "dumps_baseline",
    "encode_bench_result",
    "gate_check",
    "install_stage_timers",
    "load_baseline",
    "profile_run",
    "run_bench",
    "write_baseline",
]

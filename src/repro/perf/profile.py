"""Profiling for the cycle loop: cProfile plus per-stage wall-clock.

Two passes over fresh cores of the same configuration:

1. **cProfile** — function-level hotspots (``tottime``-sorted). This is
   the view that drives slimming work: in CPython the pure call
   overhead of the per-cycle stage functions dominates, so the win is
   usually fewer calls, not faster ones.
2. **Stage timers** — the six per-cycle stage callables are wrapped
   with accumulating timers, giving a commit/issue/dispatch/rename/
   fetch/events breakdown without profiler distortion. This works
   because :class:`~repro.pipeline.smt_core.SMTProcessor` caches the
   stage bound methods in the instance dict, so a per-instance wrapper
   intercepts every call ``step()`` makes.

Fast-forwarded (skipped) spans never enter the wrappers, so the stage
seconds describe exactly the cycles that were actually stepped.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time  # repro: noqa[RPR001] — the perf harness measures wall clock
from dataclasses import dataclass

from repro.analysis.contracts import STAGE_CALLABLES
from repro.config.presets import paper_machine
from repro.experiments.runner import thread_traces
from repro.perf.bench import DEFAULT_INSNS, DEFAULT_MIX, DEFAULT_WARMUP
from repro.pipeline.smt_core import SMTProcessor

#: The per-cycle callables ``step()`` reads from the instance dict —
#: the same registry the stage contracts and the sanitizer shadow
#: checks hang off, so a renamed or added stage updates all three.
STAGE_NAMES: tuple[str, ...] = tuple(STAGE_CALLABLES)


@dataclass(frozen=True)
class Hotspot:
    """One cProfile row (``tottime``-sorted)."""

    function: str
    calls: int
    tottime: float
    cumtime: float


@dataclass(frozen=True)
class ProfileReport:
    """Everything ``python -m repro.perf profile`` prints."""

    cycles: int
    committed: int
    elapsed_s: float
    cycles_per_s: float
    stage_seconds: dict[str, float]
    hotspots: list[Hotspot]
    stats_text: str

    def as_dict(self) -> dict[str, object]:
        return {
            "cycles": int(self.cycles),
            "committed": int(self.committed),
            "elapsed_s": float(self.elapsed_s),
            "cycles_per_s": float(self.cycles_per_s),
            "stage_seconds": {k: float(v)
                              for k, v in self.stage_seconds.items()},
            "hotspots": [
                {
                    "function": h.function,
                    "calls": int(h.calls),
                    "tottime": float(h.tottime),
                    "cumtime": float(h.cumtime),
                }
                for h in self.hotspots
            ],
        }


def install_stage_timers(core: SMTProcessor) -> dict[str, float]:
    """Wrap ``core``'s cached stage callables with accumulating timers.

    Returns a live dict (stage name -> seconds) that keeps updating as
    the core runs. The wrappers forward ``*args`` untouched, so both
    the ``(cycle)`` stages and the ``(core, cycle)`` fetch entry work.
    """
    seconds = {name: 0.0 for name in STAGE_NAMES}
    perf_counter = time.perf_counter
    for name in STAGE_NAMES:
        inner = getattr(core, name)

        def timed(*args, _inner=inner, _name=name):
            t0 = perf_counter()  # repro: noqa[RPR001] — stage timer
            out = _inner(*args)
            seconds[_name] += perf_counter() - t0  # repro: noqa[RPR001]
            return out

        setattr(core, name, timed)
    return seconds


def _fresh_core(benchmarks: tuple[str, ...], scheduler: str,
                max_insns: int, warmup: int) -> SMTProcessor:
    cfg = paper_machine(scheduler=scheduler)
    traces = thread_traces(list(benchmarks), max_insns, seed=0,
                           warmup=warmup)
    return SMTProcessor(cfg, traces, warmup=warmup)


def profile_run(
    benchmarks: tuple[str, ...] = DEFAULT_MIX,
    scheduler: str = "traditional",
    max_insns: int = DEFAULT_INSNS,
    warmup: int = DEFAULT_WARMUP,
    top: int = 15,
) -> ProfileReport:
    """Profile one simulation; see the module docstring for the passes."""
    # Pass 1: cProfile for function-level hotspots.
    core = _fresh_core(benchmarks, scheduler, max_insns, warmup)
    prof = cProfile.Profile()
    prof.enable()
    core.run(max_insns)
    prof.disable()
    rows = [
        Hotspot(
            function=pstats.func_std_string(func),
            calls=nc,
            tottime=tt,
            cumtime=ct,
        )
        for func, (_cc, nc, tt, ct, _callers) in
        pstats.Stats(prof).stats.items()
    ]
    rows.sort(key=lambda h: h.tottime, reverse=True)
    text = io.StringIO()
    pstats.Stats(prof, stream=text).sort_stats("tottime").print_stats(top)

    # Pass 2: undistorted stage breakdown on a fresh core.
    core = _fresh_core(benchmarks, scheduler, max_insns, warmup)
    stage_seconds = install_stage_timers(core)
    perf_counter = time.perf_counter
    t0 = perf_counter()  # repro: noqa[RPR001] — timing the simulator
    stats = core.run(max_insns)
    elapsed = perf_counter() - t0  # repro: noqa[RPR001]
    return ProfileReport(
        cycles=stats.cycles,
        committed=stats.committed_total,
        elapsed_s=elapsed,
        cycles_per_s=stats.cycles / elapsed if elapsed > 0 else 0.0,
        stage_seconds=stage_seconds,
        hotspots=rows[:top],
        stats_text=text.getvalue(),
    )

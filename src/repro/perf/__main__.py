"""``python -m repro.perf`` — simulator throughput tooling.

Usage::

    python -m repro.perf bench                    # best-of-5 cycles/s
    python -m repro.perf bench --json
    python -m repro.perf bench --update-baseline  # rewrite BENCH_sim_speed.json

    python -m repro.perf profile                  # cProfile + stage timers
    python -m repro.perf profile --top 25 --json

    python -m repro.perf gate                     # exit 1 on >15% regression
    python -m repro.perf gate --baseline X --threshold 0.85
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.bench import (
    DEFAULT_INSNS,
    DEFAULT_MIX,
    DEFAULT_REPS,
    DEFAULT_WARMUP,
    GATE_THRESHOLD,
    default_baseline_path,
    dumps_baseline,
    encode_bench_result,
    gate_check,
    load_baseline,
    run_bench,
    write_baseline,
)
from repro.perf.profile import profile_run


def _add_sim_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mix", nargs="+", default=list(DEFAULT_MIX),
                   metavar="BENCH", help="benchmark mix (one per thread)")
    p.add_argument("--scheduler", default="traditional",
                   help="dispatch scheduler (default: traditional)")
    p.add_argument("--insns", type=int, default=DEFAULT_INSNS,
                   help="instructions per thread to simulate")
    p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                   help="functional warmup instructions per thread")


def _cmd_bench(args: argparse.Namespace) -> int:
    result = run_bench(
        benchmarks=tuple(args.mix), scheduler=args.scheduler,
        max_insns=args.insns, warmup=args.warmup, reps=args.reps,
    )
    if args.update_baseline:
        path = (Path(args.baseline) if args.baseline is not None
                else default_baseline_path())
        write_baseline(path, result)
        print(f"baseline written: {path} "
              f"({result.cycles_per_s:,.0f} cycles/s)")
        return 0
    if args.as_json:
        print(dumps_baseline(result), end="")
        return 0
    print(f"mix:       {'+'.join(result.benchmarks)} "
          f"({result.scheduler}, {result.max_insns} insns/thread)")
    print(f"cycles:    {result.cycles}")
    print(f"best rep:  {result.best_elapsed_s * 1e3:.1f} ms "
          f"(of {result.reps})")
    print(f"cycles/s:  {result.cycles_per_s:,.0f}")
    print(f"insns/s:   {result.insns_per_s:,.0f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    report = profile_run(
        benchmarks=tuple(args.mix), scheduler=args.scheduler,
        max_insns=args.insns, warmup=args.warmup, top=args.top,
    )
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    print(f"{report.cycles} cycles in {report.elapsed_s * 1e3:.1f} ms "
          f"({report.cycles_per_s:,.0f} cycles/s)")
    print("\nper-stage wall clock (stepped cycles only):")
    total = sum(report.stage_seconds.values())
    for name, secs in sorted(report.stage_seconds.items(),
                             key=lambda kv: kv[1], reverse=True):
        share = secs / total * 100 if total > 0 else 0.0
        print(f"  {name:<14} {secs * 1e3:8.2f} ms  {share:5.1f}%")
    print("\ncProfile hotspots (tottime):")
    print(report.stats_text)
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    from repro.analysis.common import (
        EXIT_CLEAN,
        EXIT_REGRESSION,
        EXIT_STALE_BASELINE,
        EXIT_USAGE,
    )

    path = (Path(args.baseline) if args.baseline is not None
            else default_baseline_path())
    rebaseline = "python -m repro.perf bench --update-baseline"
    if args.baseline is not None:
        rebaseline += f" --baseline {args.baseline}"
    if not path.exists():
        print(f"error: no baseline {path} (run: {rebaseline})",
              file=sys.stderr)
        return EXIT_USAGE
    baseline = load_baseline(path)
    # A shared CI host can dip below the threshold band for a whole
    # measurement window; re-measure before failing (a real regression
    # is slow in every window, transient contention is not).
    best = None
    for attempt in range(max(args.retries, 0) + 1):
        measured = run_bench(
            benchmarks=baseline.benchmarks, scheduler=baseline.scheduler,
            max_insns=baseline.max_insns, warmup=baseline.warmup,
            reps=args.reps,
        )
        if best is None or measured.cycles_per_s > best.cycles_per_s:
            best = measured
        report = gate_check(best.cycles_per_s, baseline.cycles_per_s,
                            threshold=args.threshold)
        if report.passed:
            break
        if attempt < args.retries:
            print(f"below threshold (ratio {report.ratio:.3f}); "
                  "re-measuring once to rule out host contention",
                  file=sys.stderr)
    measured = best
    # The inverse band: measured speed so far above the blessed number
    # that the gate has lost its teeth (new hardware, or a perf win
    # that was never re-baselined). Advisory unless --fail-stale: CI
    # hosts of different speeds must not fail on a healthy repo.
    stale = report.passed and report.ratio > 1.0 / args.threshold
    if args.as_json:
        print(json.dumps({
            "measured": encode_bench_result(measured),
            "baseline": encode_bench_result(baseline),
            "ratio": round(report.ratio, 4),
            "threshold": report.threshold,
            "passed": report.passed,
            "stale": stale,
        }, indent=2))
    else:
        print(report.render())
    if not report.passed:
        print("accept the new speed deliberately (refreshes the "
              f"baseline):\n  {rebaseline}", file=sys.stderr)
        return EXIT_REGRESSION
    if stale:
        print(f"stale baseline: measured {report.ratio:.2f}x the "
              f"blessed speed; refresh it:\n  {rebaseline}",
              file=sys.stderr)
        if args.fail_stale:
            return EXIT_STALE_BASELINE
    return EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="simulator throughput tooling (see docs/performance.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bench", help="measure cycles/s (best of N reps)")
    _add_sim_args(p)
    p.add_argument("--reps", type=int, default=DEFAULT_REPS)
    p.add_argument("--json", action="store_true", dest="as_json")
    p.add_argument("--update-baseline", action="store_true",
                   help="write the measurement to the baseline file")
    p.add_argument("--baseline", default=None,
                   help="baseline path (default: repo BENCH_sim_speed.json)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("profile",
                       help="cProfile + per-stage wall-clock breakdown")
    _add_sim_args(p)
    p.add_argument("--top", type=int, default=15,
                   help="hotspot rows to report")
    p.add_argument("--json", action="store_true", dest="as_json")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("gate",
                       help="fail when cycles/s regresses vs the baseline")
    p.add_argument("--baseline", default=None,
                   help="baseline path (default: repo BENCH_sim_speed.json)")
    p.add_argument("--threshold", type=float, default=GATE_THRESHOLD,
                   help="minimum measured/baseline ratio (default 0.85)")
    p.add_argument("--reps", type=int, default=DEFAULT_REPS)
    p.add_argument("--retries", type=int, default=1,
                   help="re-measurements before failing (default 1)")
    p.add_argument("--fail-stale", action="store_true",
                   help="exit 3 when the baseline is stale (measured "
                        "speed far above it) instead of just advising")
    p.add_argument("--json", action="store_true", dest="as_json")
    p.set_defaults(func=_cmd_gate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Simulator throughput measurement and the CI regression gate.

``run_bench`` times the same configuration as
``benchmarks/bench_sim_speed.py`` (the 2-thread parser+vortex mix on
the paper machine) and reports the best-of-N cycles/s. The blessed
number lives in ``BENCH_sim_speed.json`` at the repository root;
``gate_check`` compares a fresh measurement against it and fails CI
when throughput drops below :data:`GATE_THRESHOLD` of the baseline
(i.e. regresses by more than 15 %).

The baseline file is written through :func:`encode_bench_result`,
which normalises every number (``int()``/``float()`` coercion plus
fixed rounding for the measured floats) so that encoding a fresh
result and re-encoding a decoded one are byte-identical and the
committed JSON diffs stably across platforms — the same contract as
``repro.exec.cache.encode_job_result``.

Refresh the baseline after deliberate performance work::

    python -m repro.perf bench --update-baseline
"""

from __future__ import annotations

import json
import time  # repro: noqa[RPR001] — the perf harness measures wall clock
from dataclasses import dataclass
from pathlib import Path

from repro.config.presets import paper_machine
from repro.experiments.runner import thread_traces
from repro.pipeline.smt_core import SMTProcessor
from repro.util.encoding import stable_dumps

#: Bench configuration, mirroring benchmarks/bench_sim_speed.py.
DEFAULT_MIX: tuple[str, ...] = ("parser", "vortex")
DEFAULT_INSNS = 4000
DEFAULT_WARMUP = 4000
DEFAULT_REPS = 5

#: CI fails when measured/baseline cycles/s falls below this ratio.
GATE_THRESHOLD = 0.85

#: Decimal places kept for measured floats in the baseline file.
_ROUND_SECONDS = 6
_ROUND_RATES = 1


def default_baseline_path() -> Path:
    """``BENCH_sim_speed.json`` at the repository root (three levels
    above this package in a source checkout)."""
    return Path(__file__).resolve().parents[3] / "BENCH_sim_speed.json"


@dataclass(frozen=True)
class BenchResult:
    """One throughput measurement (best rep of ``reps``)."""

    benchmarks: tuple[str, ...]
    scheduler: str
    max_insns: int
    warmup: int
    reps: int
    cycles: int
    committed: int
    best_elapsed_s: float
    cycles_per_s: float
    insns_per_s: float


def run_bench(
    benchmarks: tuple[str, ...] = DEFAULT_MIX,
    scheduler: str = "traditional",
    max_insns: int = DEFAULT_INSNS,
    warmup: int = DEFAULT_WARMUP,
    reps: int = DEFAULT_REPS,
    fast_forward: bool = True,
) -> BenchResult:
    """Time ``reps`` fresh simulations; returns the best (fastest) rep.

    Only :meth:`SMTProcessor.run` is inside the timed region — trace
    generation and the functional warmup replay are constant setup cost
    shared by every experiment and would dilute the cycle-loop signal.
    """
    if reps < 1:
        raise ValueError(f"reps must be positive, got {reps}")
    cfg = paper_machine(scheduler=scheduler)
    traces = thread_traces(list(benchmarks), max_insns, seed=0, warmup=warmup)
    perf_counter = time.perf_counter
    best = None
    cycles = committed = 0
    for _ in range(reps):
        core = SMTProcessor(cfg, traces, warmup=warmup,
                            fast_forward=fast_forward)
        t0 = perf_counter()  # repro: noqa[RPR001] — timing the simulator
        stats = core.run(max_insns)
        dt = perf_counter() - t0  # repro: noqa[RPR001] — timing the simulator
        if best is None or dt < best:
            best = dt
            cycles = stats.cycles
            committed = stats.committed_total
    assert best is not None and best > 0
    return BenchResult(
        benchmarks=tuple(benchmarks),
        scheduler=scheduler,
        max_insns=max_insns,
        warmup=warmup,
        reps=reps,
        cycles=cycles,
        committed=committed,
        best_elapsed_s=best,
        cycles_per_s=cycles / best,
        insns_per_s=committed / best,
    )


# ----------------------------------------------------------------------
# (de)serialisation — the contract of repro.exec.cache.encode_job_result
# ----------------------------------------------------------------------
def encode_bench_result(result: BenchResult) -> dict[str, object]:
    """Encode a :class:`BenchResult` as the JSON-safe baseline body.

    Every field is coerced to its canonical type and the measured
    floats are rounded to fixed precision, so ``encode(decode(encode(r)))
    == encode(r)`` byte for byte and the committed baseline does not
    churn on float-repr differences across platforms.
    """
    return {
        "benchmarks": [str(b) for b in result.benchmarks],
        "scheduler": str(result.scheduler),
        "max_insns": int(result.max_insns),
        "warmup": int(result.warmup),
        "reps": int(result.reps),
        "cycles": int(result.cycles),
        "committed": int(result.committed),
        "best_elapsed_s": round(float(result.best_elapsed_s), _ROUND_SECONDS),
        "cycles_per_s": round(float(result.cycles_per_s), _ROUND_RATES),
        "insns_per_s": round(float(result.insns_per_s), _ROUND_RATES),
    }


def decode_bench_result(body: dict[str, object]) -> BenchResult:
    """Inverse of :func:`encode_bench_result`."""
    return BenchResult(
        benchmarks=tuple(str(b) for b in body["benchmarks"]),
        scheduler=str(body["scheduler"]),
        max_insns=int(body["max_insns"]),
        warmup=int(body["warmup"]),
        reps=int(body["reps"]),
        cycles=int(body["cycles"]),
        committed=int(body["committed"]),
        best_elapsed_s=float(body["best_elapsed_s"]),
        cycles_per_s=float(body["cycles_per_s"]),
        insns_per_s=float(body["insns_per_s"]),
    )


def dumps_baseline(result: BenchResult) -> str:
    """Canonical on-disk form of the baseline (byte-stable encoder)."""
    return stable_dumps(encode_bench_result(result))


def write_baseline(path: Path, result: BenchResult) -> None:
    path.write_text(dumps_baseline(result), encoding="utf-8")


def load_baseline(path: Path) -> BenchResult:
    return decode_bench_result(json.loads(path.read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# the CI gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GateReport:
    """Outcome of one measurement-vs-baseline comparison."""

    measured_cps: float
    baseline_cps: float
    ratio: float
    threshold: float
    passed: bool

    def render(self) -> str:
        verdict = "OK" if self.passed else "REGRESSION"
        return (
            f"perf gate {verdict}: {self.measured_cps:,.0f} cycles/s "
            f"vs baseline {self.baseline_cps:,.0f} "
            f"(ratio {self.ratio:.3f}, threshold {self.threshold:.2f})"
        )


def gate_check(measured_cps: float, baseline_cps: float,
               threshold: float = GATE_THRESHOLD) -> GateReport:
    """Pass iff ``measured/baseline >= threshold``.

    A zero/absent baseline passes vacuously (ratio ``inf``) so a fresh
    checkout without a blessed number never hard-fails CI.
    """
    ratio = (measured_cps / baseline_cps if baseline_cps > 0
             else float("inf"))
    return GateReport(
        measured_cps=measured_cps,
        baseline_cps=baseline_cps,
        ratio=ratio,
        threshold=threshold,
        passed=ratio >= threshold,
    )

"""Pipeline stage access contracts (the RPR011 declaration layer).

The paper's correctness argument for out-of-order dispatch (§4) is an
argument about *state ownership*: renaming and ROB/LSQ allocation stay
in program order because only the rename stage touches the map table
and free lists, the issue queue may leave program order because only
dispatch inserts into it, and so on. This module turns that prose into
one machine-readable declaration per stage::

    @stage_contract("commit",
                    reads=("core", "config", "instr"),
                    writes=("rob", "lsq", "free_list", ...))
    def _commit(self, cycle):  # repro: hot
        ...

and both enforcement layers consume the *same* declaration:

* :mod:`repro.analysis.flow` verifies, statically, that every attribute
  access in the stage's transitive call closure resolves to a declared
  resource (rule RPR011);
* :mod:`repro.analysis.sanitizer` installs shadow wrappers around the
  cached stage callables that fingerprint every *undeclared* resource
  before and after the stage runs and raise on any mutation.

The decorator itself is free at runtime: it attaches the contract to
the function object and returns the function unchanged, so the cycle
loop never sees an extra frame.

This module must stay dependency-free (stdlib only): it is imported by
``repro.pipeline.smt_core`` at the bottom of the pipeline and by the
analysis layer at the top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Architectural resources a stage contract may name, with the short
#: description used by docs and violation messages.
RESOURCES: dict[str, str] = {
    "iq": "shared issue queue (entries, ready heap, waiter lists)",
    "rob": "per-thread reorder buffers",
    "lsq": "per-thread load/store queues",
    "map_table": "per-thread rename map tables",
    "free_list": "physical register free lists",
    "ready": "physical register ready bits",
    "fu": "functional unit pools",
    "dab": "deadlock-avoidance buffer",
    "watchdog": "deadlock watchdog timer",
    "events": "wakeup/completion event wheels",
    "thread": "ThreadState (fetch index, front-end pipe, dispatch "
              "buffer, icount, stall state)",
    "predictor": "per-thread branch predictors (gshare + BTB)",
    "memory": "cache hierarchy (I/D L1, L2, LRU state)",
    "stats": "PipelineStats counters",
    "instr": "in-flight DynInstr fields",
    "core": "SMTProcessor bookkeeping (seq, cycle, rotations, widths)",
    "config": "frozen MachineConfig knobs",
}

#: Attribute name -> resource. The static pass resolves an attribute
#: chain by scanning its parts left to right and keeping the *last*
#: anchor seen (``ts.rob._entries`` -> rob; ``dones[i].completed`` ->
#: instr), so aggregates hand off to their parts naturally. ``stats``
#: is terminal: ``stats.committed`` is a stats counter, not thread
#: state, so scanning stops there.
ANCHOR_ATTRS: dict[str, str] = {
    # issue queue
    "iq": "iq", "ready_heap": "iq", "waiting": "iq", "occupancy": "iq",
    "occupancy_integral": "iq", "free_slots": "iq",
    # ready bits (shared array, aliased by the IQ as _ready_bits)
    "ready": "ready", "_ready_bits": "ready",
    # ROB / LSQ
    "rob": "rob", "_entries": "rob",
    "lsq": "lsq", "_stores": "lsq",
    # rename state
    "maps": "map_table", "_map": "map_table",
    "int_free": "free_list", "fp_free": "free_list", "_free": "free_list",
    "_base": "free_list",
    # execution resources
    "fu": "fu", "_units": "fu", "issued_per_class": "fu",
    "dab": "dab", "entries": "dab",
    "watchdog": "watchdog",
    "_wake_events": "events", "_done_events": "events",
    # per-thread state
    "threads": "thread", "trace": "thread", "trace_len": "thread",
    "fetch_idx": "thread", "pipe": "thread", "pipe_capacity": "thread",
    "dispatch_buffer": "thread", "icount": "thread",
    "stalled_until": "thread", "wait_branch": "thread",
    "blocked_2op": "thread", "committed": "thread",
    "pending_long_misses": "thread",
    # predictors and memory
    "predictor": "predictor", "gshare": "predictor", "btb": "predictor",
    "hierarchy": "memory", "l1i": "memory", "l1d": "memory", "l2": "memory",
    # statistics (terminal — see above)
    "stats": "stats",
    # core bookkeeping
    "cycle": "core", "_seq": "core", "_last_commit_cycle": "core",
    "_events_fired": "core", "_rotations": "core", "_nrot": "core",
    "policy": "core", "fetch_unit": "core",
    "cfg": "config",
    # in-flight instruction fields (every DynInstr slot)
    "tid": "instr", "seq": "instr", "tseq": "instr", "op": "instr",
    "pc": "instr", "addr": "instr", "taken": "instr", "target": "instr",
    "dest_l": "instr", "src1_l": "instr", "src2_l": "instr",
    "is_load": "instr", "is_store": "instr", "is_branch": "instr",
    "prediction": "instr", "mispredicted": "instr",
    "dest_p": "instr", "old_dest_p": "instr", "src1_p": "instr",
    "src2_p": "instr", "in_iq": "instr", "in_dab": "instr",
    "num_waiting": "instr", "issued": "instr", "completed": "instr",
    "was_ndi_blocked": "instr", "ooo_dispatched": "instr",
    "skipped_ndis": "instr", "ndi_dependent": "instr",
    "fetch_cycle": "instr", "rename_cycle": "instr",
    "dispatch_cycle": "instr", "issue_cycle": "instr",
    "complete_cycle": "instr", "forwarded": "instr", "long_miss": "instr",
}

#: Resources at which chain scanning stops (their attributes are leaf
#: counters, never hand-offs to another structure).
TERMINAL_RESOURCES = frozenset({"stats"})

#: Fallback: methods of these classes operate on this resource when an
#: attribute chain rooted at ``self`` hits no anchor.
CLASS_RESOURCES: dict[str, str] = {
    "SMTProcessor": "core",
    "IssueQueue": "iq",
    "ReorderBuffer": "rob",
    "LoadStoreQueue": "lsq",
    "RenameMapTable": "map_table",
    "FreeList": "free_list",
    "RenameUnit": "core",
    "FunctionalUnitPool": "fu",
    "DeadlockAvoidanceBuffer": "dab",
    "WatchdogTimer": "watchdog",
    "ThreadState": "thread",
    "ThreadPredictor": "predictor",
    "GShare": "predictor",
    "BranchTargetBuffer": "predictor",
    "MemoryHierarchy": "memory",
    "SetAssociativeCache": "memory",
    "FetchUnit": "config",
}

#: Method names that mutate their receiver: a call ``<chain>.m(...)``
#: with ``m`` here is a *write* to the chain's resource. Project
#: methods with observable side effects on their object are listed
#: alongside the stdlib container vocabulary.
MUTATOR_METHODS = frozenset({
    # stdlib containers
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "remove", "clear", "add", "discard", "update", "setdefault",
    "sort", "reverse",
    # project structures
    "insert_slice", "allocate", "release", "reset", "wakeup", "tick",
    "note_dispatch", "try_claim", "access", "access_data", "access_inst",
    "fill", "predict", "resolve", "can_forward", "flush_inflight",
})

#: Instance-dict stage callable -> contract stage name, in ``step()``
#: call order. ``repro.perf`` wraps exactly these attributes with its
#: timers; the sanitizer wraps them with the contract shadow checks.
STAGE_CALLABLES: dict[str, str] = {
    "_commit": "commit",
    "_apply_events": "writeback",
    "_issue": "issue",
    "_dispatch": "dispatch",
    "_rename": "rename",
    "_fetch_cycle": "fetch",
}

#: Stage name -> contract, populated by :func:`stage_contract` at
#: decoration (i.e. module import) time.
STAGE_CONTRACTS: dict[str, "StageContract"] = {}


@dataclass(frozen=True)
class StageContract:
    """Declared state footprint of one pipeline stage."""

    stage: str
    reads: frozenset[str] = field(default_factory=frozenset)
    writes: frozenset[str] = field(default_factory=frozenset)

    @property
    def may_read(self) -> frozenset[str]:
        """Resources the stage may observe (writes imply reads)."""
        return self.reads | self.writes

    def undeclared(self) -> tuple[str, ...]:
        """Resources the stage must not touch at all (sorted)."""
        allowed = self.may_read
        return tuple(sorted(r for r in RESOURCES if r not in allowed))


def stage_contract(stage: str, *, reads: tuple[str, ...] = (),
                   writes: tuple[str, ...] = ()):
    """Declare a pipeline stage's access contract.

    Attaches a :class:`StageContract` to the function as
    ``__stage_contract__``, registers it in :data:`STAGE_CONTRACTS`,
    and returns the function unchanged — zero runtime overhead.
    """
    if stage not in set(STAGE_CALLABLES.values()):
        raise ValueError(f"unknown pipeline stage {stage!r}")
    unknown = (set(reads) | set(writes)) - set(RESOURCES)
    if unknown:
        raise ValueError(
            f"stage {stage!r} names unknown resource(s) "
            f"{sorted(unknown)}; declare them in contracts.RESOURCES"
        )
    contract = StageContract(
        stage=stage, reads=frozenset(reads), writes=frozenset(writes)
    )

    def decorate(fn):
        fn.__stage_contract__ = contract
        STAGE_CONTRACTS[stage] = contract
        return fn

    return decorate

"""Microarchitecture-aware mutation operators over Python ASTs.

Each operator encodes a fault class that has historically produced
*plausible* simulator bugs — the kind that keep the pipeline running
and the stats well-formed while quietly computing the wrong answer:

==============  ========================================================
operator        fault class
==============  ========================================================
cmp-boundary    off-by-one a comparison (``<`` ↔ ``<=``, ``>`` ↔ ``>=``)
                — dispatch-width, IQ-capacity and DAB-size boundary
                checks
cmp-swap        reverse a comparison (``<`` ↔ ``>``, ``<=`` ↔ ``>=``)
                — scheduler-ordering comparators picking the *wrong
                end* of a priority order
stat-drop       delete a counter increment (``x.y += e`` → ``pass``)
                — lost stat/stall attribution
stat-double     double a counter increment (``x.y += e`` →
                ``x.y += 2 * e``) — double-counted events
mod-shift       rotate a modulo by one (``a % b`` → ``(a + 1) % b``)
                — perturbed round-robin rotation / priority order
minmax-swap     swap ``min()`` and ``max()`` — credit clamping and
                width-limiting picks
const-nudge     nudge an integer literal inside a comparison by +1
                — latencies, widths, sizes
lock-drop       delete a ``with <lock>:`` guard (``if True:`` keeps
                the body) — unguarded shared state, the RPR014 class
lock-swap       swap two lock acquisitions in one ``with a, b:`` —
                inverted lock order, the RPR015 deadlock class
==============  ========================================================

The module is deliberately dumb and pure: :func:`proposals_for` says
which ``(operator, slot)`` pairs apply to a single AST node,
:func:`build_mutation` produces the replacement for one of them
(leaving the input node untouched), :func:`sites_for_function`
enumerates every site in a function, and :func:`apply_to_module`
re-locates a site inside a freshly parsed module tree and rewrites it.
Everything is keyed by the node's exact source span, so a site
enumerated from one parse can be applied to another parse of the same
source. Policy — *which* functions to mutate, how to execute mutants,
what counts as a kill — lives in :mod:`repro.analysis.mutate`.
"""

from __future__ import annotations

import ast
import copy
import re
from dataclasses import dataclass

from repro.exec.jobs import hash_payload

#: operator name -> one-line description (rendered in reports/docs).
OPERATORS: dict[str, str] = {
    "cmp-boundary": "off-by-one a comparison (< ↔ <=, > ↔ >=)",
    "cmp-swap": "reverse a comparison's direction (< ↔ >, <= ↔ >=)",
    "stat-drop": "delete a counter increment (x.y += e → pass)",
    "stat-double": "double a counter increment (x.y += e → x.y += 2*e)",
    "mod-shift": "rotate a modulo by one (a % b → (a + 1) % b)",
    "minmax-swap": "swap min() and max()",
    "const-nudge": "nudge an integer literal in a comparison by +1",
    "lock-drop": "delete a lock guard (with lock: body → if True: body)",
    "lock-swap": "swap two lock acquisitions (with a, b: → with b, a:)",
}

_CMP_BOUNDARY: dict[type, type] = {
    ast.Lt: ast.LtE, ast.LtE: ast.Lt, ast.Gt: ast.GtE, ast.GtE: ast.Gt,
}
_CMP_SWAP: dict[type, type] = {
    ast.Lt: ast.Gt, ast.Gt: ast.Lt, ast.LtE: ast.GtE, ast.GtE: ast.LtE,
}

#: Attribute names that mark an ``x.y += e`` statement as a counter
#: update even when the chain does not go through a ``.stats`` hop
#: (stall attribution often lives directly on the unit).
_COUNTER_HINT = re.compile(
    r"(stall|cycle|count|insn|fetch|commit|flush|bubble|issue|"
    r"dispatch|rename|retire|drain|miss|hit|slot|occupanc)"
)

#: Lock-named context managers (``with self._lock:``, ``with
#: _LIVE_LOCK:``) — the concurrency-fault sites. Kept in sync with the
#: races engine's name heuristic.
_LOCKISH_HINT = re.compile(r"(^|_)(lock|mutex)(_|$)", re.IGNORECASE)


def _lockish_item(item: ast.withitem) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return False
    return bool(_LOCKISH_HINT.search(name))


def _span(node: ast.AST) -> tuple[int, int, int, int]:
    """The node's exact source extent — the site's identity."""
    return (node.lineno, node.col_offset,
            node.end_lineno, node.end_col_offset)


def _is_counter_update(node: ast.AugAssign) -> bool:
    if not isinstance(node.op, ast.Add):
        return False
    if not isinstance(node.target, ast.Attribute):
        return False
    names: list[str] = []
    cur: ast.expr = node.target
    while isinstance(cur, ast.Attribute):
        names.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        names.append(cur.id)
    return "stats" in names or bool(_COUNTER_HINT.search(node.target.attr))


def proposals_for(node: ast.AST) -> list[tuple[str, int]]:
    """Every ``(operator, slot)`` applicable to this one node.

    The slot disambiguates multiple applications to the same node: the
    comparator index in a chained comparison, or the operand index for
    constant nudges (0 = left operand, ``i + 1`` = ``comparators[i]``).
    Order is deterministic (operator table order, then slot).
    """
    out: list[tuple[str, int]] = []
    if isinstance(node, ast.Compare):
        for i, cmp_op in enumerate(node.ops):
            if type(cmp_op) in _CMP_BOUNDARY:
                out.append(("cmp-boundary", i))
            if type(cmp_op) in _CMP_SWAP:
                out.append(("cmp-swap", i))
        for i, operand in enumerate((node.left, *node.comparators)):
            if (isinstance(operand, ast.Constant)
                    and type(operand.value) is int):
                out.append(("const-nudge", i))
    elif isinstance(node, ast.AugAssign) and _is_counter_update(node):
        out.append(("stat-drop", 0))
        out.append(("stat-double", 0))
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        out.append(("mod-shift", 0))
    elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("min", "max") and node.args
            and not node.keywords):
        out.append(("minmax-swap", 0))
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        locky = [i for i, item in enumerate(node.items)
                 if _lockish_item(item)]
        if locky:
            out.append(("lock-drop", 0))
        if len(locky) >= 2:
            out.append(("lock-swap", 0))
    return out


def build_mutation(node: ast.AST, op: str, slot: int) -> ast.AST:
    """The mutated replacement for ``node`` under ``(op, slot)``.

    Works on a deep copy — the input tree is never modified — and
    returns a located node ready to substitute in place.
    """
    new = copy.deepcopy(node)
    if op in ("cmp-boundary", "cmp-swap"):
        table = _CMP_BOUNDARY if op == "cmp-boundary" else _CMP_SWAP
        new.ops[slot] = table[type(new.ops[slot])]()
    elif op == "const-nudge":
        operand = (new.left, *new.comparators)[slot]
        operand.value = operand.value + 1
    elif op == "stat-drop":
        return ast.copy_location(ast.Pass(), node)
    elif op == "stat-double":
        new.value = ast.copy_location(
            ast.BinOp(left=ast.Constant(2), op=ast.Mult(), right=new.value),
            new.value,
        )
    elif op == "mod-shift":
        new.left = ast.copy_location(
            ast.BinOp(left=new.left, op=ast.Add(), right=ast.Constant(1)),
            new.left,
        )
    elif op == "minmax-swap":
        new.func.id = "max" if new.func.id == "min" else "min"
    elif op == "lock-drop":
        # ``if True:`` keeps the body a single indented block (one
        # located node, unparses cleanly) while erasing the guard.
        return ast.fix_missing_locations(ast.copy_location(
            ast.If(test=ast.Constant(True), body=new.body, orelse=[]),
            node,
        ))
    elif op == "lock-swap":
        first, second = [i for i, item in enumerate(new.items)
                         if _lockish_item(item)][:2]
        new.items[first], new.items[second] = (
            new.items[second], new.items[first]
        )
    else:
        raise ValueError(f"unknown mutation operator {op!r}")
    return ast.fix_missing_locations(new)


@dataclass(frozen=True)
class MutationSite:
    """One applicable mutation, addressed by source span.

    ``path`` is repository-root-relative (posix), so the content-hash
    id is stable across checkouts and machines.
    """

    path: str
    module: str         # dotted module name, e.g. repro.pipeline.iq
    qual: str           # enclosing function/method qualname
    op: str
    slot: int
    span: tuple[int, int, int, int]
    before: str         # unparsed original sub-node
    after: str          # unparsed mutated sub-node

    @property
    def mutant_id(self) -> str:
        """Deterministic content-hash id of (path, node span, operator)."""
        digest = hash_payload({
            "path": self.path,
            "span": list(self.span),
            "op": self.op,
            "slot": self.slot,
        })
        return f"m{digest[:12]}"

    @property
    def line(self) -> int:
        return self.span[0]

    def spec(self) -> dict[str, object]:
        """JSON-safe form, sufficient to re-apply the mutation."""
        return {
            "id": self.mutant_id,
            "path": self.path,
            "module": self.module,
            "qual": self.qual,
            "op": self.op,
            "slot": self.slot,
            "span": list(self.span),
            "before": self.before,
            "after": self.after,
        }


def sites_for_function(fn_node: ast.AST, path: str, module: str,
                       qual: str) -> list[MutationSite]:
    """Enumerate every mutation site inside one function body."""
    out: list[MutationSite] = []
    for node in ast.walk(fn_node):
        for op, slot in proposals_for(node):
            out.append(MutationSite(
                path=path, module=module, qual=qual, op=op, slot=slot,
                span=_span(node),
                before=ast.unparse(node),
                after=ast.unparse(build_mutation(node, op, slot)),
            ))
    out.sort(key=lambda s: (s.span, s.op, s.slot))
    return out


class SiteNotFound(ValueError):
    """The site's span no longer matches the source being mutated."""


class _Applier(ast.NodeTransformer):
    def __init__(self, span: tuple[int, int, int, int], op: str,
                 slot: int) -> None:
        self.span = span
        self.op = op
        self.slot = slot
        self.matches = 0

    def visit(self, node: ast.AST) -> ast.AST:
        if (getattr(node, "lineno", None) is not None
                and _span(node) == self.span
                and (self.op, self.slot) in proposals_for(node)):
            self.matches += 1
            return build_mutation(node, self.op, self.slot)
        return self.generic_visit(node)


def apply_to_module(tree: ast.Module, spec: dict[str, object]) -> ast.Module:
    """Rewrite ``tree`` in place with the mutation described by ``spec``.

    The site must match exactly once; anything else means the source
    has drifted since enumeration and raises :class:`SiteNotFound`.
    """
    span = tuple(int(x) for x in spec["span"])
    applier = _Applier(span, str(spec["op"]), int(spec["slot"]))
    new_tree = applier.visit(tree)
    if applier.matches != 1:
        raise SiteNotFound(
            f"mutation site {spec.get('id', '?')} matched "
            f"{applier.matches} node(s) at span {span} in {spec['path']}"
        )
    return ast.fix_missing_locations(new_tree)

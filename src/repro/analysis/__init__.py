"""Correctness tooling for the reproduction (`repro.analysis`).

Two cooperating layers guard the invariants the paper's claims rest on
(renaming/ROB/LSQ allocation stay in program order while dispatch goes
out of order, one-comparator IQ entries never wait on two tags, the
deadlock-avoidance buffer guarantees forward progress):

* :mod:`repro.analysis.lint` — a custom per-file AST lint pass with
  simulator-specific rules (``python -m repro.analysis lint src/repro``),
  each with an error code, ``# repro: noqa[CODE]`` suppression and a
  machine-readable ``--json`` output;
* :mod:`repro.analysis.flow` — a whole-program pass over the same tree
  (``python -m repro.analysis flow src/repro``) that builds a project
  call graph and checks the *interprocedural* rules: transitive hot
  closure (RPR009), determinism taint (RPR010), stage access contracts
  (RPR011) and worker fork/pickle safety (RPR012);
* :mod:`repro.analysis.races` — a whole-program *concurrency* pass
  (``python -m repro.analysis races src/repro``) layered on the same
  call graph: it infers execution contexts (main/thread/async/
  handler/fork), computes interprocedural locksets, and checks
  Eraser-style lockset consistency (RPR014), lock-order cycles
  (RPR015), fork safety (RPR016) and await-atomicity (RPR017);
* :mod:`repro.analysis.contracts` — the ``@stage_contract`` declarations
  naming which architectural state each pipeline stage may read and
  write, consumed by the flow pass statically and the sanitizer
  dynamically;
* :mod:`repro.analysis.sanitizer` — a runtime pipeline sanitizer that,
  when enabled via ``MachineConfig.sanitize=True``, re-validates the
  microarchitectural invariants every ``sanitize_interval`` cycles inside
  the :class:`~repro.pipeline.smt_core.SMTProcessor` cycle loop and
  raises a structured :class:`~repro.analysis.sanitizer.SanitizerViolation`
  naming the invariant, cycle, thread and instruction.

See ``docs/analysis.md`` for the rule/invariant catalogue.
"""

from __future__ import annotations

from repro.analysis.contracts import (
    STAGE_CONTRACTS,
    StageContract,
    stage_contract,
)
from repro.analysis.flow import FLOW_RULES, flow_paths
from repro.analysis.lint import LINT_RULES, Violation, lint_paths, lint_source
from repro.analysis.races import RACES_RULES, races_paths
from repro.analysis.sanitizer import (
    INVARIANTS,
    PipelineSanitizer,
    SanitizerViolation,
)

__all__ = [
    "LINT_RULES",
    "FLOW_RULES",
    "RACES_RULES",
    "Violation",
    "lint_paths",
    "lint_source",
    "flow_paths",
    "races_paths",
    "STAGE_CONTRACTS",
    "StageContract",
    "stage_contract",
    "INVARIANTS",
    "PipelineSanitizer",
    "SanitizerViolation",
]

"""Correctness tooling for the reproduction (`repro.analysis`).

Two cooperating layers guard the invariants the paper's claims rest on
(renaming/ROB/LSQ allocation stay in program order while dispatch goes
out of order, one-comparator IQ entries never wait on two tags, the
deadlock-avoidance buffer guarantees forward progress):

* :mod:`repro.analysis.lint` — a custom AST lint pass with
  simulator-specific rules (``python -m repro.analysis lint src/repro``),
  each with an error code, ``# repro: noqa[CODE]`` suppression and a
  machine-readable ``--json`` output;
* :mod:`repro.analysis.sanitizer` — a runtime pipeline sanitizer that,
  when enabled via ``MachineConfig.sanitize=True``, re-validates the
  microarchitectural invariants every ``sanitize_interval`` cycles inside
  the :class:`~repro.pipeline.smt_core.SMTProcessor` cycle loop and
  raises a structured :class:`~repro.analysis.sanitizer.SanitizerViolation`
  naming the invariant, cycle, thread and instruction.

See ``docs/analysis.md`` for the rule/invariant catalogue.
"""

from __future__ import annotations

from repro.analysis.lint import LINT_RULES, Violation, lint_paths, lint_source
from repro.analysis.sanitizer import (
    INVARIANTS,
    PipelineSanitizer,
    SanitizerViolation,
)

__all__ = [
    "LINT_RULES",
    "Violation",
    "lint_paths",
    "lint_source",
    "INVARIANTS",
    "PipelineSanitizer",
    "SanitizerViolation",
]

"""``python -m repro.analysis`` — CLI front door for the lint pass."""

from __future__ import annotations

import os
import sys

from repro.analysis.lint import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Stdout was closed early (e.g. `lint --json | head`); exit
        # quietly like a well-behaved Unix filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)

"""Whole-program flow analysis: rules RPR009-RPR013.

The per-file lint pass (:mod:`repro.analysis.lint`) cannot see
properties that only emerge *across* modules: a helper called from a
``# repro: hot`` loop that allocates on every cycle, a wall-clock read
laundered through two layers of utility functions into simulation
code, or a pipeline stage quietly touching architectural state it does
not own. This module parses every module under the given roots once,
builds a project-wide symbol table and call graph — resolving imports,
methods by class-attribute lookup (a name-based CHA), local aliases of
bound methods (``fetch_thread = self._fetch_thread``) and the
instance-attribute callables the perf layer wraps
(``self._fetch_cycle = self.fetch_unit.fetch_cycle``) — and runs five
interprocedural rules on top of it:

========  ==============================================================
code      rule
========  ==============================================================
RPR009    transitive hot closure — every function reachable from a
          ``# repro: hot`` site inherits hotness, so per-cycle
          container allocations hiding in callees are flagged (the
          RPR008 vocabulary, applied across call edges). A
          ``# repro: noqa[RPR009]`` on a *call* line prunes that edge
          from the closure (e.g. the interval-amortised sanitizer
          check); on an *allocation* line it suppresses the finding
RPR010    determinism taint — wall-clock/entropy/unseeded-RNG sources
          (``time.*``, ``os.urandom``, ``uuid.uuid4``, bare
          ``random``) propagate callee-to-caller through the call
          graph; flagged at every call edge where simulation code
          (the ``repro`` sub-packages in ``common.SIM_PACKAGES``)
          reaches a tainted helper outside it. A deliberate
          wall-clock site blessed with ``noqa[RPR001]`` still seeds
          taint — laundering through a helper is exactly what this
          rule exists to catch; only ``noqa[RPR010]`` on the source
          line kills the seed
RPR011    stage access contracts — each ``@stage_contract`` declared
          in :mod:`repro.analysis.contracts` is verified statically:
          every attribute access in the stage's transitive call
          closure must resolve to a declared resource (writes within
          ``writes``, reads within ``reads | writes``). The runtime
          sanitizer enforces the *same* declarations dynamically
RPR012    fork/pickle safety — arguments shipped to ``repro.exec``
          workers (``SimJob(...)`` payloads, ``execute_jobs`` calls)
          must not contain lambdas, functions nested inside another
          function, or handle-holding objects (open files, locks,
          sockets, subprocesses): they either fail to pickle or
          silently duplicate OS state across ``fork()``
RPR013    async-handler blocking I/O — no blocking call
          (``time.sleep``, synchronous sockets/subprocesses, eager
          ``Path`` file I/O) may be *transitively* reachable from an
          ``async def`` in the sweep service (:mod:`repro.serve`): a
          blocked event loop stalls every worker link and heartbeat at
          once. The journal's fsync'd appends and the cache's atomic
          writes are exempt — their synchronous durability *is* the
          replication-log contract. A ``# repro: noqa[RPR013]`` on a
          call line prunes that edge from the closure; on the blocking
          line it suppresses the finding
========  ==============================================================

Usage::

    python -m repro.analysis flow src/repro
    python -m repro.analysis flow src/repro --json
    python -m repro.analysis flow src/repro --baseline results/flow_baseline.json
    python -m repro.analysis flow src/repro --update-baseline

Suppression is the lint pass's ``# repro: noqa[CODE]`` comment, at the
lines described above. Deliberate findings that predate the rule can
instead live in ``results/flow_baseline.json`` (written byte-stably by
``--update-baseline``); the CLI applies the committed baseline by
default so gradual adoption never blocks CI.
"""

from __future__ import annotations

import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.common import (
    CYCLE_LOOP_FILES,
    EXIT_CLEAN,
    EXIT_REGRESSION,
    EXIT_STALE_BASELINE,
    EXIT_USAGE,
    SIM_PACKAGES,
    TAINT_SOURCE_CALLS,
    filter_by_code,
    iter_python_files,
    parse_codes,
    restrict_to_changed,
)
from repro.analysis.contracts import (
    ANCHOR_ATTRS,
    CLASS_RESOURCES,
    MUTATOR_METHODS,
    RESOURCES,
    TERMINAL_RESOURCES,
)
from repro.analysis.lint import (
    Violation,
    _dotted,
    _hot_lines,
    _noqa_map,
    is_hot_def,
    iter_container_allocations,
)
from repro.util.encoding import stable_dumps

#: code -> one-line description (kept in sync with docs/analysis.md).
FLOW_RULES: dict[str, str] = {
    "RPR009": "per-cycle allocation in the transitive hot closure",
    "RPR010": "wall-clock/entropy taint reaches simulation code",
    "RPR011": "pipeline stage touches state outside its @stage_contract",
    "RPR012": "unpicklable/fork-unsafe payload shipped to exec workers",
    "RPR013": "blocking I/O reachable from async sweep-service handlers",
}

#: Call targets that block the calling thread (RPR013 seeds). Matched
#: against the import-resolved canonical name, so ``from time import
#: sleep as _sleep`` is still caught.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "select.select",
    "socket.socket", "socket.create_connection", "socket.socketpair",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.wait", "os.waitpid",
})

#: Blocking *method* names (eager whole-file I/O on Path-likes); the
#: receiver is usually a local variable, so these match by suffix.
_BLOCKING_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
})

#: Modules whose synchronous I/O is sanctioned even inside the async
#: closure: the journal's fsync'd appends and the cache's atomic writes
#: ARE the durability contract the service is built on (they run
#: bounded, local file operations — never the network).
_ASYNC_EXEMPT_SUFFIXES = ("exec/journal.py", "exec/cache.py")

#: Call targets whose arguments cross the worker fork/pickle boundary.
_SHIP_CALLS = frozenset({"SimJob", "execute_jobs"})

#: Constructors of objects that hold OS handles (RPR012).
_HANDLE_CTORS = frozenset({
    "open", "socket.socket", "threading.Lock", "threading.RLock",
    "threading.Event", "threading.Condition", "threading.Semaphore",
    "sqlite3.connect", "subprocess.Popen",
})

#: Depth bound for alias-chain expansion (cycles are also guarded by a
#: visited set; the bound caps pathological chains).
_ALIAS_DEPTH = 8

#: Stdlib container vocabulary. Name-based CHA is too eager for these:
#: ``stores.get(addr)`` on a plain dict must not resolve to
#: ``ResultCache.get``. A generic-named call only reaches a project
#: method when the receiver's resource matches the candidate class's
#: resource (see :meth:`_FuncScanner._cha_edges`).
_GENERIC_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "remove", "clear", "add", "discard", "update", "setdefault",
    "sort", "reverse", "get", "keys", "values", "items", "copy",
})


# ----------------------------------------------------------------------
# symbol table
# ----------------------------------------------------------------------
@dataclass
class FuncInfo:
    """One function or method in the analysed tree."""

    uid: str            # "<rel path>:<qualname>"
    rel: str            # path relative to its root (posix)
    path: str           # path as given on the command line
    module: "ModuleInfo"
    name: str
    qual: str           # Class.method / func / outer.<locals>.inner
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    hot: bool
    nested: dict[str, "FuncInfo"] = field(default_factory=dict)
    # filled by the scan pass:
    edges: list[tuple["FuncInfo", int]] = field(default_factory=list)
    accesses: list[tuple[str, bool, int, int]] = field(
        default_factory=list
    )  # (resource, is_write, line, col)
    taint_seeds: list[tuple[str, int]] = field(default_factory=list)
    blocking_seeds: list[tuple[str, int]] = field(default_factory=list)
    contract: tuple[str, frozenset[str], frozenset[str]] | None = None


@dataclass
class ModuleInfo:
    """One parsed module."""

    path: str
    rel: str
    dotted: str
    tree: ast.Module
    noqa: dict[int, frozenset[str] | None]
    hot_lines: frozenset[int]
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    classes: dict[str, dict[str, FuncInfo]] = field(default_factory=dict)
    class_attr_aliases: dict[str, dict[str, list[ast.expr]]] = field(
        default_factory=dict
    )

    @property
    def is_sim(self) -> bool:
        parts = self.rel.split("/")
        return (
            any(p in SIM_PACKAGES for p in parts[:-1])
            or self.rel.endswith(CYCLE_LOOP_FILES)
        )


class Project:
    """The whole-program symbol table and call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}        # rel -> module
        self.by_dotted: dict[str, ModuleInfo] = {}
        self.methods_by_name: dict[str, list[FuncInfo]] = {}
        self.funcs: dict[str, FuncInfo] = {}
        self.parse_errors: list[Violation] = []

    # -- construction ---------------------------------------------------
    def add_source(self, source: str, path: str, rel: str,
                   dotted: str) -> None:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_errors.append(Violation(
                path=path, line=exc.lineno or 1, col=exc.offset or 0,
                code="RPR000", message=f"syntax error: {exc.msg}",
            ))
            return
        mod = ModuleInfo(
            path=path, rel=rel, dotted=dotted, tree=tree,
            noqa=_noqa_map(source), hot_lines=_hot_lines(source),
        )
        self.modules[rel] = mod
        self.by_dotted[dotted] = mod
        self._collect_imports(mod)
        self._collect_defs(mod)

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        mod.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    pkg = mod.dotted.split(".")
                    pkg = pkg[:len(pkg) - node.level]
                    base = ".".join(pkg + ([base] if base else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    mod.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_defs(self, mod: ModuleInfo) -> None:
        def add_func(node, cls: str | None, qual: str,
                     owner: FuncInfo | None) -> FuncInfo:
            info = FuncInfo(
                uid=f"{mod.rel}:{qual}", rel=mod.rel, path=mod.path,
                module=mod, name=node.name, qual=qual, cls=cls,
                node=node, hot=is_hot_def(node, mod.hot_lines),
            )
            info.contract = _contract_from_decorators(node)
            self.funcs[info.uid] = info
            mod.functions[qual] = info
            if cls is not None and owner is None:
                self.methods_by_name.setdefault(node.name, []).append(info)
                mod.classes[cls][node.name] = info
            if owner is not None:
                owner.nested[node.name] = info
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    add_func(stmt, cls, f"{qual}.<locals>.{stmt.name}",
                             info)
            return info

        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_func(stmt, None, stmt.name, None)
            elif isinstance(stmt, ast.ClassDef):
                mod.classes[stmt.name] = {}
                aliases = mod.class_attr_aliases.setdefault(stmt.name, {})
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        add_func(sub, stmt.name,
                                 f"{stmt.name}.{sub.name}", None)
                # self.<attr> = <expr> assignments anywhere in the class
                # body: the instance-attribute callables (fetch policy,
                # cached stage methods) resolve through these.
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign):
                        targets, value = sub.targets, sub.value
                    elif (isinstance(sub, ast.AnnAssign)
                            and sub.value is not None):
                        targets, value = [sub.target], sub.value
                    else:
                        continue
                    for tgt in targets:
                        if (
                            isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                        ):
                            aliases.setdefault(tgt.attr, []).append(
                                value
                            )

    # -- lookups --------------------------------------------------------
    def resolve_module(self, dotted: str) -> ModuleInfo | None:
        mod = self.by_dotted.get(dotted)
        if mod is not None:
            return mod
        suffix = "." + dotted
        for name in sorted(self.by_dotted):
            if name.endswith(suffix):
                return self.by_dotted[name]
        return None

    def resolve_symbol(self, origin: str) -> FuncInfo | None:
        """Resolve a dotted import origin to a project function.

        ``pkg.mod.func`` hits the module-level function; ``pkg.mod.Cls``
        hits ``Cls.__init__`` when defined (class instantiation).
        """
        if "." not in origin:
            return None
        mod_name, sym = origin.rsplit(".", 1)
        mod = self.resolve_module(mod_name)
        if mod is None:
            return None
        fn = mod.functions.get(sym)
        if fn is not None:
            return fn
        methods = mod.classes.get(sym)
        if methods is not None:
            return methods.get("__init__")
        return None

    def cha(self, method: str) -> list[FuncInfo]:
        """All project methods with this name (name-based CHA)."""
        return self.methods_by_name.get(method, [])


def _contract_from_decorators(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[str, frozenset[str], frozenset[str]] | None:
    """Statically read a ``@stage_contract(...)`` decorator."""
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = _dotted(dec.func) or ""
        if name.rsplit(".", 1)[-1] != "stage_contract":
            continue
        if not dec.args or not isinstance(dec.args[0], ast.Constant):
            continue
        stage = str(dec.args[0].value)
        reads: frozenset[str] = frozenset()
        writes: frozenset[str] = frozenset()
        for kw in dec.keywords:
            if not isinstance(kw.value, (ast.Tuple, ast.List, ast.Set)):
                continue
            names = frozenset(
                str(e.value) for e in kw.value.elts
                if isinstance(e, ast.Constant)
            )
            if kw.arg == "reads":
                reads = names
            elif kw.arg == "writes":
                writes = names
        return stage, reads, writes
    return None


# ----------------------------------------------------------------------
# per-function scanning: aliases, accesses, call edges, taint seeds
# ----------------------------------------------------------------------
def _collect_aliases(fn: FuncInfo) -> dict[str, list[ast.expr]]:
    """Local name -> candidate defining expressions (flow-insensitive)."""
    aliases: dict[str, list[ast.expr]] = {}
    for stmt in ast.walk(fn.node):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt is not fn.node:
                continue
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                     ast.Name):
                aliases.setdefault(stmt.targets[0].id, []).append(
                    stmt.value
                )
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                aliases.setdefault(stmt.target.id, []).append(stmt.value)
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.target, ast.Name):
                # The loop variable belongs to the iterated container's
                # resource (an element of it).
                aliases.setdefault(stmt.target.id, []).append(stmt.iter)
    return aliases


class _Chainer:
    """Expands expressions into attribute chains through local aliases."""

    def __init__(self, aliases: dict[str, list[ast.expr]]) -> None:
        self.aliases = aliases

    def chains(self, expr: ast.expr, _depth: int = 0,
               _visiting: frozenset[str] = frozenset(),
               ) -> list[tuple[str, tuple[str, ...]]]:
        """All ``(base, attr_parts)`` chains ``expr`` may denote."""
        if _depth > _ALIAS_DEPTH:
            return []
        if isinstance(expr, ast.Name):
            if expr.id in self.aliases and expr.id not in _visiting:
                out = []
                seen = _visiting | {expr.id}
                for defn in self.aliases[expr.id]:
                    out.extend(self.chains(defn, _depth + 1, seen))
                if out:
                    return out
            return [(expr.id, ())]
        if isinstance(expr, ast.Attribute):
            return [
                (base, parts + (expr.attr,))
                for base, parts in self.chains(expr.value, _depth + 1,
                                               _visiting)
            ]
        if isinstance(expr, ast.Subscript):
            # Element access: same resource as the container.
            return self.chains(expr.value, _depth + 1, _visiting)
        if isinstance(expr, ast.Call):
            # The result of ``X.m(...)`` belongs to X's resource (e.g.
            # ``events.pop(cycle)`` hands out events contents). A call
            # on a bare name has no chain.
            out = []
            for base, parts in self.chains(expr.func, _depth + 1,
                                           _visiting):
                if len(parts) >= 2:
                    out.append((base, parts[:-1]))
            return out
        if isinstance(expr, ast.IfExp):
            return (self.chains(expr.body, _depth + 1, _visiting)
                    + self.chains(expr.orelse, _depth + 1, _visiting))
        if isinstance(expr, ast.BoolOp):
            out = []
            for v in expr.values:
                out.extend(self.chains(v, _depth + 1, _visiting))
            return out
        if isinstance(expr, (ast.NamedExpr,)):
            return self.chains(expr.value, _depth + 1, _visiting)
        return []


def _resolve_resource(base: str, parts: tuple[str, ...],
                      cls: str | None) -> str | None:
    """Map one attribute chain to a contract resource (or None)."""
    res = ANCHOR_ATTRS.get(base) if base != "self" else None
    if res in TERMINAL_RESOURCES:
        return res
    for p in parts:
        anchor = ANCHOR_ATTRS.get(p)
        if anchor is not None:
            res = anchor
            if res in TERMINAL_RESOURCES:
                break
    if res is not None:
        return res
    if base == "self" and cls is not None:
        return CLASS_RESOURCES.get(cls)
    return None


def _canonical_call(expr: ast.expr, mod: ModuleInfo) -> str | None:
    """Dotted call target with its first segment resolved via imports."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = mod.imports.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


class _FuncScanner(ast.NodeVisitor):
    """One pass over a function body: accesses, edges, taint seeds."""

    def __init__(self, project: Project, fn: FuncInfo) -> None:
        self.project = project
        self.fn = fn
        self.mod = fn.module
        self.chainer = _Chainer(_collect_aliases(fn))
        self._access_seen: set[tuple[str, bool, int, int]] = set()
        self._edge_seen: set[tuple[str, int]] = set()

    def run(self) -> None:
        for stmt in self.fn.node.body:
            self.visit(stmt)

    # -- recording ------------------------------------------------------
    def _record(self, node: ast.AST, expr: ast.expr, write: bool) -> None:
        for base, parts in self.chainer.chains(expr):
            res = _resolve_resource(base, parts, self.fn.cls)
            if res is None:
                continue
            key = (res, write, getattr(node, "lineno", 1),
                   getattr(node, "col_offset", 0))
            if key not in self._access_seen:
                self._access_seen.add(key)
                self.fn.accesses.append(key)

    def _edge(self, callee: FuncInfo | None, node: ast.AST) -> None:
        if callee is None:
            return
        key = (callee.uid, getattr(node, "lineno", 1))
        if key not in self._edge_seen:
            self._edge_seen.add(key)
            self.fn.edges.append((callee, key[1]))

    # -- skip nested scopes (they are their own FuncInfo) ---------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    # -- assignments ----------------------------------------------------
    def _write_target(self, node: ast.AST, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_target(node, elt)
            return
        if isinstance(target, ast.Starred):
            self._write_target(node, target.value)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._record(target, target, write=True)
            self._visit_spine_children(target)
        # A bare Name target is a local rebind, not a resource write.

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._write_target(node, target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._write_target(node, node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._write_target(node, node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._write_target(node, target)

    # -- loads ----------------------------------------------------------
    def _visit_spine_children(self, node: ast.expr) -> None:
        """Visit the non-chain children along an attribute spine
        (subscript indices, call arguments)."""
        while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
            if isinstance(node, ast.Subscript):
                self.visit(node.slice)
                node = node.value
            elif isinstance(node, ast.Call):
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                node = node.func
            else:
                node = node.value

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._record(node, node, write=False)
        self._visit_spine_children(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._record(node, node, write=False)
        self._visit_spine_children(node)

    def visit_Name(self, node: ast.Name) -> None:
        # A bare name only touches a resource through an alias.
        if node.id in self.chainer.aliases:
            self._record(node, node, write=False)

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._handle_call(node)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _handle_call(self, node: ast.Call) -> None:
        func = node.func
        canonical = _canonical_call(func, self.mod)
        if canonical is not None and _is_taint_source(canonical):
            self.fn.taint_seeds.append((canonical, node.lineno))
        if canonical is not None and (
            canonical in _BLOCKING_CALLS
            or canonical.rsplit(".", 1)[-1] in _BLOCKING_METHODS
        ):
            self.fn.blocking_seeds.append((canonical, node.lineno))
        if isinstance(func, ast.Attribute):
            method = func.attr
            # Receiver resource: a mutator call writes it.
            write = method in MUTATOR_METHODS
            for base, parts in self.chainer.chains(func.value):
                res = _resolve_resource(base, parts, self.fn.cls)
                if res is not None:
                    key = (res, write, node.lineno, node.col_offset)
                    if key not in self._access_seen:
                        self._access_seen.add(key)
                        self.fn.accesses.append(key)
            self._resolve_method_call(node, func)
            self._visit_spine_children(func.value)
            if isinstance(func.value, ast.Name):
                self.visit_Name(func.value)
        elif isinstance(func, ast.Name):
            self._resolve_name_call(node, func.id)
        else:
            self.visit(func)

    def _resolve_method_call(self, node: ast.Call,
                             func: ast.Attribute) -> None:
        method = func.attr
        base = func.value
        # Module-qualified call through an import: exact resolution.
        if isinstance(base, ast.Name) and base.id in self.mod.imports:
            origin = f"{self.mod.imports[base.id]}.{method}"
            target = self.project.resolve_symbol(origin)
            if target is not None:
                self._edge(target, node)
                return
            if self.project.resolve_module(
                self.mod.imports[base.id]
            ) is None:
                return  # external module: no edge
        if isinstance(base, ast.Name) and base.id == "self":
            cls = self.fn.cls
            if cls is not None:
                own = self.mod.classes.get(cls, {}).get(method)
                if own is not None:
                    self._edge(own, node)
                    return
                for target in self._class_attr_targets(cls, method):
                    self._edge(target, node)
                if self.mod.class_attr_aliases.get(cls, {}).get(method):
                    return
        self._cha_edges(node, method, self._receiver_resources(base))

    def _receiver_resources(self, base: ast.expr) -> set[str]:
        """Resources the call receiver may resolve to (for CHA typing)."""
        out: set[str] = set()
        for b, parts in self.chainer.chains(base):
            res = _resolve_resource(b, parts, self.fn.cls)
            if res is not None:
                out.add(res)
        return out

    def _cha_edges(self, node: ast.AST, method: str,
                   recv: set[str]) -> None:
        """Name-based CHA, typed by the receiver's resolved resource:
        a candidate from a class mapped to a different resource is a
        name collision, not a call target; a generic container method
        resolves only to same-resource classes (a plain list/dict
        receiver has no project edges at all)."""
        generic = method in _GENERIC_METHODS
        for target in self.project.cha(method):
            cls_res = CLASS_RESOURCES.get(target.cls)
            if recv:
                if cls_res is not None:
                    if cls_res not in recv:
                        continue
                elif generic:
                    continue
            elif generic:
                continue
            self._edge(target, node)

    def _class_attr_targets(self, cls: str, attr: str) -> list[FuncInfo]:
        """Resolve ``self.<attr>(...)`` through ``self.<attr> = <expr>``
        assignments collected from the class body."""
        out: list[FuncInfo] = []
        for expr in self.mod.class_attr_aliases.get(cls, {}).get(attr, ()):
            for leaf in _leaf_exprs(expr):
                if isinstance(leaf, ast.Name):
                    target = self._name_target(leaf.id)
                    if target is not None:
                        out.append(target)
                elif isinstance(leaf, ast.Attribute):
                    out.extend(self.project.cha(leaf.attr))
        return out

    def _name_target(self, name: str) -> FuncInfo | None:
        fn = self.fn.nested.get(name)
        if fn is not None:
            return fn
        origin = self.mod.imports.get(name)
        if origin is not None:
            return self.project.resolve_symbol(origin)
        target = self.mod.functions.get(name)
        if target is not None:
            return target
        methods = self.mod.classes.get(name)
        if methods is not None:
            return methods.get("__init__")
        return None

    def _resolve_name_call(self, node: ast.Call, name: str) -> None:
        if name in ("heappush", "heappop", "heapify"):
            # heapq mutates its first argument in place.
            if node.args:
                self._record(node, node.args[0], write=True)
            return
        if name in self.chainer.aliases:
            # Bound method hoisted into a local: resolve like a method
            # call through the alias chains.
            for base, parts in self.chainer.chains(
                ast.Name(id=name, ctx=ast.Load())
            ):
                if not parts:
                    continue
                method = parts[-1]
                res = _resolve_resource(base, parts[:-1], self.fn.cls)
                if res is not None:
                    write = method in MUTATOR_METHODS
                    key = (res, write, node.lineno, node.col_offset)
                    if key not in self._access_seen:
                        self._access_seen.add(key)
                        self.fn.accesses.append(key)
                if base == "self" and self.fn.cls is not None:
                    own = self.mod.classes.get(self.fn.cls, {}).get(method)
                    if own is not None:
                        self._edge(own, node)
                        continue
                    targets = self._class_attr_targets(self.fn.cls, method)
                    if targets:
                        for target in targets:
                            self._edge(target, node)
                        continue
                self._cha_edges(node, method,
                                set() if res is None else {res})
            return
        self._edge(self._name_target(name), node)


def _leaf_exprs(expr: ast.expr) -> list[ast.expr]:
    """Unfold conditional expressions to their leaves."""
    if isinstance(expr, ast.IfExp):
        return _leaf_exprs(expr.body) + _leaf_exprs(expr.orelse)
    if isinstance(expr, ast.BoolOp):
        out: list[ast.expr] = []
        for v in expr.values:
            out.extend(_leaf_exprs(v))
        return out
    return [expr]


def _is_taint_source(canonical: str) -> bool:
    return (
        canonical in TAINT_SOURCE_CALLS
        or canonical.startswith("random.")
    )


# ----------------------------------------------------------------------
# the four rules
# ----------------------------------------------------------------------
def _edge_suppressed(fn: FuncInfo, line: int, code: str) -> bool:
    codes = fn.module.noqa.get(line, frozenset())
    return codes is None or code in codes


def _closure(project: Project, seeds: list[FuncInfo], code: str,
             ) -> dict[str, tuple[FuncInfo, str | None]]:
    """BFS over call edges from ``seeds``; ``noqa[code]`` on a call
    line prunes that edge. Returns uid -> (func, provenance chain)."""
    reached: dict[str, tuple[FuncInfo, str | None]] = {
        s.uid: (s, s.qual) for s in seeds
    }
    frontier = list(seeds)
    while frontier:
        fn = frontier.pop()
        chain = reached[fn.uid][1]
        for callee, line in fn.edges:
            if callee.uid in reached:
                continue
            if _edge_suppressed(fn, line, code):
                continue
            reached[callee.uid] = (callee, f"{chain} -> {callee.qual}")
            frontier.append(callee)
    return reached


def _check_hot_closure(project: Project) -> list[Violation]:
    """RPR009: allocations in functions transitively reachable from a
    ``# repro: hot`` marker."""
    seeds = [fn for fn in project.funcs.values() if fn.hot]
    reached = _closure(project, seeds, "RPR009")
    out: list[Violation] = []
    for fn, chain in reached.values():
        if fn.hot:
            continue  # RPR008 already covers marker-carrying functions
        for sub, kind in iter_container_allocations(fn.node):
            out.append(Violation(
                path=fn.path, line=sub.lineno, col=sub.col_offset,
                code="RPR009",
                message=(
                    f"{kind} in {fn.qual}() allocates every simulated "
                    f"cycle — the function is hot via {chain}; hoist "
                    "the allocation, prune the call edge, or mark "
                    "'# repro: noqa[RPR009] — why'"
                ),
            ))
    return out


def _check_taint(project: Project) -> list[Violation]:
    """RPR010: determinism taint propagated callee-to-caller."""
    # Seed functions: direct wall-clock/entropy/bare-random callers.
    # noqa[RPR010] on the source line kills the seed; noqa[RPR001]
    # does not (see the module docstring).
    tainted: dict[str, str] = {}  # uid -> provenance description
    frontier: list[FuncInfo] = []
    for fn in project.funcs.values():
        for canonical, line in fn.taint_seeds:
            if _edge_suppressed(fn, line, "RPR010"):
                continue
            tainted[fn.uid] = f"{fn.qual}() calls {canonical}()"
            frontier.append(fn)
            break
    # Reverse adjacency, then propagate to callers.
    callers: dict[str, list[FuncInfo]] = {}
    for fn in project.funcs.values():
        for callee, _line in fn.edges:
            callers.setdefault(callee.uid, []).append(fn)
    while frontier:
        fn = frontier.pop()
        for caller in callers.get(fn.uid, ()):
            if caller.uid in tainted:
                continue
            tainted[caller.uid] = f"{caller.qual}() -> {tainted[fn.uid]}"
            frontier.append(caller)
    # Findings: the frontier edges where simulation code reaches a
    # tainted function outside the simulation packages.
    out: list[Violation] = []
    for fn in project.funcs.values():
        if not fn.module.is_sim:
            continue
        for callee, line in fn.edges:
            if callee.module.is_sim or callee.uid not in tainted:
                continue
            out.append(Violation(
                path=fn.path, line=line, col=0, code="RPR010",
                message=(
                    f"{fn.qual}() reaches a nondeterministic source "
                    f"through {tainted[callee.uid]}; pass the value in "
                    "explicitly or mark '# repro: noqa[RPR010] — why'"
                ),
            ))
    return out


def _check_contracts(project: Project) -> list[Violation]:
    """RPR011: every access in a stage's closure obeys its contract."""
    out: list[Violation] = []
    for stage_fn in project.funcs.values():
        if stage_fn.contract is None:
            continue
        stage, reads, writes = stage_fn.contract
        may_read = reads | writes
        reached = _closure(project, [stage_fn], "RPR011")
        seen: set[tuple[str, int, str, bool]] = set()
        for fn, _chain in reached.values():
            for res, is_write, line, col in fn.accesses:
                if is_write and res not in writes:
                    key = (fn.path, line, res, True)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(Violation(
                        path=fn.path, line=line, col=col, code="RPR011",
                        message=(
                            f"stage '{stage}' writes '{res}' "
                            f"({RESOURCES.get(res, res)}) in {fn.qual}() "
                            "but its @stage_contract does not declare "
                            "that resource writable; extend the contract "
                            "or mark '# repro: noqa[RPR011] — why'"
                        ),
                    ))
                elif not is_write and res not in may_read:
                    key = (fn.path, line, res, False)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(Violation(
                        path=fn.path, line=line, col=col, code="RPR011",
                        message=(
                            f"stage '{stage}' reads '{res}' "
                            f"({RESOURCES.get(res, res)}) in {fn.qual}() "
                            "outside its @stage_contract; extend the "
                            "contract or mark "
                            "'# repro: noqa[RPR011] — why'"
                        ),
                    ))
    return out


class _ShipScanner(ast.NodeVisitor):
    """RPR012: fork/pickle safety of worker-shipped payloads."""

    def __init__(self, project: Project, mod: ModuleInfo) -> None:
        self.project = project
        self.mod = mod
        self.violations: list[Violation] = []
        self._nested: list[set[str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        inner = {
            s.name for s in ast.walk(node)
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            and s is not node
        }
        self._nested.append(inner)
        self.generic_visit(node)
        self._nested.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        canonical = _canonical_call(node.func, self.mod) or ""
        name = canonical.rsplit(".", 1)[-1]
        if name == "SimJob":
            # Every constructor argument rides to the worker.
            for arg in list(node.args) + [kw.value for kw in
                                          node.keywords]:
                self._check_payload(name, arg)
        elif name == "execute_jobs":
            # Only the job list crosses the boundary; progress/event
            # callbacks stay in the parent process.
            shipped = list(node.args[:1]) + [
                kw.value for kw in node.keywords if kw.arg == "jobs"
            ]
            for arg in shipped:
                self._check_payload(name, arg)
        self.generic_visit(node)

    def _flag(self, node: ast.AST, target: str, what: str) -> None:
        self.violations.append(Violation(
            path=self.mod.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), code="RPR012",
            message=(
                f"{what} in the {target}() payload crosses the "
                "repro.exec fork/pickle boundary; ship plain data "
                "(str/int/tuple/dataclass) or mark "
                "'# repro: noqa[RPR012] — why'"
            ),
        ))

    def _check_payload(self, target: str, arg: ast.expr) -> None:
        nested_names = set().union(*self._nested) if self._nested else set()
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                self._flag(sub, target, "a lambda")
            elif isinstance(sub, ast.Name) and sub.id in nested_names:
                self._flag(sub, target,
                           f"nested function '{sub.id}' (closure)")
            elif isinstance(sub, ast.Call):
                ctor = _canonical_call(sub.func, self.mod)
                if ctor in _HANDLE_CTORS:
                    self._flag(sub, target,
                               f"a handle-holding {ctor}() object")


def _check_async_blocking(project: Project) -> list[Violation]:
    """RPR013: blocking I/O in the transitive closure of the sweep
    service's ``async def`` handlers.

    Seeds are every async function in a ``serve`` package; the closure
    walks the same call graph (and honours the same edge pruning) as
    RPR009-RPR011. Callables merely *passed* to ``asyncio.to_thread``
    or ``run_in_executor`` create no call edge, so thread-offloaded
    blocking work is structurally outside the closure — exactly the
    sanctioned escape hatch.
    """
    seeds = [
        fn for fn in project.funcs.values()
        if isinstance(fn.node, ast.AsyncFunctionDef)
        and "serve" in fn.rel.split("/")
    ]
    reached = _closure(project, seeds, "RPR013")
    out: list[Violation] = []
    for fn, chain in reached.values():
        if fn.rel.endswith(_ASYNC_EXEMPT_SUFFIXES):
            continue
        for canonical, line in fn.blocking_seeds:
            out.append(Violation(
                path=fn.path, line=line, col=0, code="RPR013",
                message=(
                    f"{fn.qual}() calls blocking {canonical}() and is "
                    f"reachable from the async sweep service via "
                    f"{chain}; a blocked event loop stalls every "
                    "worker link at once — offload it "
                    "(asyncio.to_thread / run_in_executor), use the "
                    "async equivalent, or mark "
                    "'# repro: noqa[RPR013] — why'"
                ),
            ))
    return out


def _check_ship_safety(project: Project) -> list[Violation]:
    out: list[Violation] = []
    for mod in project.modules.values():
        scanner = _ShipScanner(project, mod)
        scanner.visit(mod.tree)
        out.extend(scanner.violations)
    return out


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def build_project(paths: list[Path],
                  overrides: dict[str, str] | None = None) -> Project:
    """Parse every module under the given roots into one Project.

    ``overrides`` maps resolved file paths to replacement source text;
    the mutation engine uses it to analyse an in-memory mutant of one
    module against the rest of the tree as it exists on disk.
    """
    project = Project()
    for root in paths:
        root = Path(root)
        for path in iter_python_files(root):
            if root.is_file():
                rel = path.name
                dotted = path.stem
            else:
                rel = path.relative_to(root).as_posix()
                parts = [root.name] + rel[:-3].split("/")
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                dotted = ".".join(parts)
            source = None
            if overrides is not None:
                source = overrides.get(str(path.resolve()))
            if source is None:
                source = path.read_text(encoding="utf-8")
            project.add_source(source, str(path), rel, dotted)
    for fn in list(project.funcs.values()):
        _FuncScanner(project, fn).run()
    return project


def _apply_noqa(project: Project,
                violations: list[Violation]) -> list[Violation]:
    by_path = {mod.path: mod.noqa for mod in project.modules.values()}
    out = []
    for v in violations:
        codes = by_path.get(v.path, {}).get(v.line, frozenset())
        if codes is None or v.code in codes:
            continue
        out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code, v.message))
    return out


def flow_paths(paths: list[Path],
               baseline: dict[str, object] | None = None,
               overrides: dict[str, str] | None = None,
               ) -> list[Violation]:
    """Run RPR009-RPR012 over the given roots; returns findings that
    are neither noqa-suppressed nor recorded in ``baseline``."""
    project = build_project(paths, overrides=overrides)
    violations = list(project.parse_errors)
    violations += _apply_noqa(project, (
        _check_hot_closure(project)
        + _check_taint(project)
        + _check_contracts(project)
        + _check_ship_safety(project)
        + _check_async_blocking(project)
    ))
    if baseline:
        violations, _stale = split_baseline(violations, baseline)
    return violations


def split_baseline(
    violations: list[Violation], baseline: dict[str, object],
) -> tuple[list[Violation], list[tuple[str, str, str]]]:
    """Partition findings against a baseline.

    Returns ``(new, stale)``: the violations not recorded in the
    baseline (regressions), and the baseline fingerprints that no
    finding matched any more (stale entries — the accepted debt was
    paid down and the baseline should be refreshed).
    """
    known = {
        (str(f["path"]), str(f["code"]), str(f["message"]))
        for f in baseline.get("findings", ())
    }
    seen = {(v.path, v.code, v.message) for v in violations}
    new = [v for v in violations if (v.path, v.code, v.message) not in known]
    stale = sorted(known - seen)
    return new, stale


def encode_baseline(violations: list[Violation]) -> dict[str, object]:
    """Baseline body: line-free fingerprints, so accepted findings do
    not churn when unrelated edits move them around a file."""
    findings = sorted(
        {(v.path, v.code, v.message) for v in violations}
    )
    return {
        "version": 1,
        "findings": [
            {"path": p, "code": c, "message": m} for p, c, m in findings
        ],
    }


def default_baseline_path() -> Path:
    """``results/flow_baseline.json`` at the repository root (three
    levels above this package in a source checkout)."""
    return Path(__file__).resolve().parents[3] / "results" \
        / "flow_baseline.json"


def load_baseline(path: Path) -> dict[str, object]:
    return json.loads(path.read_text(encoding="utf-8"))


def run_flow_cli(args) -> int:
    """Back end of ``python -m repro.analysis flow`` (see lint.main)."""
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        candidate = default_baseline_path()
        if candidate.exists():
            baseline_path = candidate
    baseline = None
    if baseline_path is not None and not args.no_baseline \
            and not args.update_baseline:
        if not baseline_path.exists():
            print(f"error: no such baseline: {baseline_path}",
                  file=sys.stderr)
            return EXIT_USAGE
        baseline = load_baseline(baseline_path)
    violations = flow_paths(args.paths)
    if args.update_baseline:
        path = args.baseline or default_baseline_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(stable_dumps(encode_baseline(violations)),
                        encoding="utf-8")
        print(f"wrote {len(violations)} finding(s) to {path}")
        return EXIT_CLEAN
    stale: list[tuple[str, str, str]] = []
    if baseline is not None:
        violations, stale = split_baseline(violations, baseline)
    # --select/--ignore/--changed-only narrow what is *reported*; the
    # analysis itself stays whole-program (closures need every module).
    select = parse_codes(args.select)
    ignore = parse_codes(args.ignore)
    filtered_view = (select is not None or ignore is not None
                     or args.changed_only)
    violations = filter_by_code(violations, select, ignore)
    if args.changed_only:
        narrowed = restrict_to_changed(list(args.paths), args.base)
        if narrowed is not None:
            keep = {str(p) for p in narrowed}
            keep |= {str(p.resolve()) for p in narrowed}
            violations = [
                v for v in violations
                if v.path in keep or str(Path(v.path).resolve()) in keep
            ]
    rebaseline_cmd = (
        "python -m repro.analysis flow "
        + " ".join(str(p) for p in args.paths)
        + " --update-baseline"
    )
    if args.as_json:
        sys.stdout.write(stable_dumps({
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
            "rules": FLOW_RULES,
            "baseline": str(baseline_path) if baseline else None,
            "stale_baseline": [
                {"path": p, "code": c, "message": m} for p, c, m in stale
            ],
        }))
    else:
        for v in violations:
            print(v.render())
        if violations:
            print(f"{len(violations)} violation(s) found")
            print("accept deliberately (refreshes the baseline):\n  "
                  f"{rebaseline_cmd}")
    if violations:
        return EXIT_REGRESSION
    # Only a full, unfiltered view can judge the baseline stale: a
    # narrowed report simply cannot see every recorded finding.
    if stale and not filtered_view:
        if not args.as_json:
            print(f"stale baseline: {len(stale)} recorded finding(s) "
                  "no longer occur:")
            for path, code, message in stale:
                print(f"  {path}: {code} {message}")
            print(f"refresh it:\n  {rebaseline_cmd}")
        return EXIT_STALE_BASELINE
    return EXIT_CLEAN

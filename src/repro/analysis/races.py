"""Whole-program static concurrency analysis (RPR014-RPR017).

The serve/exec runtime is a zoo of execution contexts: an asyncio
``SweepServer`` loop, a ``LocalCluster`` respawn supervisor thread,
forked pool workers with heartbeat pipes, and atexit/signal reapers.
The byte-identity guarantee rests on those contexts never tearing each
other's state, and PR 8 already shipped one race fix (the drain-time
write to closed ledgers). This pass makes that class of defect a CI
regression instead of a production incident.

It layers on the flow engine's project symbol table and call graph
(:mod:`repro.analysis.flow`) and runs in three phases:

1. **Context inference** — classify every function into the execution
   contexts that may run it: ``main`` (sync entry points), ``thread``
   (reached from ``threading.Thread(target=...)``, ``run_in_executor``,
   ``asyncio.to_thread``, executor ``.submit``), ``async`` (coroutine
   bodies and their sync callees — a *sync* caller of an ``async def``
   only creates the coroutine, so that edge never propagates context),
   ``handler`` (atexit/signal callbacks), and ``fork``
   (``Process(target=...)`` children — a separate address space, so
   fork never counts toward sharing).

2. **Lockset computation** — a flow-sensitive walk of every function
   body tracking the *must*-held and *may*-held lock sets through
   ``with lock:`` regions, explicit ``acquire()``/``release()`` pairs,
   and branch joins (must = intersection, may = union), followed by an
   interprocedural fixpoint that pushes locksets across call edges
   (a callee's entry lockset is the intersection over its call sites).

3. **Four graph rules** over the result::

       RPR014  shared state (class attrs of context-escaping classes,
               module globals) written from >= 2 contexts with no lock
               common to every access (Eraser-style lockset analysis)
       RPR015  cycle in the acquired-while-holding lock-order graph
               (potential deadlock)
       RPR016  fork/Process spawn while a lock may be held, or a
               thread/lock/handle-holding object inherited by the
               forked child
       RPR017  async read-modify-write of server state spanning an
               ``await`` with no guard (the PR-8 drain interleaving)

Ergonomics match flow: ``# repro: noqa[RPR01x] — why`` suppression
(on an access, acquisition, fork site, or write line), a committed
line-free baseline at ``results/races_baseline.json`` with
``--update-baseline`` and stale detection, ``--json`` via
``stable_dumps``, and the shared exit-code vocabulary.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.common import (
    EXIT_CLEAN,
    EXIT_REGRESSION,
    EXIT_STALE_BASELINE,
    EXIT_USAGE,
    filter_by_code,
    parse_codes,
    restrict_to_changed,
)
from repro.analysis.flow import (
    FuncInfo,
    ModuleInfo,
    Project,
    _apply_noqa,
    _canonical_call,
    _edge_suppressed,
    build_project,
    encode_baseline,
    load_baseline,
    split_baseline,
)
from repro.analysis.lint import Violation, _dotted
from repro.util.encoding import stable_dumps

#: code -> one-line description (kept in sync with docs/analysis.md).
RACES_RULES: dict[str, str] = {
    "RPR014": "shared state written from >= 2 contexts with no "
              "consistent lockset",
    "RPR015": "lock-order cycle across contexts (potential deadlock)",
    "RPR016": "fork while a lock may be held, or unsafe state "
              "inherited by a forked child",
    "RPR017": "async read-modify-write spans an await with no guard",
}

#: The execution-context vocabulary, in display order.
CONTEXT_KINDS = ("main", "thread", "async", "handler", "fork")

#: Constructors whose result is a lock (lockset member + RPR015 node).
_LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "asyncio.Lock", "asyncio.Condition", "asyncio.Semaphore",
    "asyncio.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "multiprocessing.Condition", "multiprocessing.Semaphore",
})

#: Constructors of synchronisation primitives: attributes so typed are
#: guards/signals, not guarded data, and leave the shared-state set.
_SYNC_CTORS = _LOCK_CTORS | frozenset({
    "threading.Event", "asyncio.Event", "multiprocessing.Event",
    "threading.Barrier",
    "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
    "queue.SimpleQueue",
    "asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue",
    "multiprocessing.Queue", "multiprocessing.JoinableQueue",
})

#: Name heuristic for locks: matches ``_lock``, ``send_lock``,
#: ``_LIVE_LOCK``, ``mutex`` — but not ``lockout`` or ``blocked``.
_LOCKISH_RE = re.compile(r"(^|_)(lock|mutex)(_|$)", re.IGNORECASE)

#: Container mutators: ``X.add(...)`` is a *write* to X. Deliberately
#: the stdlib vocabulary only (contracts.MUTATOR_METHODS also names
#: project methods like ``release`` that collide with lock protocol).
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "popitem", "remove", "clear", "add", "discard", "update",
    "setdefault", "sort", "reverse",
})

#: Constructors whose result must not cross a fork into a child
#: process: live threads, locks, loops, sockets, executors, handles.
_UNSAFE_INHERIT_CTORS = frozenset({
    "threading.Thread", "threading.Lock", "threading.RLock",
    "threading.Condition", "threading.Event", "threading.Semaphore",
    "threading.BoundedSemaphore",
    "asyncio.new_event_loop", "asyncio.get_event_loop",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "socket.socket", "socket.create_connection",
    "open", "sqlite3.connect", "subprocess.Popen",
})

#: Methods assumed not to constitute dispatch for __init__ resolution.
_INIT_NAMES = ("__init__", "__post_init__")


# ----------------------------------------------------------------------
# phase 1: execution-context inference
# ----------------------------------------------------------------------
@dataclass
class ContextMap:
    """Which execution contexts may run each function."""

    #: kind -> root functions (uids, sorted).
    roots: dict[str, tuple[str, ...]]
    #: uid -> frozenset of context kinds that may execute it.
    kinds: dict[str, frozenset[str]]
    #: (rel, class) pairs whose bound methods escape into another
    #: context (``Thread(target=self._supervise)`` etc.) — only their
    #: instance attributes are race candidates.
    escaping: frozenset[tuple[str, str]]

    def kinds_of(self, fn: FuncInfo) -> frozenset[str]:
        return self.kinds.get(fn.uid, frozenset())


def _own_nodes(node: ast.AST):
    """All AST nodes of a function body, excluding nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        yield sub
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(sub))


def _resolve_callable(expr: ast.expr, fn: FuncInfo | None,
                      mod: ModuleInfo,
                      project: Project) -> FuncInfo | None:
    """Resolve a callback expression to a project function.

    Deliberately conservative: bare names, ``self.method``, and
    imported ``pkg.func`` resolve; arbitrary ``obj.method`` does not
    (name-based CHA would over-root wildly here).
    """
    if isinstance(expr, ast.Name):
        name = expr.id
        if fn is not None and name in fn.nested:
            return fn.nested[name]
        got = mod.functions.get(name)
        if got is not None:
            return got
        if name in mod.classes:
            return mod.classes[name].get("__init__")
        origin = mod.imports.get(name)
        if origin is not None:
            return project.resolve_symbol(origin)
        return None
    if isinstance(expr, ast.Attribute):
        if (isinstance(expr.value, ast.Name) and expr.value.id == "self"
                and fn is not None and fn.cls is not None):
            return mod.classes.get(fn.cls, {}).get(expr.attr)
        canonical = _canonical_call(expr, mod)
        if canonical is not None:
            return project.resolve_symbol(canonical)
    return None


def _registration_target(call: ast.Call,
                         mod: ModuleInfo) -> tuple[str, ast.expr] | None:
    """(kind, callback expr) when ``call`` registers a context root."""
    canonical = _canonical_call(call.func, mod) or ""
    dotted = _dotted(call.func) or ""
    last = canonical.rsplit(".", 1)[-1]

    def kw(name: str) -> ast.expr | None:
        for k in call.keywords:
            if k.arg == name:
                return k.value
        return None

    def arg(idx: int) -> ast.expr | None:
        return call.args[idx] if len(call.args) > idx else None

    if last == "Thread":
        target = kw("target") or arg(1)
        if target is not None:
            return ("thread", target)
    if canonical == "asyncio.to_thread" and arg(0) is not None:
        return ("thread", arg(0))
    if dotted.endswith(".run_in_executor") and arg(1) is not None:
        return ("thread", arg(1))
    if dotted.endswith(".submit") and arg(0) is not None:
        return ("thread", arg(0))
    if last == "Process":
        target = kw("target") or arg(1)
        if target is not None:
            return ("fork", target)
    if canonical == "atexit.register" and arg(0) is not None:
        return ("handler", arg(0))
    if canonical == "signal.signal" and arg(1) is not None:
        return ("handler", arg(1))
    if dotted.endswith(".add_signal_handler") and arg(1) is not None:
        return ("handler", arg(1))
    return None


def _context_closure(project: Project,
                     roots: list[FuncInfo]) -> set[str]:
    """BFS over call edges; ``noqa[RPR014]`` on a call line prunes the
    edge, and sync -> async edges never propagate (calling a coroutine
    function only creates the coroutine — it runs on the loop)."""
    reached = {fn.uid for fn in roots}
    frontier = list(roots)
    while frontier:
        fn = frontier.pop()
        for callee, line in fn.edges:
            if callee.uid in reached:
                continue
            if _edge_suppressed(fn, line, "RPR014"):
                continue
            if (isinstance(callee.node, ast.AsyncFunctionDef)
                    and not isinstance(fn.node, ast.AsyncFunctionDef)):
                continue
            reached.add(callee.uid)
            frontier.append(callee)
    return reached


def infer_contexts(project: Project) -> ContextMap:
    """Infer the execution-context map for a built project."""
    roots: dict[str, list[FuncInfo]] = {k: [] for k in CONTEXT_KINDS}
    seen_roots: dict[str, set[str]] = {k: set() for k in CONTEXT_KINDS}
    escaping: set[tuple[str, str]] = set()

    def add_root(kind: str, fn: FuncInfo | None,
                 via_self: str | None) -> None:
        if fn is None:
            return
        if fn.uid not in seen_roots[kind]:
            seen_roots[kind].add(fn.uid)
            roots[kind].append(fn)
        if via_self is not None:
            escaping.add((fn.rel, via_self))

    def scan_calls(nodes, fn: FuncInfo | None, mod: ModuleInfo) -> None:
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            reg = _registration_target(node, mod)
            if reg is None:
                continue
            kind, target = reg
            via_self = None
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and fn is not None and fn.cls is not None):
                via_self = fn.cls
            add_root(kind, _resolve_callable(target, fn, mod, project),
                     via_self)

    for mod in project.modules.values():
        # module top level (``atexit.register(_reap_orphans)`` style)
        top = [stmt for stmt in mod.tree.body
               if not isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef))]
        nodes: list[ast.AST] = []
        for stmt in top:
            nodes.extend(ast.walk(stmt))
        scan_calls(nodes, None, mod)
    for fn in project.funcs.values():
        scan_calls(_own_nodes(fn.node), fn, fn.module)

    # async context: every coroutine body.
    for fn in project.funcs.values():
        if isinstance(fn.node, ast.AsyncFunctionDef):
            if fn.uid not in seen_roots["async"]:
                seen_roots["async"].add(fn.uid)
                roots["async"].append(fn)

    # main context: sync top-of-callgraph functions that are not
    # registered anywhere else (entry points, CLI commands, __enter__).
    special = set().union(*(seen_roots[k] for k in
                            ("thread", "fork", "handler", "async")))
    has_caller: set[str] = set()
    for fn in project.funcs.values():
        for callee, _line in fn.edges:
            has_caller.add(callee.uid)
    for fn in project.funcs.values():
        if isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        if ".<locals>." in fn.qual:
            continue
        if fn.uid in special or fn.uid in has_caller:
            continue
        seen_roots["main"].add(fn.uid)
        roots["main"].append(fn)

    kinds: dict[str, set[str]] = {}
    for kind in CONTEXT_KINDS:
        for uid in _context_closure(project,
                                    sorted(roots[kind],
                                           key=lambda f: f.uid)):
            kinds.setdefault(uid, set()).add(kind)
    return ContextMap(
        roots={k: tuple(sorted(seen_roots[k])) for k in CONTEXT_KINDS},
        kinds={uid: frozenset(ks) for uid, ks in kinds.items()},
        escaping=frozenset(escaping),
    )


# ----------------------------------------------------------------------
# phase 2: lockset computation
# ----------------------------------------------------------------------
class _LockIndex:
    """Project-wide typing of locks, sync primitives, and globals."""

    def __init__(self, project: Project) -> None:
        #: rel -> names assigned at module top level.
        self.mod_globals: dict[str, set[str]] = {}
        #: (rel, name) -> canonical ctor of the top-level assignment.
        self.global_ctors: dict[tuple[str, str], set[str]] = {}
        #: (rel, cls, attr) -> canonical ctors seen in ``self.X = ...``.
        self.attr_ctors: dict[tuple[str, str, str], set[str]] = {}
        for mod in project.modules.values():
            for stmt in mod.tree.body:
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif (isinstance(stmt, ast.AnnAssign)
                        and stmt.value is not None):
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                for tgt in targets:
                    if not isinstance(tgt, ast.Name):
                        continue
                    self.mod_globals.setdefault(mod.rel,
                                                set()).add(tgt.id)
                    if isinstance(value, ast.Call):
                        canon = _canonical_call(value.func, mod)
                        if canon is not None:
                            self.global_ctors.setdefault(
                                (mod.rel, tgt.id), set()).add(canon)
            for cls, attrs in mod.class_attr_aliases.items():
                for attr, exprs in attrs.items():
                    for expr in exprs:
                        if not isinstance(expr, ast.Call):
                            continue
                        canon = _canonical_call(expr.func, mod)
                        if canon is not None:
                            self.attr_ctors.setdefault(
                                (mod.rel, cls, attr), set()).add(canon)

    def _typed(self, ctors: set[str] | None,
               vocab: frozenset[str]) -> bool:
        return bool(ctors) and bool(ctors & vocab)

    def is_lock_attr(self, rel: str, cls: str, attr: str) -> bool:
        return bool(_LOCKISH_RE.search(attr)) or self._typed(
            self.attr_ctors.get((rel, cls, attr)), _LOCK_CTORS)

    def is_sync_attr(self, rel: str, cls: str, attr: str) -> bool:
        return bool(_LOCKISH_RE.search(attr)) or self._typed(
            self.attr_ctors.get((rel, cls, attr)), _SYNC_CTORS)

    def is_lock_global(self, rel: str, name: str) -> bool:
        return bool(_LOCKISH_RE.search(name)) or self._typed(
            self.global_ctors.get((rel, name)), _LOCK_CTORS)

    def is_sync_global(self, rel: str, name: str) -> bool:
        return bool(_LOCKISH_RE.search(name)) or self._typed(
            self.global_ctors.get((rel, name)), _SYNC_CTORS)


def _lock_id(expr: ast.expr, fn: FuncInfo,
             index: _LockIndex) -> str | None:
    """Stable identity of a lock expression, or None if not a lock.

    ``self._lock`` -> ``Cls._lock`` (instances of one class conflate —
    the useful static approximation); module global -> ``mod._lock``;
    any other dotted lock-named chain keeps its source text.
    """
    mod = fn.module
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self" and fn.cls is not None):
        if index.is_lock_attr(fn.rel, fn.cls, expr.attr):
            return f"{fn.cls}.{expr.attr}"
        return None
    dotted = _dotted(expr)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    if isinstance(expr, ast.Name):
        if index.is_lock_global(fn.rel, dotted):
            return f"{mod.dotted}.{dotted}"
        if _LOCKISH_RE.search(dotted):
            return f"{mod.dotted}.{dotted}"
        return None
    if _LOCKISH_RE.search(last):
        return dotted
    return None


@dataclass
class _FnLocks:
    """Flow-sensitive lockset facts for one function."""

    #: line -> locks held on *every* path reaching it (local only).
    line_must: dict[int, frozenset[str]] = field(default_factory=dict)
    #: line -> locks held on *some* path reaching it (local only).
    line_may: dict[int, frozenset[str]] = field(default_factory=dict)
    #: (lock, locally may-held while acquiring, line) per acquisition.
    acquisitions: list[tuple[str, frozenset[str], int]] = field(
        default_factory=list)
    #: interprocedural entry locksets (fixpoint result).
    entry_must: frozenset[str] = frozenset()
    entry_may: frozenset[str] = frozenset()

    def must_at(self, line: int) -> frozenset[str]:
        return self.entry_must | self.line_must.get(line, frozenset())

    def may_at(self, line: int) -> frozenset[str]:
        return self.entry_may | self.line_may.get(line, frozenset())


class _LockWalker:
    """One pass over a function body tracking held locksets."""

    def __init__(self, fn: FuncInfo, index: _LockIndex) -> None:
        self.fn = fn
        self.index = index
        self.out = _FnLocks()

    def run(self) -> _FnLocks:
        self._walk(self.fn.node.body, frozenset(), frozenset())
        return self.out

    def _mark(self, first: int, last: int, must: frozenset[str],
              may: frozenset[str]) -> None:
        for line in range(first, last + 1):
            if line not in self.out.line_must:
                self.out.line_must[line] = must
                self.out.line_may[line] = may

    def _acquire_release(self, stmt: ast.stmt, must: frozenset[str],
                         may: frozenset[str],
                         ) -> tuple[frozenset[str], frozenset[str]]:
        """Explicit ``X.acquire()`` / ``X.release()`` statements."""
        value = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)):
            return must, may
        lock = _lock_id(value.func.value, self.fn, self.index)
        if lock is None:
            return must, may
        if value.func.attr == "acquire":
            self.out.acquisitions.append((lock, may, stmt.lineno))
            return must | {lock}, may | {lock}
        if value.func.attr == "release":
            return must - {lock}, may - {lock}
        return must, may

    def _walk(self, body: list[ast.stmt], must: frozenset[str],
              may: frozenset[str],
              ) -> tuple[frozenset[str], frozenset[str]]:
        inter = frozenset.intersection
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs walk as their own FuncInfo
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._mark(stmt.lineno, stmt.lineno, must, may)
                held_must, held_may = must, may
                acquired: set[str] = set()
                for item in stmt.items:
                    lock = _lock_id(item.context_expr, self.fn,
                                    self.index)
                    if lock is None:
                        continue
                    self.out.acquisitions.append(
                        (lock, held_may, stmt.lineno))
                    held_must |= {lock}
                    held_may |= {lock}
                    acquired.add(lock)
                exit_must, exit_may = self._walk(stmt.body, held_must,
                                                 held_may)
                # with-exit releases what the with acquired; explicit
                # acquire()s made inside the body persist past it.
                must = (exit_must - acquired) | (must & acquired)
                may = (exit_may - acquired) | (may & acquired)
            elif isinstance(stmt, ast.If):
                self._mark(stmt.lineno, stmt.lineno, must, may)
                m1, y1 = self._walk(stmt.body, must, may)
                m2, y2 = self._walk(stmt.orelse, must, may)
                must, may = m1 & m2, y1 | y2
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._mark(stmt.lineno, stmt.lineno, must, may)
                mb, yb = self._walk(stmt.body, must, may)
                mo, yo = self._walk(stmt.orelse, must, may)
                must, may = must & mb & mo, may | yb | yo
            elif isinstance(stmt, ast.Try):
                mb, yb = self._walk(stmt.body, must, may)
                if stmt.orelse:
                    mb, yb = self._walk(stmt.orelse, mb, yb)
                exits_m, exits_y = [mb], [yb]
                for handler in stmt.handlers:
                    mh, yh = self._walk(handler.body, must, may)
                    exits_m.append(mh)
                    exits_y.append(yh)
                must = inter(*exits_m)
                may = frozenset().union(*exits_y)
                if stmt.finalbody:
                    must, may = self._walk(stmt.finalbody, must, may)
            elif isinstance(stmt, ast.Match):
                self._mark(stmt.lineno, stmt.lineno, must, may)
                exits_m, exits_y = [must], [may]
                for case in stmt.cases:
                    mc, yc = self._walk(case.body, must, may)
                    exits_m.append(mc)
                    exits_y.append(yc)
                must = inter(*exits_m)
                may = frozenset().union(*exits_y)
            else:
                end = getattr(stmt, "end_lineno", None) or stmt.lineno
                self._mark(stmt.lineno, end, must, may)
                must, may = self._acquire_release(stmt, must, may)
        return must, may


def _lockset_edge_ok(caller: FuncInfo, callee: FuncInfo) -> bool:
    """Lockset propagation skips sync -> async edges (coroutine
    creation runs nothing; the body runs on the loop, lock-free)."""
    return not (isinstance(callee.node, ast.AsyncFunctionDef)
                and not isinstance(caller.node, ast.AsyncFunctionDef))


def compute_locksets(project: Project, ctx: ContextMap,
                     index: _LockIndex) -> dict[str, _FnLocks]:
    """Per-function locksets plus the interprocedural entry fixpoint."""
    locks = {fn.uid: _LockWalker(fn, index).run()
             for fn in project.funcs.values()}
    # Entry locksets: intersection (must) / union (may) over call
    # sites. Context roots are pinned to the empty set — a fresh
    # thread, handler, or task starts holding nothing.
    pinned = set()
    for kind in CONTEXT_KINDS:
        pinned.update(ctx.roots[kind])
    entry_must: dict[str, frozenset[str] | None] = {
        uid: (frozenset() if uid in pinned else None) for uid in locks
    }
    entry_may: dict[str, frozenset[str]] = {
        uid: frozenset() for uid in locks
    }
    changed = True
    while changed:
        changed = False
        for fn in project.funcs.values():
            fl = locks[fn.uid]
            base_must = entry_must[fn.uid] or frozenset()
            base_may = entry_may[fn.uid]
            for callee, line in fn.edges:
                if callee.uid not in locks:
                    continue
                if not _lockset_edge_ok(fn, callee):
                    continue
                cs_must = base_must | fl.line_must.get(line, frozenset())
                cs_may = base_may | fl.line_may.get(line, frozenset())
                cur = entry_must[callee.uid]
                if callee.uid in pinned:
                    new = frozenset()
                else:
                    new = cs_must if cur is None else cur & cs_must
                if new != cur:
                    entry_must[callee.uid] = new
                    changed = True
                more = entry_may[callee.uid] | cs_may
                if more != entry_may[callee.uid]:
                    entry_may[callee.uid] = more
                    changed = True
    for uid, fl in locks.items():
        fl.entry_must = entry_must[uid] or frozenset()
        fl.entry_may = entry_may[uid]
    return locks


# ----------------------------------------------------------------------
# phase 3a: shared mutable state and its accesses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Access:
    """One read or write of a shared-state candidate variable."""

    var: tuple          # ("attr", rel, cls, name) | ("global", rel, name)
    display: str
    write: bool
    fn_uid: str
    line: int
    col: int


def _local_names(fn: FuncInfo) -> tuple[set[str], set[str]]:
    """(locals, declared-global names) of a function body."""
    declared: set[str] = set()
    local: set[str] = set()
    args = fn.node.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs
              + ([args.vararg] if args.vararg else [])
              + ([args.kwarg] if args.kwarg else [])):
        local.add(a.arg)
    for node in _own_nodes(fn.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                       ast.Store):
            local.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            local.add(node.name)
    return local - declared, declared


def _unwrap_container(expr: ast.expr) -> ast.expr:
    """``X[k]`` (arbitrarily nested) -> ``X``."""
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    return expr


def _collect_accesses(project: Project, ctx: ContextMap,
                      index: _LockIndex) -> dict[tuple, list[_Access]]:
    """Every access to a shared-state *candidate*: class attributes of
    context-escaping classes and module globals. ``__init__`` bodies
    are excluded wholesale — construction precedes concurrency."""
    by_var: dict[tuple, list[_Access]] = {}

    def record(fn: FuncInfo, var: tuple, display: str, write: bool,
               node: ast.AST) -> None:
        by_var.setdefault(var, []).append(_Access(
            var=var, display=display, write=write, fn_uid=fn.uid,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        ))

    for fn in project.funcs.values():
        if fn.cls is not None and fn.name in _INIT_NAMES:
            continue
        mod = fn.module
        locals_, declared_global = _local_names(fn)
        universe = index.mod_globals.get(fn.rel, set())

        def attr_var(expr: ast.expr) -> tuple[tuple, str] | None:
            if not (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and fn.cls is not None):
                return None
            if (fn.rel, fn.cls) not in ctx.escaping:
                return None
            if expr.attr not in mod.class_attr_aliases.get(fn.cls, {}):
                return None
            if index.is_sync_attr(fn.rel, fn.cls, expr.attr):
                return None
            return (("attr", fn.rel, fn.cls, expr.attr),
                    f"{fn.cls}.{expr.attr}")

        def global_var(expr: ast.expr) -> tuple[tuple, str] | None:
            if not isinstance(expr, ast.Name):
                return None
            name = expr.id
            if name not in universe or name in locals_:
                return None
            if index.is_sync_global(fn.rel, name):
                return None
            return (("global", fn.rel, name), f"{mod.dotted}.{name}")

        def classify(expr: ast.expr) -> tuple[tuple, str] | None:
            return attr_var(expr) or global_var(expr)

        for node in _own_nodes(fn.node):
            if isinstance(node, (ast.Attribute, ast.Name)):
                hit = classify(node)
                if hit is None:
                    continue
                var, display = hit
                if isinstance(node.ctx, ast.Store):
                    # plain Name stores are only global writes when
                    # declared ``global`` (locals were filtered above)
                    record(fn, var, display, True, node)
                elif isinstance(node.ctx, ast.Del):
                    record(fn, var, display, True, node)
                else:
                    record(fn, var, display, False, node)
            elif isinstance(node, ast.AugAssign):
                hit = classify(node.target)
                if hit is not None:
                    record(fn, hit[0], hit[1], True, node)
            elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                hit = classify(_unwrap_container(node))
                if hit is not None:
                    record(fn, hit[0], hit[1], True, node)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                hit = classify(_unwrap_container(node.func.value))
                if hit is not None:
                    record(fn, hit[0], hit[1], True, node)
    return by_var


# ----------------------------------------------------------------------
# phase 3b: the four rules
# ----------------------------------------------------------------------
def _check_locksets(project: Project, ctx: ContextMap,
                    locks: dict[str, _FnLocks],
                    by_var: dict[tuple, list[_Access]],
                    ) -> list[Violation]:
    """RPR014: shared-modified state with no consistent lockset."""
    out: list[Violation] = []
    for var in sorted(by_var):
        accs = by_var[var]
        write_kinds: set[str] = set()
        for a in accs:
            if a.write:
                write_kinds |= ctx.kinds.get(a.fn_uid,
                                             frozenset()) - {"fork"}
        if len(write_kinds) < 2:
            continue
        display = accs[0].display
        relevant = []
        for a in accs:
            fn = project.funcs[a.fn_uid]
            if not (ctx.kinds.get(a.fn_uid, frozenset()) - {"fork"}):
                continue  # dead code or fork-only: separate memory
            if _edge_suppressed(fn, a.line, "RPR014"):
                continue  # annotated access leaves the consistency set
            relevant.append(a)
        if not relevant:
            continue
        common = frozenset.intersection(*(
            locks[a.fn_uid].must_at(a.line) for a in relevant
        ))
        if common:
            continue
        writes = sorted(
            (a for a in relevant if a.write),
            key=lambda a: (project.funcs[a.fn_uid].path, a.line, a.col),
        )
        anchor = writes[0] if writes else relevant[0]
        anchor_fn = project.funcs[anchor.fn_uid]
        quals = sorted({project.funcs[a.fn_uid].qual for a in relevant})
        shown = ", ".join(quals[:4]) + (", ..." if len(quals) > 4 else "")
        out.append(Violation(
            path=anchor_fn.path, line=anchor.line, col=anchor.col,
            code="RPR014",
            message=(
                f"shared state {display} is written from "
                f"{'+'.join(sorted(write_kinds))} contexts with no "
                f"common lock (accessed in {shown})"
            ),
        ))
    return out


def _find_cycles(graph: dict[str, set[str]]) -> list[tuple[str, ...]]:
    """Simple cycles (length >= 2), canonically rotated, via a bounded
    DFS that only explores nodes >= the start node — each cycle is
    found exactly once, already rotated to its minimum."""
    cycles: set[tuple[str, ...]] = set()
    for start in sorted(graph):
        stack = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(graph.get(node, ())):
                if nxt == start:
                    if len(path) >= 2:
                        cycles.add(path)
                elif nxt > start and nxt not in path and len(path) < 8:
                    stack.append((nxt, path + (nxt,)))
    return sorted(cycles)


def _check_lock_order(project: Project,
                      locks: dict[str, _FnLocks]) -> list[Violation]:
    """RPR015: cycles in the acquired-while-holding graph."""
    #: (held, acquired) -> (path, line, qual) of the first witness.
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}
    for fn in sorted(project.funcs.values(), key=lambda f: f.uid):
        fl = locks[fn.uid]
        for lock, local_may, line in fl.acquisitions:
            if _edge_suppressed(fn, line, "RPR015"):
                continue
            for held in sorted(local_may | fl.entry_may):
                if held == lock:
                    continue
                witness = (fn.path, line, fn.qual)
                if edges.get((held, lock), witness) >= witness:
                    edges[(held, lock)] = witness
    graph: dict[str, set[str]] = {}
    for held, lock in edges:
        graph.setdefault(held, set()).add(lock)
    out: list[Violation] = []
    for cycle in _find_cycles(graph):
        path, line, qual = edges[(cycle[0], cycle[1])]
        rendered = " -> ".join(cycle + (cycle[0],))
        out.append(Violation(
            path=path, line=line, col=0, code="RPR015",
            message=(
                f"lock-order cycle {rendered} (potential deadlock; "
                f"one edge acquired in {qual})"
            ),
        ))
    return out


def _unsafe_local_ctors(fn: FuncInfo) -> set[str]:
    """Local names bound to fork-unsafe constructors in this body."""
    names: set[str] = set()
    for node in _own_nodes(fn.node):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        canon = _canonical_call(node.value.func, fn.module)
        if canon not in _UNSAFE_INHERIT_CTORS:
            continue
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                names.add(tgt.id)
    return names


def _check_fork_safety(project: Project, locks: dict[str, _FnLocks],
                       index: _LockIndex) -> list[Violation]:
    """RPR016: fork while a lock may be held; unsafe inheritance."""
    out: list[Violation] = []
    for fn in sorted(project.funcs.values(), key=lambda f: f.uid):
        fl = locks[fn.uid]
        unsafe_locals: set[str] | None = None
        for node in _own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node.func, fn.module) or ""
            is_fork = canonical == "os.fork"
            is_proc = (
                canonical.rsplit(".", 1)[-1] == "Process"
                and any(k.arg == "target" for k in node.keywords)
            )
            if not (is_fork or is_proc):
                continue
            line = node.lineno
            site = "os.fork()" if is_fork else "Process(...)"
            held = fl.may_at(line)
            if held:
                out.append(Violation(
                    path=fn.path, line=line, col=node.col_offset,
                    code="RPR016",
                    message=(
                        f"{site} in {fn.qual} while lock(s) "
                        f"{', '.join(sorted(held))} may be held — the "
                        f"child inherits them locked forever"
                    ),
                ))
            if not is_proc:
                continue
            if unsafe_locals is None:
                unsafe_locals = _unsafe_local_ctors(fn)
            payload: list[ast.expr] = []
            for kw in node.keywords:
                if kw.arg != "target" and kw.value is not None:
                    payload.append(kw.value)
            payload.extend(a for i, a in enumerate(node.args) if i != 1)
            leaves: list[ast.expr] = []
            for expr in payload:
                if isinstance(expr, (ast.Tuple, ast.List)):
                    leaves.extend(expr.elts)
                else:
                    leaves.append(expr)
            for leaf in leaves:
                reason = None
                if isinstance(leaf, ast.Call):
                    canon = _canonical_call(leaf.func, fn.module)
                    if canon in _UNSAFE_INHERIT_CTORS:
                        reason = f"freshly constructed {canon}"
                elif (isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                        and fn.cls is not None):
                    ctors = index.attr_ctors.get(
                        (fn.rel, fn.cls, leaf.attr), set())
                    bad = sorted(ctors & _UNSAFE_INHERIT_CTORS)
                    if bad:
                        reason = (f"self.{leaf.attr} holds a "
                                  f"{bad[0]}")
                elif (isinstance(leaf, ast.Name)
                        and leaf.id in unsafe_locals):
                    reason = f"local {leaf.id!r} holds an OS handle"
                if reason is not None:
                    out.append(Violation(
                        path=fn.path, line=line, col=leaf.col_offset,
                        code="RPR016",
                        message=(
                            f"Process(...) in {fn.qual} inherits "
                            f"fork-unsafe state: {reason}"
                        ),
                    ))
    return out


class _AwaitWalker:
    """RPR017 per-coroutine walk: a monotonically increasing *await
    epoch* advances at every ``await`` in source order; a write to
    ``self.X`` whose last read happened in an earlier epoch (and was
    not refreshed since) is a stale read-modify-write — unless a lock
    is must-held at the write (``async with self._lock:`` regions are
    part of the lockset walk, so ``must_at`` already covers them)."""

    def __init__(self, fn: FuncInfo, index: _LockIndex,
                 fl: _FnLocks) -> None:
        self.fn = fn
        self.index = index
        self.fl = fl
        self.epoch = 0
        self.read_epoch: dict[str, int] = {}
        self.out: list[Violation] = []

    def run(self) -> list[Violation]:
        self._walk(self.fn.node.body)
        return self.out

    def _eligible(self, attr: str) -> bool:
        fn = self.fn
        return (
            fn.cls is not None
            and attr in fn.module.class_attr_aliases.get(fn.cls, {})
            and not self.index.is_sync_attr(fn.rel, fn.cls, attr)
        )

    def _reads_writes(self, stmt: ast.stmt,
                      ) -> tuple[set[str], list[tuple[str, ast.AST]]]:
        reads: set[str] = set()
        writes: list[tuple[str, ast.AST]] = []
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and self._eligible(node.attr)):
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    writes.append((node.attr, node))
                else:
                    reads.add(node.attr)
            elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                base = _unwrap_container(node)
                if (isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"
                        and self._eligible(base.attr)):
                    writes.append((base.attr, node))
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                base = _unwrap_container(node.func.value)
                if (isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"
                        and self._eligible(base.attr)):
                    writes.append((base.attr, node))
        return reads, writes

    def _stmt(self, stmt: ast.stmt) -> None:
        awaits = sum(isinstance(n, ast.Await) for n in ast.walk(stmt))
        reads, writes = self._reads_writes(stmt)
        for attr in reads:
            self.read_epoch[attr] = self.epoch
        for attr, node in writes:
            last_read = self.read_epoch.get(attr)
            stale = last_read is not None and last_read < self.epoch
            intra = awaits > 0 and attr in reads
            line = getattr(node, "lineno", stmt.lineno)
            if ((stale or intra)
                    and not self.fl.must_at(line)):
                self.out.append(Violation(
                    path=self.fn.path, line=line,
                    col=getattr(node, "col_offset", 0), code="RPR017",
                    message=(
                        f"read-modify-write of {self.fn.cls}."
                        f"{attr} spans an await with no lock in "
                        f"{self.fn.qual} (stale by the time it "
                        f"writes; re-read after the await or guard "
                        f"it)"
                    ),
                ))
        self.epoch += awaits
        for attr, _node in writes:
            self.read_epoch[attr] = self.epoch

    def _expr(self, expr: ast.expr | None) -> None:
        if expr is None:
            return
        holder = ast.Expr(value=expr)
        ast.copy_location(holder, expr)
        self._stmt(holder)

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._expr(item.context_expr)
                self._walk(stmt.body)
            elif isinstance(stmt, ast.If):
                self._expr(stmt.test)
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._expr(stmt.test)
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._expr(stmt.iter)
                if isinstance(stmt, ast.AsyncFor):
                    self.epoch += 1
                self._walk(stmt.body)
                self._walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body)
                for handler in stmt.handlers:
                    self._walk(handler.body)
                self._walk(stmt.orelse)
                self._walk(stmt.finalbody)
            elif isinstance(stmt, ast.Match):
                self._expr(stmt.subject)
                for case in stmt.cases:
                    self._walk(case.body)
            else:
                self._stmt(stmt)


def _check_await_atomicity(project: Project, index: _LockIndex,
                           locks: dict[str, _FnLocks],
                           ) -> list[Violation]:
    """RPR017 over the async sweep-service handler closure (the same
    ``serve`` seed population RPR013 uses)."""
    out: list[Violation] = []
    for fn in sorted(project.funcs.values(), key=lambda f: f.uid):
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        if "serve" not in fn.rel.split("/"):
            continue
        if fn.cls is None:
            continue
        out.extend(_AwaitWalker(fn, index, locks[fn.uid]).run())
    return out


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def analyze_project(project: Project) -> list[Violation]:
    """Run RPR014-RPR017 over a built project (noqa not yet applied)."""
    ctx = infer_contexts(project)
    index = _LockIndex(project)
    locks = compute_locksets(project, ctx, index)
    by_var = _collect_accesses(project, ctx, index)
    return (
        _check_locksets(project, ctx, locks, by_var)
        + _check_lock_order(project, locks)
        + _check_fork_safety(project, locks, index)
        + _check_await_atomicity(project, index, locks)
    )


def races_paths(paths: list[Path],
                baseline: dict[str, object] | None = None,
                overrides: dict[str, str] | None = None,
                ) -> list[Violation]:
    """Run the concurrency rules over the given roots; returns findings
    that are neither noqa-suppressed nor recorded in ``baseline``."""
    project = build_project(paths, overrides=overrides)
    violations = list(project.parse_errors)
    violations += _apply_noqa(project, analyze_project(project))
    if baseline:
        violations, _stale = split_baseline(violations, baseline)
    return violations


def default_races_baseline_path() -> Path:
    """``results/races_baseline.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "results" \
        / "races_baseline.json"


def run_races_cli(args) -> int:
    """Back end of ``python -m repro.analysis races`` (see lint.main)."""
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        candidate = default_races_baseline_path()
        if candidate.exists():
            baseline_path = candidate
    baseline = None
    if baseline_path is not None and not args.no_baseline \
            and not args.update_baseline:
        if not baseline_path.exists():
            print(f"error: no such baseline: {baseline_path}",
                  file=sys.stderr)
            return EXIT_USAGE
        baseline = load_baseline(baseline_path)
    violations = races_paths(args.paths)
    if args.update_baseline:
        path = args.baseline or default_races_baseline_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(stable_dumps(encode_baseline(violations)),
                        encoding="utf-8")
        print(f"wrote {len(violations)} finding(s) to {path}")
        return EXIT_CLEAN
    stale: list[tuple[str, str, str]] = []
    if baseline is not None:
        violations, stale = split_baseline(violations, baseline)
    # --select/--ignore/--changed-only narrow what is *reported*; the
    # analysis itself stays whole-program (contexts and locksets need
    # every module).
    select = parse_codes(args.select)
    ignore = parse_codes(args.ignore)
    filtered_view = (select is not None or ignore is not None
                     or args.changed_only)
    violations = filter_by_code(violations, select, ignore)
    if args.changed_only:
        narrowed = restrict_to_changed(list(args.paths), args.base)
        if narrowed is not None:
            keep = {str(p) for p in narrowed}
            keep |= {str(p.resolve()) for p in narrowed}
            violations = [
                v for v in violations
                if v.path in keep or str(Path(v.path).resolve()) in keep
            ]
    rebaseline_cmd = (
        "python -m repro.analysis races "
        + " ".join(str(p) for p in args.paths)
        + " --update-baseline"
    )
    if args.as_json:
        sys.stdout.write(stable_dumps({
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
            "rules": RACES_RULES,
            "baseline": str(baseline_path) if baseline else None,
            "stale_baseline": [
                {"path": p, "code": c, "message": m} for p, c, m in stale
            ],
        }))
    else:
        for v in violations:
            print(v.render())
        if violations:
            print(f"{len(violations)} violation(s) found")
            print("accept deliberately (refreshes the baseline):\n  "
                  f"{rebaseline_cmd}")
    if violations:
        return EXIT_REGRESSION
    # Only a full, unfiltered view can judge the baseline stale: a
    # narrowed report simply cannot see every recorded finding.
    if stale and not filtered_view:
        if not args.as_json:
            print(f"stale baseline: {len(stale)} recorded finding(s) "
                  "no longer occur:")
            for path, code, message in stale:
                print(f"  {path}: {code} {message}")
            print(f"refresh it:\n  {rebaseline_cmd}")
        return EXIT_STALE_BASELINE
    return EXIT_CLEAN

"""Runtime microarchitectural sanitizer for the SMT pipeline.

The paper's correctness argument (§4) is that out-of-order *dispatch* is
safe because renaming and ROB/LSQ allocation stay in program order, the
reduced issue queue never holds an entry waiting on two tags, and the
deadlock-avoidance buffer guarantees forward progress. This module turns
those prose invariants into machine checks that run *inside* the cycle
loop, the way an address/thread sanitizer rides along a compiled
program: enable with ``MachineConfig.sanitize=True`` and every
``sanitize_interval`` cycles the whole in-flight window is re-validated.

Unlike :meth:`repro.pipeline.smt_core.SMTProcessor.validate` (a
test-only helper), the sanitizer is stateful across checks — it tracks
commit watermarks and detects *starvation*, not just instantaneous
inconsistency — and it raises a structured :class:`SanitizerViolation`
naming the invariant, cycle, thread and instruction, so fault-injection
tests and triage scripts can key on the failure precisely.

With ``sanitize=False`` (the default) the core holds no sanitizer object
and pays one ``is None`` test per cycle; ``bench_sanitizer_overhead``
records that this is unmeasurable against ``bench_sim_speed``.
"""

from __future__ import annotations

from repro.analysis.contracts import STAGE_CALLABLES, STAGE_CONTRACTS
from repro.pipeline.dynamic import DynInstr

#: Invariant identifiers a :class:`SanitizerViolation` may carry.
INVARIANTS = (
    "rob-program-order",
    "rename-program-order",
    "lsq-alloc-order",
    "iq-capacity",
    "iq-one-comparator",
    "iq-dab-exclusion",
    "wakeup-consistency",
    "issue-starvation",
    "commit-monotonicity",
    "stage-contract",
)

#: Resource -> cheap fingerprint of its mutable state. The contract
#: shadow checks (see :meth:`PipelineSanitizer.install_contract_checks`)
#: fingerprint every resource a stage's ``@stage_contract`` does *not*
#: declare, before and after the stage runs; any difference is a
#: contract breach. ``stats`` (every stage counts), ``instr`` (walking
#: all in-flight instructions per stage would swamp the interval
#: amortisation) and ``config`` (frozen) are left to the static pass.
_RESOURCE_PROBES = {
    "iq": lambda core: (
        core.iq.occupancy, len(core.iq.ready_heap), len(core.iq.waiting),
        core.iq.occupancy_integral,
    ),
    "ready": lambda core: bytes(core.renamer.ready),
    "rob": lambda core: tuple(
        (len(ts.rob._entries),
         ts.rob._entries[0].tseq if ts.rob._entries else -1)
        for ts in core.threads
    ),
    "lsq": lambda core: tuple(
        (ts.lsq.count, ts.lsq.last_alloc_tseq, len(ts.lsq._stores))
        for ts in core.threads
    ),
    "map_table": lambda core: tuple(
        tuple(m._map) for m in core.renamer.maps
    ),
    "free_list": lambda core: (
        tuple(core.renamer.int_free._free),
        tuple(core.renamer.fp_free._free),
    ),
    "fu": lambda core: (
        tuple(map(tuple, core.fu._units)),
        tuple(core.fu.issued_per_class),
    ),
    "dab": lambda core: (
        None if core.dab is None
        else (len(core.dab.entries), core.dab.inserts)
    ),
    "watchdog": lambda core: (
        None if core.watchdog is None
        else (core.watchdog.remaining, core.watchdog.expiries)
    ),
    "events": lambda core: (
        tuple(sorted(core._wake_events)),
        tuple(sorted(core._done_events)),
        sum(map(len, core._wake_events.values())),
        sum(map(len, core._done_events.values())),
    ),
    "thread": lambda core: tuple(
        (ts.fetch_idx, len(ts.pipe), len(ts.dispatch_buffer), ts.icount,
         ts.stalled_until, ts.committed, ts.blocked_2op)
        for ts in core.threads
    ),
    "predictor": lambda core: tuple(
        (ts.predictor.branches, ts.predictor.mispredicts)
        for ts in core.threads
    ),
    "memory": lambda core: (
        core.hierarchy.l1d.accesses, core.hierarchy.l1d.misses,
        core.hierarchy.l1i.accesses, core.hierarchy.l2.accesses,
    ),
    "core": lambda core: (
        core._seq, core._last_commit_cycle, core._events_fired,
    ),
}


class SanitizerViolation(Exception):
    """A microarchitectural invariant failed during simulation.

    Attributes:
        invariant: one of :data:`INVARIANTS`.
        cycle: simulation cycle at which the check ran.
        tid: offending hardware thread, or None for global structures.
        instr: offending :class:`DynInstr`, or None.
        detail: human-readable elaboration.
    """

    def __init__(self, invariant: str, cycle: int, tid: int | None = None,
                 instr: DynInstr | None = None, detail: str = "") -> None:
        if invariant not in INVARIANTS:
            raise ValueError(f"unknown invariant {invariant!r}")
        self.invariant = invariant
        self.cycle = cycle
        self.tid = tid
        self.instr = instr
        self.detail = detail
        parts = [f"[{invariant}] at cycle {cycle}"]
        if tid is not None:
            parts.append(f"thread {tid}")
        if instr is not None:
            parts.append(repr(instr))
        if detail:
            parts.append(detail)
        super().__init__(": ".join((parts[0], "; ".join(parts[1:])))
                         if len(parts) > 1 else parts[0])


class PipelineSanitizer:
    """Periodic whole-window invariant checker for one ``SMTProcessor``.

    The core constructs one of these when ``cfg.sanitize`` is set and
    calls :meth:`check` from ``step()`` every ``cfg.sanitize_interval``
    cycles. Each check is O(in-flight window); with the default interval
    the amortised cost stays a small fraction of simulation time.
    """

    __slots__ = (
        "core",
        "interval",
        "starvation_bound",
        "contract_checks",
        "_prev_cycles",
        "_prev_committed_total",
        "_prev_committed",
        "_prev_head_tseq",
    )

    def __init__(self, core) -> None:
        cfg = core.cfg
        self.core = core
        self.interval = cfg.sanitize_interval
        self.starvation_bound = cfg.sanitize_starvation_bound
        #: Stage-contract shadow checks performed. Kept here, not in
        #: PipelineStats: the sanitizer must not perturb the stats block
        #: it is checking.
        self.contract_checks = 0
        self._prev_cycles = 0
        self._prev_committed_total = 0
        self._prev_committed = [0] * core.num_threads
        self._prev_head_tseq = [-1] * core.num_threads

    # ------------------------------------------------------------------
    def install_contract_checks(self) -> None:
        """Wrap the core's cached stage callables with shadow checks of
        the ``@stage_contract`` declarations.

        Uses the same instance-dict interception as the ``repro.perf``
        stage timers: the class methods stay untouched, each per-core
        cached callable is replaced by a closure. On sanitizer-gated
        cycles (``cycle % interval == 0``) the closure fingerprints every
        resource the stage's contract does *not* declare, runs the stage,
        and raises ``SanitizerViolation("stage-contract", ...)`` if any
        undeclared resource changed. A watchdog recovery flush inside the
        stage legitimately rewrites everything, so a check observing a
        flush (``stats.watchdog_flushes`` moved) is abandoned.

        Must be called after the core has cached the stage callables in
        its instance dict (the ``SMTProcessor.__init__`` caching loop).
        """
        core = self.core
        for attr, stage in STAGE_CALLABLES.items():
            contract = STAGE_CONTRACTS.get(stage)
            if contract is None:
                continue
            probes = tuple(
                (res, _RESOURCE_PROBES[res])
                for res in contract.undeclared()
                if res in _RESOURCE_PROBES
            )
            if not probes:
                continue
            inner = getattr(core, attr)

            def checked(*args, _inner=inner, _probes=probes, _stage=stage,
                        _self=self, _core=core):
                cycle = args[-1]
                if cycle % _self.interval:
                    return _inner(*args)
                before = [probe(_core) for _res, probe in _probes]
                flushes = _core.stats.watchdog_flushes
                result = _inner(*args)
                if _core.stats.watchdog_flushes == flushes:
                    for (res, probe), prior in zip(_probes, before):
                        if probe(_core) != prior:
                            raise SanitizerViolation(
                                "stage-contract", cycle,
                                detail=f"stage '{_stage}' mutated "
                                       f"undeclared resource '{res}'",
                            )
                _self.contract_checks += 1
                return result

            setattr(core, attr, checked)

    # ------------------------------------------------------------------
    def check(self, cycle: int) -> None:
        """Validate every invariant; raises :class:`SanitizerViolation`."""
        self._check_program_order(cycle)
        self._check_lsq_alloc_order(cycle)
        self._check_iq(cycle)
        self._check_dab(cycle)
        self._check_commit_monotonicity(cycle)
        self.core.stats.sanitizer_checks += 1

    # ------------------------------------------------------------------
    def _check_program_order(self, cycle: int) -> None:
        """ROB entries and their rename stamps follow program order."""
        for ts in self.core.threads:
            bad = ts.rob.first_order_violation()
            if bad is not None:
                raise SanitizerViolation(
                    "rob-program-order", cycle, tid=ts.tid, instr=bad,
                    detail="ROB allocation left program order",
                )
            prev_rename = -1
            for instr in ts.rob:
                if 0 <= instr.rename_cycle < prev_rename:
                    raise SanitizerViolation(
                        "rename-program-order", cycle, tid=ts.tid,
                        instr=instr,
                        detail=f"renamed at {instr.rename_cycle} after a "
                               f"younger-renamed predecessor ({prev_rename})",
                    )
                prev_rename = max(prev_rename, instr.rename_cycle)

    def _check_lsq_alloc_order(self, cycle: int) -> None:
        """LSQ allocation happened in program order within bounds."""
        for ts in self.core.threads:
            lsq = ts.lsq
            if not lsq.alloc_order_ok:
                raise SanitizerViolation(
                    "lsq-alloc-order", cycle, tid=ts.tid,
                    detail=f"out-of-order LSQ allocation observed "
                           f"(last tseq {lsq.last_alloc_tseq})",
                )
            if not 0 <= lsq.count <= lsq.capacity:
                raise SanitizerViolation(
                    "lsq-alloc-order", cycle, tid=ts.tid,
                    detail=f"LSQ occupancy {lsq.count} outside "
                           f"[0, {lsq.capacity}]",
                )

    def _check_iq(self, cycle: int) -> None:
        """IQ occupancy, comparator budget, wakeup state and starvation."""
        core = self.core
        iq = core.iq
        if not 0 <= iq.occupancy <= iq.capacity:
            raise SanitizerViolation(
                "iq-capacity", cycle,
                detail=f"IQ occupancy {iq.occupancy} outside "
                       f"[0, {iq.capacity}]",
            )
        comparators = min(
            iq.comparators_per_entry, core.policy.max_nonready_sources
        )
        census = iq.waiting_census()
        resident = 0
        bound = self.starvation_bound
        for ts in core.threads:
            for instr in ts.rob:
                if not instr.in_iq:
                    continue
                resident += 1
                pending = len(iq.nonready_sources(instr))
                if instr.num_waiting > comparators or pending > comparators:
                    raise SanitizerViolation(
                        "iq-one-comparator", cycle, tid=ts.tid, instr=instr,
                        detail=f"entry tracks {max(instr.num_waiting, pending)}"
                               f" non-ready tags but has {comparators} "
                               "comparator(s)",
                    )
                registered = census.get(id(instr), 0)
                if instr.num_waiting < 0 or (
                    instr.num_waiting != registered
                ):
                    raise SanitizerViolation(
                        "wakeup-consistency", cycle, tid=ts.tid, instr=instr,
                        detail=f"num_waiting={instr.num_waiting} but "
                               f"{registered} wakeup registration(s)",
                    )
                if instr.num_waiting > 0 and pending == 0:
                    raise SanitizerViolation(
                        "wakeup-consistency", cycle, tid=ts.tid, instr=instr,
                        detail="waiting on tag(s) that are already ready "
                               "(missed wakeup broadcast)",
                    )
                if (
                    instr.num_waiting == 0
                    and not instr.issued
                    and instr.dispatch_cycle >= 0
                    and cycle - instr.dispatch_cycle > bound
                ):
                    raise SanitizerViolation(
                        "issue-starvation", cycle, tid=ts.tid, instr=instr,
                        detail=f"ready since dispatch at cycle "
                               f"{instr.dispatch_cycle}, unissued for more "
                               f"than {bound} cycles",
                    )
        if resident != iq.occupancy:
            raise SanitizerViolation(
                "iq-capacity", cycle,
                detail=f"IQ occupancy counter {iq.occupancy} != {resident} "
                       "resident in-flight entries",
            )

    def _check_dab(self, cycle: int) -> None:
        """DAB bounds, IQ/DAB exclusion and the ROB-oldest readiness."""
        core = self.core
        for ts in core.threads:
            for instr in ts.rob:
                if instr.in_iq and instr.in_dab:
                    raise SanitizerViolation(
                        "iq-dab-exclusion", cycle, tid=ts.tid, instr=instr,
                        detail="resident in the IQ and the deadlock-"
                               "avoidance buffer simultaneously",
                    )
        dab = core.dab
        if dab is None:
            return
        if len(dab.entries) > dab.size:
            raise SanitizerViolation(
                "iq-dab-exclusion", cycle,
                detail=f"DAB holds {len(dab.entries)} entries but has "
                       f"{dab.size} slot(s)",
            )
        bad = dab.first_invalid_entry(core.renamer.ready)
        if bad is not None:
            raise SanitizerViolation(
                "iq-dab-exclusion", cycle, tid=bad.tid, instr=bad,
                detail="DAB entry is not a flagged, unissued instruction "
                       "with all sources ready (ROB-oldest property)",
            )

    def _check_commit_monotonicity(self, cycle: int) -> None:
        """Committed counts and retirement watermarks never regress."""
        core = self.core
        stats = core.stats
        if stats.cycles < self._prev_cycles:
            raise SanitizerViolation(
                "commit-monotonicity", cycle,
                detail=f"cycle counter regressed "
                       f"{self._prev_cycles} -> {stats.cycles}",
            )
        if stats.committed_total < self._prev_committed_total:
            raise SanitizerViolation(
                "commit-monotonicity", cycle,
                detail=f"committed_total regressed "
                       f"{self._prev_committed_total} -> "
                       f"{stats.committed_total}",
            )
        if sum(stats.committed) != stats.committed_total:
            raise SanitizerViolation(
                "commit-monotonicity", cycle,
                detail=f"per-thread commits {stats.committed} do not sum "
                       f"to committed_total {stats.committed_total}",
            )
        self._prev_cycles = stats.cycles
        self._prev_committed_total = stats.committed_total
        for ts in core.threads:
            tid = ts.tid
            if stats.committed[tid] < self._prev_committed[tid]:
                raise SanitizerViolation(
                    "commit-monotonicity", cycle, tid=tid,
                    detail=f"per-thread commit count regressed "
                           f"{self._prev_committed[tid]} -> "
                           f"{stats.committed[tid]}",
                )
            self._prev_committed[tid] = stats.committed[tid]
            head = ts.rob.head
            if head is not None:
                if head.tseq < self._prev_head_tseq[tid]:
                    raise SanitizerViolation(
                        "commit-monotonicity", cycle, tid=tid, instr=head,
                        detail=f"ROB head tseq regressed below watermark "
                               f"{self._prev_head_tseq[tid]}",
                    )
                self._prev_head_tseq[tid] = head.tseq

"""Constants shared by the lint (per-file) and flow (whole-program)
static-analysis passes.

Both passes must agree on what counts as "the core cycle loop", which
packages constitute *simulation code* (where determinism is load-
bearing), and which library entry points read wall-clock time or
entropy. Keeping the catalogues here — dependency-free — lets
:mod:`repro.analysis.lint` and :mod:`repro.analysis.flow` import them
without pulling in each other.
"""

from __future__ import annotations

#: Files (path suffixes) that *are* the core cycle loop. RPR004 allows
#: cross-thread state mutation only here, and RPR010 treats them as
#: simulation code regardless of their package. ``fastforward.py``
#: bulk-mutates thread state (watchdog countdowns, stall attribution)
#: while skipping idle spans, so it is part of the loop by construction.
CYCLE_LOOP_FILES: tuple[str, ...] = (
    "pipeline/smt_core.py",
    "pipeline/fastforward.py",
)

#: Top-level ``repro`` sub-packages whose code determines simulated
#: outcomes. The RPR010 taint pass flags any call edge from these into
#: a wall-clock/entropy-tainted helper; infrastructure packages (exec,
#: perf, analysis, util) legitimately read the clock for timeouts and
#: timers and are excluded.
SIM_PACKAGES: tuple[str, ...] = (
    "pipeline",
    "core",
    "rename",
    "frontend",
    "memory",
    "branch",
    "isa",
    "trace",
    "workloads",
    "metrics",
    "config",
)

#: Wall-clock entry points flagged by RPR001 when called, and seeding
#: the RPR010 determinism taint.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

#: Entropy entry points: never deterministic, not even with a seed.
ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid4",
})

#: Everything that seeds the RPR010 determinism taint (the bare
#: ``random`` module is matched by prefix, not listed here).
TAINT_SOURCE_CALLS = WALLCLOCK_CALLS | ENTROPY_CALLS

"""Constants and CLI plumbing shared by the static-analysis passes.

The lint (per-file), flow (whole-program) and mutate (dynamic mutation
analysis) passes must agree on what counts as "the core cycle loop",
which packages constitute *simulation code* (where determinism is load-
bearing), and which library entry points read wall-clock time or
entropy. They also share command-line plumbing: file discovery,
``--select``/``--ignore`` rule filtering, ``--changed-only`` discovery
of files changed against the git merge-base, and the exit-code
vocabulary of the baseline-gated tools. Keeping all of it here —
dependency-free — lets the passes import it without pulling in each
other.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

#: Exit-code vocabulary shared by every baseline-gated CLI
#: (``lint``/``flow``/``mutate``/``perf gate``): 0 clean, 1 regression
#: (new findings / surviving mutants / slower than the blessed number),
#: 2 usage error, 3 *stale baseline* (the committed baseline records
#: findings that no longer occur — refresh it with the printed
#: ``--update-baseline`` command).
EXIT_CLEAN = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_STALE_BASELINE = 3

#: Files (path suffixes) that *are* the core cycle loop. RPR004 allows
#: cross-thread state mutation only here, and RPR010 treats them as
#: simulation code regardless of their package. ``fastforward.py``
#: bulk-mutates thread state (watchdog countdowns, stall attribution)
#: while skipping idle spans, so it is part of the loop by construction.
CYCLE_LOOP_FILES: tuple[str, ...] = (
    "pipeline/smt_core.py",
    "pipeline/fastforward.py",
)

#: Top-level ``repro`` sub-packages whose code determines simulated
#: outcomes. The RPR010 taint pass flags any call edge from these into
#: a wall-clock/entropy-tainted helper; infrastructure packages (exec,
#: perf, analysis, util) legitimately read the clock for timeouts and
#: timers and are excluded.
SIM_PACKAGES: tuple[str, ...] = (
    "pipeline",
    "core",
    "rename",
    "frontend",
    "memory",
    "branch",
    "isa",
    "trace",
    "workloads",
    "metrics",
    "config",
)

#: Wall-clock entry points flagged by RPR001 when called, and seeding
#: the RPR010 determinism taint.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

#: Entropy entry points: never deterministic, not even with a seed.
ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid4",
})

#: Everything that seeds the RPR010 determinism taint (the bare
#: ``random`` module is matched by prefix, not listed here).
TAINT_SOURCE_CALLS = WALLCLOCK_CALLS | ENTROPY_CALLS


# ----------------------------------------------------------------------
# file discovery
# ----------------------------------------------------------------------
def iter_python_files(root: Path):
    """Yield the .py files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def changed_python_files(base: str = "main") -> frozenset[Path] | None:
    """Python files changed versus ``git merge-base HEAD <base>``.

    Covers committed, staged, unstaged and untracked changes, resolved
    to absolute paths. Returns None when git is unavailable or the
    merge-base cannot be computed (not a repository, unknown ref) — the
    caller should fall back to analysing everything rather than
    silently analysing nothing.
    """
    def _git(*args: str) -> list[str] | None:
        try:
            proc = subprocess.run(
                ("git", *args), capture_output=True, text=True, check=False
            )
        except OSError:  # repro: noqa[RPR007] — no git binary; caller falls back
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout.splitlines()

    top = _git("rev-parse", "--show-toplevel")
    if not top:
        return None
    root = Path(top[0])
    merge_base = _git("merge-base", "HEAD", base)
    if not merge_base:
        return None
    listed = _git("diff", "--name-only", merge_base[0], "--")
    untracked = _git("ls-files", "--others", "--exclude-standard")
    if listed is None or untracked is None:
        return None
    return frozenset(
        (root / name).resolve()
        for name in (*listed, *untracked)
        if name.endswith(".py")
    )


def restrict_to_changed(paths: list[Path],
                        base: str = "main") -> list[Path] | None:
    """Narrow command-line roots to the files changed vs the merge-base.

    Returns the changed .py files that live under (or are) one of the
    given roots — possibly an empty list, meaning "nothing to analyse" —
    or None when git state is unavailable (with a warning on stderr),
    in which case the caller should analyse the full roots.
    """
    changed = changed_python_files(base)
    if changed is None:
        print(
            "warning: --changed-only could not resolve "
            f"`git merge-base HEAD {base}`; analysing everything",
            file=sys.stderr,
        )
        return None
    out: list[Path] = []
    for root in paths:
        resolved = root.resolve()
        for path in sorted(changed):
            if path == resolved or resolved in path.parents:
                out.append(path)
    return sorted(set(out))


# ----------------------------------------------------------------------
# rule filtering (--select / --ignore)
# ----------------------------------------------------------------------
def parse_codes(text: str | None) -> frozenset[str] | None:
    """Parse a comma-separated ``--select``/``--ignore`` code list."""
    if text is None:
        return None
    codes = frozenset(
        c.strip().upper() for c in text.split(",") if c.strip()
    )
    return codes or None


def filter_by_code(violations, select: frozenset[str] | None,
                   ignore: frozenset[str] | None):
    """Apply ``--select`` (keep only) then ``--ignore`` (drop) filters.

    ``RPR000`` (file does not parse) survives ``--ignore`` — a broken
    tree must never be reported clean — but an explicit ``--select``
    that omits it is honoured.
    """
    out = violations
    if select is not None:
        out = [v for v in out if v.code in select]
    if ignore is not None:
        out = [v for v in out if v.code == "RPR000" or v.code not in ignore]
    return list(out)

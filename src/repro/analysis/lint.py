"""Custom AST lint pass with simulator-specific rules.

The generic Python linters cannot know that this codebase is a
*deterministic* cycle-level simulator whose statistics feed paper
figures. This pass encodes those domain rules:

========  ==============================================================
code      rule
========  ==============================================================
RPR001    no wall-clock or ``random``-module calls in simulation code —
          all randomness must derive from :mod:`repro.util.rng` so a
          (seed, config, workload) triple replays bit-identically
RPR002    no mutable default arguments (shared state across calls is a
          classic source of cross-run nondeterminism)
RPR003    every ``stats.<name>`` counter incremented or assigned must be
          declared on :class:`repro.pipeline.stats.PipelineStats` —
          undeclared counters silently vanish from reports
RPR004    no cross-thread state mutation (``<x>.threads[i].attr = ...``)
          outside the core cycle loop (``pipeline/smt_core.py``) — SMT
          stages must go through the per-thread ``ThreadState`` handed
          to them, or thread isolation silently breaks
RPR005    no floating-point accumulation into cycle/IPC counters —
          cycle counts are exact integers; float drift would corrupt
          every derived IPC figure
RPR006    benchmarks must route simulation through the
          :mod:`repro.exec` executor — direct ``SMTProcessor`` /
          ``simulate_mix`` calls inside ``benchmarks/`` bypass the
          worker pool and the result cache, silently serialising the
          grid and recomputing cached points (micro-benches that time
          the simulator core itself suppress this deliberately)
RPR007    no silently-swallowed exceptions — an ``except`` body that
          neither raises, calls anything, nor records state hides
          faults the chaos suite is designed to surface; the few
          deliberate swallows (absent cache entry, heartbeat pipe
          closed by a dead parent) carry a noqa explaining why
RPR008    no list/dict/set allocation in a function marked
          ``# repro: hot`` — those run every simulated cycle, where
          CPython allocation and call overhead dominate throughput
          (docs/performance.md); the deliberate ones (rare-path or
          amortised buffers, event-bucket creation) carry a noqa
          explaining why
========  ==============================================================

A violation on line ``L`` is suppressed by a trailing
``# repro: noqa[CODE]`` (or ``# repro: noqa[CODE1,CODE2]``) comment on
that line; a bare ``# repro: noqa`` suppresses every rule on the line.
``RPR000`` reports files that fail to parse and cannot be suppressed.

The whole-program rules RPR009-RPR012 live in
:mod:`repro.analysis.flow` and run as the ``flow`` subcommand.

Usage::

    python -m repro.analysis lint src/repro           # human output
    python -m repro.analysis lint src/repro --json    # machine output
    python -m repro.analysis flow src/repro           # whole-program

Exit status is 0 when clean and 1 when any violation is reported.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.analysis.common import (
    CYCLE_LOOP_FILES,
    ENTROPY_CALLS,
    EXIT_CLEAN,
    EXIT_REGRESSION,
    EXIT_USAGE,
    WALLCLOCK_CALLS,
    filter_by_code,
    iter_python_files,
    parse_codes,
    restrict_to_changed,
)
from repro.util.encoding import stable_dumps

__all__ = [
    "LINT_RULES", "Violation", "lint_source", "lint_paths",
    "iter_python_files", "main",
]

#: code -> one-line description (kept in sync with docs/analysis.md).
LINT_RULES: dict[str, str] = {
    "RPR000": "file does not parse (reported, never suppressed)",
    "RPR001": "wall-clock/random call outside repro.util.rng",
    "RPR002": "mutable default argument",
    "RPR003": "undeclared PipelineStats counter",
    "RPR004": "cross-thread state mutation outside the core cycle loop",
    "RPR005": "floating-point accumulation into a cycle/ipc counter",
    "RPR006": "direct simulator call in benchmarks/ bypassing repro.exec",
    "RPR007": "except block silently swallows the exception",
    "RPR008": "container allocation in a `# repro: hot` function",
}

#: Files (path suffixes) allowed to call numpy's RNG machinery directly.
_RNG_EXEMPT = ("util/rng.py",)

#: Simulation entry points RPR006 flags when called from benchmarks/;
#: grids there must go through ``repro.exec.execute_jobs`` (or a driver
#: such as ``run_sweep`` that routes through it).
_DIRECT_SIM_CALLS = frozenset({
    "SMTProcessor", "simulate_mix", "simulate_mix_with_fairness",
    "simulate_benchmark",
})

#: Wall-clock / entropy entry points flagged by RPR001 when called
#: (shared with the RPR010 taint pass; see repro.analysis.common).
_WALLCLOCK_CALLS = WALLCLOCK_CALLS
_ENTROPY_CALLS = ENTROPY_CALLS

#: Constructors of mutable objects flagged by RPR002 as defaults.
_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict", "collections.deque", "collections.defaultdict",
    "collections.Counter", "collections.OrderedDict",
})

#: Counter names RPR005 protects (exact token match within the name).
_CYCLE_COUNTER_RE = re.compile(r"(?:^|_)(?:cycles?|ipc)(?:_|$)")

#: Constructor calls RPR008 flags inside hot functions (the mutable
#: containers plus ``sorted``, which materialises a fresh list).
_HOT_ALLOC_CALLS = _MUTABLE_CTORS | {"sorted"}

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Marker declaring a function per-cycle hot (RPR008 scope).
_HOT_RE = re.compile(r"#\s*repro:\s*hot\b")


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return asdict(self)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.AST) -> str | None:
    """Render an ``a.b.c`` attribute chain, or None for non-name bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _hot_lines(source: str) -> frozenset[int]:
    """Line numbers carrying a ``# repro: hot`` marker."""
    return frozenset(
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if _HOT_RE.search(text)
    )


def _noqa_map(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed codes (None means "all codes")."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        if m.group(1) is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in m.group(1).split(",") if c.strip()
            )
    return out


def is_hot_def(node: ast.FunctionDef | ast.AsyncFunctionDef,
               hot_lines: frozenset[int]) -> bool:
    """Whether any signature line of ``node`` carries ``# repro: hot``.

    The marker trails the ``def`` line or, for wrapped signatures, the
    closing line of the argument list — both sit strictly before the
    first body statement. Shared with the flow pass, which seeds its
    transitive hot closure (RPR009) from the same marker.
    """
    if not hot_lines:
        return False
    sig_end = node.body[0].lineno if node.body else node.lineno + 1
    sig_end = max(sig_end, node.lineno + 1)
    return any(line in hot_lines for line in range(node.lineno, sig_end))


def iter_container_allocations(node: ast.FunctionDef | ast.AsyncFunctionDef):
    """Yield ``(ast_node, kind)`` for each container allocation in the
    body of ``node`` — the RPR008 vocabulary, shared with RPR009's scan
    of hot-closure callees."""
    for stmt in node.body:
        for sub in ast.walk(stmt):
            kind = None
            if isinstance(sub, ast.List):
                kind = "list display"
            elif isinstance(sub, ast.Dict):
                kind = "dict display"
            elif isinstance(sub, ast.Set):
                kind = "set display"
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp)):
                kind = "comprehension"
            elif isinstance(sub, ast.GeneratorExp):
                kind = "generator expression"
            elif isinstance(sub, ast.Call):
                ctor = _dotted(sub.func)
                if ctor in _HOT_ALLOC_CALLS:
                    kind = f"{ctor}() call"
            if kind is not None:
                yield sub, kind


def _is_float_producing(node: ast.AST) -> bool:
    """Whether evaluating ``node`` plausibly yields a float (RPR005)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return True
    return False


def _thread_subscript_base(node: ast.AST) -> bool:
    """Whether an assignment target reaches through ``<x>.threads[i]``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Subscript):
            base = _dotted(node.value)
            if base is not None and (
                base == "threads" or base.endswith(".threads")
            ):
                return True
        node = node.value
    return False


def _target_counter_name(node: ast.AST) -> str | None:
    """Name of the variable/attribute an (aug)assignment targets."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _handler_swallows(body: list[ast.stmt]) -> bool:
    """Whether an except body discards the exception without acting on it.

    A body "acts" as soon as it raises, calls anything, binds or mutates
    state, or branches — any of those can observe/record the fault. What
    remains is the inert vocabulary: ``pass``/``continue``/``break``,
    bare constant expressions (docstrings, ``...``), and ``return`` of a
    constant (RPR007).
    """
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, ast.Return) and (
            stmt.value is None or isinstance(stmt.value, ast.Constant)
        ):
            continue
        return False
    return True


def _stats_attr(node: ast.AST) -> str | None:
    """Counter name when ``node`` targets ``<...>stats.<name>`` (RPR003)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    base = _dotted(node.value)
    if base is None:
        return None
    last = base.rsplit(".", 1)[-1]
    return node.attr if last == "stats" else None


def discover_declared_counters(roots: list[Path]) -> frozenset[str] | None:
    """Parse ``pipeline/stats.py`` under any root for PipelineStats fields.

    Returns None when no stats module is found (RPR003 is then skipped —
    e.g. when linting a fixture directory).
    """
    for root in roots:
        candidates: list[Path] = []
        if root.is_dir():
            candidates = sorted(root.glob("**/pipeline/stats.py"))
        elif root.name == "stats.py":
            candidates = [root]
        for candidate in candidates:
            declared = _declared_counters_from_source(
                candidate.read_text(encoding="utf-8")
            )
            if declared is not None:
                return declared
    return None


def _declared_counters_from_source(source: str) -> frozenset[str] | None:
    try:
        tree = ast.parse(source)
    except SyntaxError:  # repro: noqa[RPR007] — RPR000 reports it instead
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "PipelineStats":
            names: set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    names.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            names.add(tgt.id)
            return frozenset(names)
    return None


# ----------------------------------------------------------------------
# the per-file visitor
# ----------------------------------------------------------------------
class _FileLinter(ast.NodeVisitor):
    """Collects violations of RPR001-RPR005 for one parsed module."""

    def __init__(self, rel_path: str,
                 declared_counters: frozenset[str] | None,
                 hot_lines: frozenset[int] = frozenset()) -> None:
        self.rel_path = rel_path
        self.declared_counters = declared_counters
        self.hot_lines = hot_lines
        self.violations: list[Violation] = []
        norm = rel_path.replace("\\", "/")
        self._rng_exempt = norm.endswith(_RNG_EXEMPT)
        self._in_cycle_loop = norm.endswith(CYCLE_LOOP_FILES)
        self._in_benchmarks = "benchmarks" in norm.split("/")[:-1]

    # -- plumbing -------------------------------------------------------
    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(Violation(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    # -- RPR001: determinism --------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if not self._rng_exempt:
            for alias in node.names:
                top = alias.name.split(".", 1)[0]
                if top in ("random", "time"):
                    self._flag(
                        node, "RPR001",
                        f"import of {alias.name!r} in simulation code; "
                        "derive randomness/timing from repro.util.rng",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self._rng_exempt and node.module is not None:
            top = node.module.split(".", 1)[0]
            if top in ("random", "time"):
                self._flag(
                    node, "RPR001",
                    f"import from {node.module!r} in simulation code; "
                    "derive randomness/timing from repro.util.rng",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._rng_exempt:
            dotted = _dotted(node.func)
            if dotted is not None:
                if dotted.startswith("random.") or ".random." in dotted:
                    self._flag(
                        node, "RPR001",
                        f"call to {dotted}() bypasses the seeded "
                        "repro.util.rng derivation",
                    )
                elif dotted in _WALLCLOCK_CALLS:
                    self._flag(
                        node, "RPR001",
                        f"wall-clock call {dotted}() makes simulation "
                        "output time-dependent",
                    )
                elif dotted in _ENTROPY_CALLS:
                    self._flag(
                        node, "RPR001",
                        f"entropy call {dotted}() is nondeterministic "
                        "even under a fixed seed; derive randomness "
                        "from repro.util.rng",
                    )
        if self._in_benchmarks:
            dotted = _dotted(node.func)
            if (
                dotted is not None
                and dotted.rsplit(".", 1)[-1] in _DIRECT_SIM_CALLS
            ):
                self._flag(
                    node, "RPR006",
                    f"direct {dotted}() call in benchmarks/ bypasses the "
                    "repro.exec executor (worker pool + result cache); "
                    "route the grid through execute_jobs/run_sweep",
                )
        self.generic_visit(node)

    # -- RPR002: mutable defaults ---------------------------------------
    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                        ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(default, ast.Call):
                ctor = _dotted(default.func)
                mutable = ctor in _MUTABLE_CTORS
            if mutable:
                self._flag(
                    default, "RPR002",
                    f"mutable default argument in {node.name}(); "
                    "use None and construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_hot_allocations(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_hot_allocations(node)
        self.generic_visit(node)

    # -- RPR008: per-cycle allocations in hot functions ------------------
    def _check_hot_allocations(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        if not is_hot_def(node, self.hot_lines):
            return
        for sub, kind in iter_container_allocations(node):
            self._flag(
                sub, "RPR008",
                f"{kind} in hot function {node.name}() allocates "
                "every simulated cycle; hoist it off the per-cycle "
                "path, or mark a deliberate rare-path/amortised "
                "allocation with '# repro: noqa[RPR008] — why'",
            )

    # -- RPR003/004/005: assignments ------------------------------------
    def _check_assign_target(self, node: ast.AST, target: ast.AST,
                             value: ast.AST | None, augmented: bool) -> None:
        counter = _stats_attr(target)
        if (
            counter is not None
            and self.declared_counters is not None
            and counter not in self.declared_counters
        ):
            self._flag(
                node, "RPR003",
                f"stats counter {counter!r} is not declared on "
                "PipelineStats; add the field or fix the typo",
            )
        if not self._in_cycle_loop and _thread_subscript_base(target):
            self._flag(
                node, "RPR004",
                "cross-thread state mutation outside the core cycle "
                "loop; operate on the ThreadState passed to this stage",
            )
        if augmented and value is not None:
            name = _target_counter_name(target)
            if (
                name is not None
                and _CYCLE_COUNTER_RE.search(name)
                and _is_float_producing(value)
            ):
                self._flag(
                    node, "RPR005",
                    f"floating-point accumulation into counter {name!r}; "
                    "cycle/ipc counters must stay exact integers",
                )

    # -- RPR007: swallowed exceptions -----------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _handler_swallows(node.body):
            caught = _dotted(node.type) if node.type is not None else None
            if caught is None and isinstance(node.type, ast.Tuple):
                names = [_dotted(e) for e in node.type.elts]
                if all(n is not None for n in names):
                    caught = "(" + ", ".join(names) + ")"
            what = f"except {caught}" if caught else "bare except"
            self._flag(
                node, "RPR007",
                f"{what} swallows the exception without raising, "
                "logging or recording anything; handle it, or mark a "
                "deliberate swallow with '# repro: noqa[RPR007] — why'",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_target(node, target, None, augmented=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_assign_target(
            node, node.target, node.value,
            augmented=isinstance(node.op, (ast.Add, ast.Sub)),
        )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                declared_counters: frozenset[str] | None = None,
                ) -> list[Violation]:
    """Lint one module's source text; returns unsuppressed violations."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Violation(
            path=path, line=exc.lineno or 1, col=exc.offset or 0,
            code="RPR000", message=f"syntax error: {exc.msg}",
        )]
    linter = _FileLinter(path, declared_counters, _hot_lines(source))
    linter.visit(tree)
    noqa = _noqa_map(source)
    out = []
    for v in linter.violations:
        codes = noqa.get(v.line, frozenset())
        if codes is None or v.code in codes:
            continue
        out.append(v)
    out.sort(key=lambda v: (v.line, v.col, v.code))
    return out


def lint_paths(paths: list[Path],
               declared_counters: frozenset[str] | None = None,
               ) -> list[Violation]:
    """Lint every Python file under the given files/directories."""
    if declared_counters is None:
        declared_counters = discover_declared_counters(paths)
    violations: list[Violation] = []
    for root in paths:
        for path in iter_python_files(root):
            violations.extend(lint_source(
                path.read_text(encoding="utf-8"),
                path=str(path),
                declared_counters=declared_counters,
            ))
    return violations


def _add_shared_flags(p: argparse.ArgumentParser) -> None:
    """Flags common to the lint and flow CLIs (see docs/analysis.md)."""
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit machine-readable JSON on stdout")
    p.add_argument("--select", default=None, metavar="CODES",
                   help="comma-separated rule codes to report "
                        "(e.g. RPR001,RPR007); default: all")
    p.add_argument("--ignore", default=None, metavar="CODES",
                   help="comma-separated rule codes to suppress")
    p.add_argument("--changed-only", action="store_true",
                   help="only analyse files changed vs "
                        "`git merge-base HEAD <base>`")
    p.add_argument("--base", default="main", metavar="REF",
                   help="base ref for --changed-only (default: main)")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.analysis`` entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simulator-specific static analysis (see docs/analysis.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("lint", help="run the per-file AST lint pass")
    p.add_argument("paths", nargs="+", type=Path,
                   help="files or directories to lint")
    _add_shared_flags(p)
    f = sub.add_parser(
        "flow", help="run the whole-program flow pass (RPR009-RPR012)"
    )
    f.add_argument("paths", nargs="+", type=Path,
                   help="package roots to analyse (e.g. src/repro)")
    _add_shared_flags(f)
    f.add_argument("--baseline", type=Path, default=None,
                   help="suppress findings recorded in this baseline "
                        "file (default: results/flow_baseline.json at "
                        "the repository root, when present)")
    f.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline, report everything")
    f.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline file with the current "
                        "findings and exit 0")
    r = sub.add_parser(
        "races",
        help="run the whole-program concurrency pass (RPR014-RPR017)",
    )
    r.add_argument("paths", nargs="+", type=Path,
                   help="package roots to analyse (e.g. src/repro)")
    _add_shared_flags(r)
    r.add_argument("--baseline", type=Path, default=None,
                   help="suppress findings recorded in this baseline "
                        "file (default: results/races_baseline.json at "
                        "the repository root, when present)")
    r.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline, report everything")
    r.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline file with the current "
                        "findings and exit 0")
    m = sub.add_parser(
        "mutate",
        help="mutation analysis: measure oracle detection power",
    )
    from repro.analysis.mutate import add_mutate_args

    add_mutate_args(m)
    args = parser.parse_args(argv)

    for path in args.paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE
    if args.command == "flow":
        # Imported here: the flow engine is heavier than the per-file
        # pass and `lint` invocations shouldn't pay for it.
        from repro.analysis.flow import run_flow_cli

        return run_flow_cli(args)
    if args.command == "races":
        from repro.analysis.races import run_races_cli

        return run_races_cli(args)
    if args.command == "mutate":
        from repro.analysis.mutate import run_mutate_cli

        return run_mutate_cli(args)
    paths = list(args.paths)
    # RPR003 needs the PipelineStats declarations even when the change
    # set does not include pipeline/stats.py itself.
    declared = discover_declared_counters(paths)
    if args.changed_only:
        narrowed = restrict_to_changed(paths, args.base)
        if narrowed is not None:
            paths = narrowed
    violations = filter_by_code(
        lint_paths(paths, declared_counters=declared) if paths else [],
        parse_codes(args.select), parse_codes(args.ignore),
    )
    if args.as_json:
        sys.stdout.write(stable_dumps(
            {
                "violations": [v.as_dict() for v in violations],
                "count": len(violations),
                "rules": LINT_RULES,
            },
        ))
    else:
        for v in violations:
            print(v.render())
        if violations:
            print(f"{len(violations)} violation(s) found")
    return EXIT_REGRESSION if violations else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

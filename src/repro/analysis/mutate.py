"""Mutation analysis: measure the detection power of the oracles.

The repo has three correctness oracle layers — the RPR static rules,
the runtime sanitizer with its stage contracts, and the tier-1 test
suite — but nothing that measures what semantic faults they actually
catch. This engine injects microarchitecture-aware faults (see
:mod:`repro.analysis.mutops` for the operator table) into the
load-bearing core of the simulator and reports which oracle layer, if
any, notices.

Pipeline:

1. **Site selection.** The whole-program flow analysis builds the call
   graph; mutation targets are the functions in the transitive closure
   of the ``# repro: hot`` markers and the ``@stage_contract`` stages,
   restricted to the files under the requested roots. Mutants land in
   code that provably runs every simulated cycle — not dead code.
2. **Mutant identity.** Each site gets a deterministic content-hash id
   over ``(path, node span, operator)``, stable across checkouts.
3. **Execution.** Each ``(mutant, oracle layer)`` pair becomes a
   content-hashed :class:`repro.exec.WorkJob` riding the existing farm
   (LJF scheduling, per-job timeout, hung-worker watchdog, journal).
   Mutants are applied by **in-memory AST rewrite + import hook** in a
   forked sandbox — no source file is ever modified on disk. Outcomes
   are cached content-addressed, so a warm re-run executes nothing.
4. **Oracle cascade.** Layers run as waves over the still-alive
   mutants, so every kill is attributed to exactly one (the first)
   layer::

       static    lint/flow finding set changes (differential over
                 comment-normalised source) or the mutant fails to
                 compile
       sanitizer a sanitized short simulation raises
                 SanitizerViolation (invariants + stage contracts)
       stats     PipelineStats digests of short simulations diverge
                 from the cached golden run, or the mutant crashes
       tests     the pinned tier-1 test subset fails
       timeout   the mutant wedges and is reaped (sandbox deadline or
                 the pool watchdog)

5. **Report.** A per-layer kill matrix, a per-operator breakdown, and
   a surviving-mutant list with minimized repro commands, gated
   against the committed byte-stable ``results/mutation_baseline.json``.

Usage::

    python -m repro.analysis mutate src/repro/pipeline --jobs 8
    python -m repro.analysis mutate src/repro/pipeline --json
    python -m repro.analysis mutate src/repro/pipeline --only m0123abcd4567
    python -m repro.analysis mutate src/repro/pipeline \\
        --sample 25 --seed 2006 --require-all-killed   # the CI smoke
    python -m repro.analysis mutate src/repro/pipeline --update-baseline
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import select
import signal
import subprocess
import sys
from pathlib import Path
from time import monotonic as _monotonic  # repro: noqa[RPR001]

from repro.analysis.common import (
    EXIT_CLEAN,
    EXIT_REGRESSION,
    EXIT_STALE_BASELINE,
    EXIT_USAGE,
)
from repro.analysis.mutops import (
    OPERATORS,
    MutationSite,
    SiteNotFound,
    apply_to_module,
    sites_for_function,
)
from repro.exec.jobs import WorkJob, hash_payload
from repro.exec.journal import journal_dir_from_env
from repro.exec.pool import ExecutorConfig, execute_jobs
from repro.util.encoding import stable_dumps

#: Oracle layers, in cascade order. ``timeout`` is not a wave of its
#: own: any layer's job that wedges attributes its kill here.
LAYERS: tuple[str, ...] = ("static", "sanitizer", "stats", "tests")

#: Per-mutant sandbox deadline (seconds) unless ``--timeout`` says
#: otherwise. The pool-level timeout backstops it at 2x + slack, so a
#: wedged *worker* (not just a wedged mutant) is still reaped.
DEFAULT_TIMEOUT = 120.0

#: Short simulations driven by the sanitizer and stats kernels: both
#: schedulers, a 2-thread and a 4-thread mix, small machines. Budgets
#: are tiny — the point is hitting every pipeline mechanism, not
#: statistical confidence.
SCENARIOS: tuple[dict[str, object], ...] = (
    {"name": "trad-2t", "scheduler": "traditional", "iq": 16,
     "mix": ["gcc", "mcf"], "max_insns": 1200, "seed": 0},
    {"name": "2op-2t", "scheduler": "2op_ooo", "iq": 16,
     "mix": ["gcc", "mcf"], "max_insns": 1200, "seed": 0},
    {"name": "2op-4t", "scheduler": "2op_ooo", "iq": 8,
     "mix": ["gzip", "art", "swim", "crafty"], "max_insns": 800,
     "seed": 1,
     "config": {"int_phys_regs": 192, "fp_phys_regs": 192}},
)

#: Pinned tier-1 subset for the ``tests`` layer: the fast,
#: pipeline-semantics-heavy files. Deliberately not the whole suite —
#: the cascade already killed most mutants by now and this layer pays
#: a fresh interpreter per mutant.
PINNED_TESTS: tuple[str, ...] = (
    "tests/test_iq.py",
    "tests/test_dispatch_policies.py",
    "tests/test_smt_core.py",
    "tests/test_fetch.py",
    "tests/test_rename.py",
    "tests/test_stats.py",
    "tests/test_stat_accounting.py",
)

#: Relative job costs for longest-job-first ordering.
_LAYER_COST = {"static": 2, "sanitizer": 3, "stats": 3, "tests": 10}


def _repo_root() -> Path:
    """Repository root in a source checkout (three levels up)."""
    return Path(__file__).resolve().parents[3]


def _package_root(path: Path) -> Path:
    """Ascend from a target to the top of its package (e.g. src/repro)."""
    p = path.resolve()
    if p.is_file():
        p = p.parent
    while (p.parent / "__init__.py").exists():
        p = p.parent
    return p


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# in-memory mutant application (import hook)
# ----------------------------------------------------------------------
class _MutantLoader:
    def __init__(self, code: object) -> None:
        self._code = code

    def create_module(self, spec: object):  # default semantics
        return None

    def exec_module(self, module: object) -> None:
        exec(self._code, module.__dict__)


class _MutantFinder:
    """Meta-path finder serving exactly one mutated module."""

    def __init__(self, fullname: str, code: object, origin: str) -> None:
        self._fullname = fullname
        self._code = code
        self._origin = origin

    def find_spec(self, name: str, path: object, target: object = None):
        if name != self._fullname:
            return None
        import importlib.util

        spec = importlib.util.spec_from_loader(
            name, _MutantLoader(self._code), origin=self._origin
        )
        # Keep ``module.__file__`` pointing at the real (unmutated)
        # source so tracebacks and coverage stay navigable.
        spec.has_location = True
        return spec


def mutated_source(spec: dict[str, object],
                   repo_root: Path | None = None) -> tuple[str, str]:
    """(normalised original, mutated) source for the spec's module.

    Both sides are ``ast.unparse`` round-trips of the same parse, so
    comment-borne markers (``# repro: hot``, ``noqa``) are lost
    *equally* — the static oracle diffs like against like.
    """
    root = repo_root if repo_root is not None else _repo_root()
    source = (root / str(spec["path"])).read_text(encoding="utf-8")
    baseline = ast.unparse(ast.parse(source))
    mutated = ast.unparse(apply_to_module(ast.parse(source), spec))
    return baseline, mutated


def install_mutant(spec: dict[str, object],
                   repo_root: Path | None = None) -> None:
    """Serve the mutated module to all future imports of this process.

    Compiles the mutated AST directly (never touching the disk), puts
    a meta-path finder for the one target module in front, and purges
    every already-imported ``repro`` module so nothing stale survives.
    Call only in a sacrificial process — a forked sandbox child or a
    dedicated pytest run — never in a process that will do anything
    else afterwards.
    """
    root = repo_root if repo_root is not None else _repo_root()
    abs_path = root / str(spec["path"])
    tree = ast.parse(abs_path.read_text(encoding="utf-8"))
    mutated = apply_to_module(tree, spec)
    code = compile(mutated, str(abs_path), "exec")
    sys.meta_path.insert(
        0, _MutantFinder(str(spec["module"]), code, str(abs_path))
    )
    for name in list(sys.modules):
        if name == "repro" or name.startswith("repro."):
            del sys.modules[name]


def install_mutant_from_env() -> None:
    """conftest.py hook: install the mutant named by ``REPRO_MUTANT``.

    The ``tests`` oracle layer runs the pinned pytest subset in a fresh
    interpreter with ``REPRO_MUTANT`` set to the mutant's JSON spec;
    the repo-root ``conftest.py`` calls this before any test module is
    imported. A no-op when the variable is unset.
    """
    blob = os.environ.get("REPRO_MUTANT")
    if not blob:
        return
    install_mutant(json.loads(blob))


# ----------------------------------------------------------------------
# forked sandbox: a mutant never runs in a long-lived process
# ----------------------------------------------------------------------
def _fork_run(fn, timeout_s: float) -> tuple[str, object]:
    """Run ``fn()`` in a forked child; (status, value) with status in
    ``ok`` / ``error`` / ``timeout``.

    Plain ``os.fork`` rather than multiprocessing: the pool's workers
    are daemonic and may not spawn multiprocessing children, but the
    sandbox must exist even there — a mutant import poisons whatever
    process performs it. The child reports a JSON blob over a pipe and
    exits; past the deadline it is SIGKILLed and reported as a
    timeout. Stdout/stderr are routed to /dev/null so mutant noise
    cannot corrupt the worker protocol.
    """
    r, w = os.pipe()
    pid = os.fork()
    if pid == 0:
        status = 0
        try:
            os.close(r)
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, 1)
            os.dup2(devnull, 2)
            out: dict[str, object] = {"ok": fn()}
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            out = {"error": f"{type(exc).__name__}: {exc}"}
            status = 1
        try:
            os.write(w, json.dumps(out).encode("utf-8"))
        except Exception:  # repro: noqa[RPR007] — parent gone; just exit
            pass
        os._exit(status)
    os.close(w)
    deadline = _monotonic() + timeout_s
    chunks: list[bytes] = []
    timed_out = False
    try:
        while True:
            remaining = deadline - _monotonic()
            if remaining <= 0.0:
                timed_out = True
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:  # repro: noqa[RPR007] — child already exited; timeout stands
                    pass
                break
            ready, _, _ = select.select([r], [], [], min(remaining, 0.25))
            if not ready:
                continue
            chunk = os.read(r, 1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        os.close(r)
        try:
            os.waitpid(pid, 0)
        except ChildProcessError:  # repro: noqa[RPR007] — already reaped elsewhere
            pass
    if timed_out:
        return "timeout", None
    if not chunks:
        return "error", "mutant child died without reporting"
    try:
        out = json.loads(b"".join(chunks).decode("utf-8"))
    except ValueError:
        return "error", "mutant child wrote a torn result"
    if "ok" in out:
        return "ok", out["ok"]
    return "error", str(out.get("error", "unknown"))


# ----------------------------------------------------------------------
# simulation scenarios + stats digests
# ----------------------------------------------------------------------
def _scenario_config(scen: dict[str, object], sanitize: bool):
    from repro.config.presets import small_machine

    extra: dict[str, object] = dict(scen.get("config", {}))
    if sanitize:
        extra.update(sanitize=True, sanitize_interval=16)
    return small_machine(
        iq_size=int(scen["iq"]), scheduler=str(scen["scheduler"]), **extra
    )


def _run_scenario(scen: dict[str, object], sanitize: bool):
    from repro.experiments.runner import simulate_mix

    return simulate_mix(
        tuple(str(b) for b in scen["mix"]),
        _scenario_config(scen, sanitize),
        max_insns=int(scen["max_insns"]),
        seed=int(scen["seed"]),
    )


def _result_digest(result) -> str:
    """Exact digest of a SimResult; floats via repr, so bit-exact."""
    return hash_payload({
        "benchmarks": list(result.benchmarks),
        "scheduler": result.scheduler,
        "iq_size": result.iq_size,
        "cycles": result.cycles,
        "committed": list(result.committed),
        "extras": {k: repr(float(v))
                   for k, v in sorted(result.extras.items())},
    })


def _scenario_digests(sanitize: bool = False) -> dict[str, str]:
    return {
        str(scen["name"]): _result_digest(_run_scenario(scen, sanitize))
        for scen in SCENARIOS
    }


# ----------------------------------------------------------------------
# oracle-layer kernels (WorkJob entry points; run inside pool workers)
# ----------------------------------------------------------------------
def _static_findings(pkg_root: Path, target: Path, source: str,
                     repo_root: Path) -> list[list[str]]:
    """Sorted (path, code, message) triples for the tree with ``target``
    replaced by ``source`` in memory. Paths repo-root-relative."""
    from repro.analysis.flow import flow_paths
    from repro.analysis.lint import discover_declared_counters, lint_source
    from repro.analysis.races import races_paths

    declared = discover_declared_counters([pkg_root])
    triples: set[tuple[str, str, str]] = set()
    rel = target.resolve().relative_to(repo_root).as_posix()
    for v in lint_source(source, str(target), declared_counters=declared):
        triples.add((rel, v.code, v.message))
    overrides = {str(target.resolve()): source}
    for v in flow_paths([pkg_root], overrides=overrides):
        vrel = Path(v.path).resolve().relative_to(repo_root).as_posix()
        triples.add((vrel, v.code, v.message))
    for v in races_paths([pkg_root], overrides=overrides):
        vrel = Path(v.path).resolve().relative_to(repo_root).as_posix()
        triples.add((vrel, v.code, v.message))
    return [list(t) for t in sorted(triples)]


def _kill(layer: str, detail: str) -> dict[str, object]:
    return {"outcome": "killed", "killed_by": layer, "detail": detail}


_SURVIVED: dict[str, object] = {
    "outcome": "survived", "killed_by": None, "detail": "",
}


def _kernel_static(payload: dict[str, object]) -> dict[str, object]:
    repo_root = _repo_root()
    spec = payload["mutant"]
    target = repo_root / str(spec["path"])
    pkg_root = repo_root / str(payload["pkg_root"])
    try:
        _baseline_src, mutated_src = mutated_source(spec, repo_root)
    except SiteNotFound as exc:
        raise ValueError(f"stale mutation site: {exc}") from exc
    try:
        compile(mutated_src, str(target), "exec")
    except (SyntaxError, ValueError) as exc:
        return _kill("static", f"mutant does not compile: {exc}")
    base = {tuple(t) for t in payload["static_base"]}
    mut = {tuple(t)
           for t in _static_findings(pkg_root, target, mutated_src,
                                     repo_root)}
    new = sorted(mut - base)
    if new:
        shown = "; ".join(f"{p}: {c} {m[:80]}" for p, c, m in new[:3])
        return _kill("static", f"{len(new)} new finding(s): {shown}")
    return dict(_SURVIVED)


def _kernel_sanitizer(payload: dict[str, object]) -> dict[str, object]:
    spec = payload["mutant"]

    def body() -> dict[str, object]:
        install_mutant(spec)
        for scen in payload["scenarios"]:
            _run_scenario(scen, sanitize=True)
        return {}

    status, value = _fork_run(body, float(payload["timeout"]))
    if status == "timeout":
        return _kill("timeout", "sanitized run wedged; sandbox deadline")
    if status == "error" and "SanitizerViolation" in str(value):
        return _kill("sanitizer", str(value)[:200])
    # Other crashes fall through: the stats layer owns them, so the
    # attribution stays "what the sanitizer specifically caught".
    return dict(_SURVIVED)


def _kernel_stats(payload: dict[str, object]) -> dict[str, object]:
    spec = payload["mutant"]

    def body() -> dict[str, object]:
        install_mutant(spec)
        return {str(scen["name"]): _result_digest(_run_scenario(scen, False))
                for scen in payload["scenarios"]}

    status, value = _fork_run(body, float(payload["timeout"]))
    if status == "timeout":
        return _kill("timeout", "simulation wedged; sandbox deadline")
    if status == "error":
        return _kill("stats", f"mutant crashed: {str(value)[:200]}")
    golden = dict(payload["golden"])
    diverged = sorted(
        name for name, digest in dict(value).items()
        if golden.get(name) != digest
    )
    if diverged:
        return _kill(
            "stats",
            "PipelineStats diverged on scenario(s): " + ", ".join(diverged),
        )
    return dict(_SURVIVED)


def _kernel_tests(payload: dict[str, object]) -> dict[str, object]:
    repo_root = _repo_root()
    spec = payload["mutant"]
    env = dict(os.environ)
    src = str(repo_root / "src")
    pythonpath = env.get("PYTHONPATH", "")
    if src not in pythonpath.split(os.pathsep):
        env["PYTHONPATH"] = (f"{src}{os.pathsep}{pythonpath}"
                             if pythonpath else src)
    env["REPRO_MUTANT"] = json.dumps(spec, sort_keys=True)
    cmd = [sys.executable, "-m", "pytest", "-x", "-q",
           "-p", "no:cacheprovider", *payload["tests"]]
    try:
        proc = subprocess.run(
            cmd, cwd=repo_root, env=env, capture_output=True, text=True,
            timeout=float(payload["timeout"]),
        )
    except subprocess.TimeoutExpired:
        return _kill("timeout", "pinned test subset wedged")
    if proc.returncode != 0:
        tail = (proc.stdout or proc.stderr).strip().splitlines()
        return _kill("tests", "; ".join(tail[-3:])[:240])
    return dict(_SURVIVED)


_KERNELS = {
    "static": _kernel_static,
    "sanitizer": _kernel_sanitizer,
    "stats": _kernel_stats,
    "tests": _kernel_tests,
}


def run_layer_job(payload: dict[str, object]) -> dict[str, object]:
    """WorkJob entry point: one (mutant, oracle layer) evaluation."""
    out = _KERNELS[str(payload["layer"])](payload)
    out["mutant"] = dict(payload["mutant"])["id"]
    out["layer"] = payload["layer"]
    return out


# ----------------------------------------------------------------------
# outcome cache (content-addressed, WorkJob hash -> outcome dict)
# ----------------------------------------------------------------------
class MutationCache:
    """Tiny JSON-per-entry store; the warm-rerun-zero-work invariant.

    Keys are :meth:`WorkJob.content_hash` values, which cover the
    mutant spec, the target file's content hash and the tree hash —
    any source change invalidates exactly the affected entries.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, object] | None:
        path = self._path(key)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):  # repro: noqa[RPR007] — absent/corrupt entry is a cache miss
            return None

    def put(self, key: str, outcome: dict[str, object]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(stable_dumps(outcome), encoding="utf-8")
        os.replace(tmp, path)


def default_mutation_cache_dir() -> Path:
    return Path("results") / "cache" / "mutation"


def default_baseline_path() -> Path:
    return _repo_root() / "results" / "mutation_baseline.json"


# ----------------------------------------------------------------------
# site selection over the flow call graph
# ----------------------------------------------------------------------
def select_sites(paths: list[Path]) -> list[MutationSite]:
    """Enumerate mutation sites in the hot/stage closure under ``paths``.

    Builds the flow project over the whole containing package (the
    call graph needs every module), seeds the closure from every
    ``# repro: hot`` function and every ``@stage_contract`` stage, and
    keeps the sites whose file lives under one of the requested roots.
    The closure code is one nobody suppresses, so no edge is pruned.
    """
    from repro.analysis.flow import _closure, build_project

    repo_root = _repo_root()
    pkg_root = _package_root(Path(paths[0]))
    project = build_project([pkg_root])
    seeds = sorted(
        (fn for fn in project.funcs.values()
         if fn.hot or fn.contract is not None),
        key=lambda fn: fn.uid,
    )
    reached = _closure(project, seeds, "RPR999")
    wanted = []
    for p in paths:
        rp = Path(p).resolve()
        wanted.append(rp)
    sites: dict[str, MutationSite] = {}
    for fn, _chain in reached.values():
        fn_path = Path(fn.path).resolve()
        if not any(fn_path == w or w in fn_path.parents for w in wanted):
            continue
        rel = fn_path.relative_to(repo_root).as_posix()
        for site in sites_for_function(
            fn.node, rel, fn.module.dotted, fn.qual
        ):
            # Nested defs are reachable both as their own FuncInfo and
            # as descendants of their enclosing function's AST; the
            # content-hash id collapses the duplicates.
            sites.setdefault(site.mutant_id, site)
    return sorted(
        sites.values(), key=lambda s: (s.path, s.span, s.op, s.slot)
    )


def sample_ids(ids: list[str], sample: int, seed: int) -> list[str]:
    """Deterministic pseudo-random sample: sort by a seeded hash."""
    ranked = sorted(
        ids, key=lambda i: _sha256(f"{seed}:{i}")
    )
    return sorted(ranked[:sample])


def _tree_sha(pkg_root: Path) -> str:
    """Digest over every source file the dynamic oracles can reach."""
    entries = []
    for path in sorted(pkg_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        entries.append([
            path.relative_to(pkg_root).as_posix(),
            _sha256(path.read_text(encoding="utf-8")),
        ])
    return hash_payload({"files": entries})


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _layer_payload(layer: str, site: MutationSite, context: dict,
                   ) -> dict[str, object]:
    payload: dict[str, object] = {
        "layer": layer,
        "mutant": site.spec(),
        "source_sha": context["source_shas"][site.path],
        "timeout": context["timeout"],
    }
    if layer == "static":
        payload["pkg_root"] = context["pkg_root_rel"]
        payload["static_base"] = context["static_base"][site.path]
    elif layer in ("sanitizer", "stats"):
        payload["scenarios"] = [dict(s) for s in SCENARIOS]
        payload["tree_sha"] = context["tree_sha"]
        if layer == "stats":
            payload["golden"] = context["golden"]
    elif layer == "tests":
        payload["tests"] = list(PINNED_TESTS)
        payload["tests_sha"] = context["tests_sha"]
        payload["tree_sha"] = context["tree_sha"]
    return payload


def _pinned_tests_sha(repo_root: Path) -> str:
    """Digest of the pinned test files themselves, so strengthening a
    test invalidates cached ``survived`` outcomes for the tests layer
    (the tree_sha only covers the mutated package)."""
    return hash_payload({
        "files": [
            [rel, _sha256((repo_root / rel).read_text(encoding="utf-8"))]
            for rel in PINNED_TESTS
        ],
    })


def _build_context(paths: list[Path], sites: list[MutationSite],
                   timeout: float, cache: MutationCache | None,
                   ) -> dict[str, object]:
    """Per-run invariants shared by every job payload.

    The static baselines and golden stats digests are themselves
    cached content-addressed, so warm re-runs skip even these.
    """
    repo_root = _repo_root()
    pkg_root = _package_root(Path(paths[0]))
    tree_sha = _tree_sha(pkg_root)
    source_shas: dict[str, str] = {}
    static_base: dict[str, list] = {}
    for rel in sorted({s.path for s in sites}):
        target = repo_root / rel
        source = target.read_text(encoding="utf-8")
        source_shas[rel] = _sha256(source)
        key = hash_payload({
            "kind": "static-base", "path": rel,
            "source_sha": source_shas[rel], "tree_sha": tree_sha,
        })
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            static_base[rel] = hit["triples"]
            continue
        normalised = ast.unparse(ast.parse(source))
        triples = _static_findings(pkg_root, target, normalised, repo_root)
        static_base[rel] = triples
        if cache is not None:
            cache.put(key, {"triples": triples})
    golden_key = hash_payload({
        "kind": "golden", "tree_sha": tree_sha,
        "scenarios": [dict(s) for s in SCENARIOS],
    })
    hit = cache.get(golden_key) if cache is not None else None
    if hit is not None:
        golden = dict(hit["digests"])
    else:
        golden = _scenario_digests(sanitize=False)
        if cache is not None:
            cache.put(golden_key, {"digests": golden})
    return {
        "pkg_root_rel": pkg_root.relative_to(repo_root).as_posix(),
        "tree_sha": tree_sha,
        "tests_sha": _pinned_tests_sha(repo_root),
        "source_shas": source_shas,
        "static_base": static_base,
        "golden": golden,
        "timeout": timeout,
    }


def run_cascade(paths: list[Path], sites: list[MutationSite],
                jobs: int, timeout: float,
                cache: MutationCache | None,
                ) -> tuple[dict[str, dict[str, object]], int, int]:
    """Run the oracle cascade; (outcomes by mutant id, executed, cached).

    Each wave evaluates one layer over the mutants still alive, via
    content-hashed WorkJobs on the executor farm. A job that fails at
    the *infrastructure* level is folded into the cascade: timed-out /
    hung workers are timeout kills (that is the wedged-mutant path);
    any other worker death is a kill attributed to the current layer.
    """
    context = _build_context(paths, sites, timeout, cache)
    by_id = {s.mutant_id: s for s in sites}
    alive = sorted(by_id)
    outcomes: dict[str, dict[str, object]] = {}
    executed = 0
    cached = 0
    for layer in LAYERS:
        if not alive:
            break
        work: list[tuple[str, WorkJob]] = []
        for mid in alive:
            payload = _layer_payload(layer, by_id[mid], context)
            job = WorkJob(
                entry="repro.analysis.mutate:run_layer_job",
                payload=payload, cost=_LAYER_COST[layer], kind="mutate",
            )
            work.append((mid, job))
        pending: list[tuple[str, WorkJob]] = []
        for mid, job in work:
            hit = cache.get(job.content_hash()) if cache is not None else None
            if hit is not None:
                outcomes[mid] = hit
                cached += 1
            else:
                pending.append((mid, job))
        if pending:
            cfg = ExecutorConfig(
                jobs=jobs,
                timeout=timeout * 2 + 30.0,
                retries=0,
                tolerate_failures=True,
                journal_dir=journal_dir_from_env(),
            )
            results, report = execute_jobs(
                [job for _, job in pending], cfg
            )
            executed += len(pending)
            failed_by_hash = {
                f.job.content_hash(): f.message
                for f in report.job_failures
            }
            for (mid, job), result in zip(pending, results):
                if result is None:
                    message = failed_by_hash.get(
                        job.content_hash(), "worker died"
                    )
                    wedged = ("timed out" in message or "hung" in message)
                    outcome = (
                        _kill("timeout", f"reaped by the pool: {message}")
                        if wedged else
                        _kill(layer, f"worker crashed: {message[:200]}")
                    )
                    outcome["mutant"] = mid
                    outcome["layer"] = layer
                else:
                    outcome = dict(result)
                outcomes[mid] = outcome
                if cache is not None:
                    cache.put(job.content_hash(), outcome)
        alive = sorted(
            mid for mid in alive
            if outcomes[mid]["outcome"] == "survived"
        )
    for mid in alive:
        outcomes[mid] = dict(_SURVIVED)
        outcomes[mid]["mutant"] = mid
    return outcomes, executed, cached


# ----------------------------------------------------------------------
# report + baseline
# ----------------------------------------------------------------------
def build_report(paths: list[Path], sites: list[MutationSite],
                 outcomes: dict[str, dict[str, object]],
                 sample: int | None, seed: int) -> dict[str, object]:
    """Assemble the deterministic report body.

    Deliberately free of execution provenance (executed/cached counts,
    timings): a cold run and a warm re-run of the same tree must emit
    byte-identical JSON.
    """
    by_id = {s.mutant_id: s for s in sites}
    matrix = {layer: 0 for layer in (*LAYERS, "timeout")}
    operators: dict[str, dict[str, int]] = {
        op: {"killed": 0, "total": 0} for op in OPERATORS
    }
    mutants: dict[str, dict[str, object]] = {}
    survivors = []
    for mid in sorted(by_id):
        site = by_id[mid]
        out = outcomes[mid]
        operators[site.op]["total"] += 1
        entry: dict[str, object] = {
            "path": site.path, "line": site.line, "qual": site.qual,
            "op": site.op, "before": site.before, "after": site.after,
            "outcome": out["outcome"], "killed_by": out["killed_by"],
            "detail": str(out.get("detail", ""))[:240],
        }
        mutants[mid] = entry
        if out["outcome"] == "killed":
            matrix[str(out["killed_by"])] += 1
            operators[site.op]["killed"] += 1
        else:
            survivors.append(mid)
    total = len(by_id)
    killed = total - len(survivors)
    return {
        "schema": 1,
        "targets": sorted({s.path for s in sites}),
        "sample": sample,
        "seed": seed,
        "total": total,
        "killed": killed,
        "survived": len(survivors),
        "score": (round(killed / total, 4) if total else 1.0),
        "kill_matrix": matrix,
        "operators": operators,
        "survivors": survivors,
        "mutants": mutants,
    }


def encode_baseline(report: dict[str, object],
                    allowlist: dict[str, str]) -> dict[str, object]:
    """Committed-baseline body (byte-stable via ``stable_dumps``)."""
    mutants = report["mutants"]
    kept = {
        mid: reason for mid, reason in sorted(allowlist.items())
        if mid in mutants
    }
    return {
        "version": 1,
        "targets": report["targets"],
        "total": report["total"],
        "killed": report["killed"],
        "score": report["score"],
        "kill_matrix": report["kill_matrix"],
        "allowlist": kept,
        "survivors": [
            {
                "id": mid,
                "path": mutants[mid]["path"],
                "line": mutants[mid]["line"],
                "qual": mutants[mid]["qual"],
                "op": mutants[mid]["op"],
                "before": mutants[mid]["before"],
                "after": mutants[mid]["after"],
            }
            for mid in report["survivors"]
        ],
    }


def load_baseline(path: Path) -> dict[str, object]:
    return json.loads(path.read_text(encoding="utf-8"))


def _repro_command(paths: list[Path], mid: str) -> str:
    shown = " ".join(str(p) for p in paths)
    return f"python -m repro.analysis mutate {shown} --only {mid} --json"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def add_mutate_args(p: argparse.ArgumentParser) -> None:
    """Flags of the ``mutate`` subcommand (called from lint.main)."""
    p.add_argument("paths", nargs="+", type=Path,
                   help="mutation targets (e.g. src/repro/pipeline)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for mutant execution")
    p.add_argument("--json", dest="as_json", action="store_true",
                   help="emit the full byte-stable report as JSON")
    p.add_argument("--list", dest="list_only", action="store_true",
                   help="enumerate mutation sites without executing")
    p.add_argument("--only", default=None, metavar="ID[,ID...]",
                   help="restrict to specific mutant ids (repro runs)")
    p.add_argument("--sample", type=int, default=None, metavar="N",
                   help="deterministic N-mutant sample (with --seed)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --sample selection")
    p.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                   help="per-mutant sandbox deadline in seconds")
    p.add_argument("--cache-dir", type=Path, default=None,
                   help="outcome cache root (default "
                        "results/cache/mutation)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the outcome cache")
    p.add_argument("--baseline", type=Path, default=None,
                   help="baseline file (default "
                        "results/mutation_baseline.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="do not gate against any baseline")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run "
                        "(preserving still-valid allowlist entries)")
    p.add_argument("--require-all-killed", action="store_true",
                   help="fail unless every mutant is killed or "
                        "allowlisted (the CI smoke gate)")


def run_mutate_cli(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    sites = select_sites(paths)
    if args.only:
        only = {tok.strip() for tok in args.only.split(",") if tok.strip()}
        sites = [s for s in sites if s.mutant_id in only]
        missing = only - {s.mutant_id for s in sites}
        if missing:
            print("error: unknown mutant id(s): "
                  + ", ".join(sorted(missing)), file=sys.stderr)
            return EXIT_USAGE
    if args.sample is not None:
        chosen = set(sample_ids(
            [s.mutant_id for s in sites], args.sample, args.seed
        ))
        sites = [s for s in sites if s.mutant_id in chosen]
    if args.list_only:
        for s in sites:
            print(f"{s.mutant_id}  {s.path}:{s.line}  {s.op:12s} "
                  f"{s.qual}(): {s.before}  ->  {s.after}")
        print(f"{len(sites)} mutation site(s)")
        return EXIT_CLEAN
    if not sites:
        print("no mutation sites under the given paths", file=sys.stderr)
        return EXIT_USAGE

    cache: MutationCache | None = None
    if not args.no_cache:
        cache = MutationCache(args.cache_dir or default_mutation_cache_dir())
    outcomes, executed, cached = run_cascade(
        paths, sites, jobs=max(1, args.jobs), timeout=args.timeout,
        cache=cache,
    )
    report = build_report(paths, sites, outcomes, args.sample, args.seed)
    print(f"mutate: {executed} job(s) executed, {cached} cached",
          file=sys.stderr)

    baseline_path = args.baseline or default_baseline_path()
    baseline: dict[str, object] | None = None
    if not args.no_baseline and baseline_path.exists():
        baseline = load_baseline(baseline_path)
    allowlist: dict[str, str] = {}
    if baseline is not None:
        allowlist = {
            str(k): str(v)
            for k, v in dict(baseline.get("allowlist", {})).items()
        }

    if args.update_baseline:
        body = encode_baseline(report, allowlist)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(stable_dumps(body), encoding="utf-8")
        print(f"wrote baseline for {report['total']} mutant(s) "
              f"({report['survived']} survivor(s), "
              f"{len(body['allowlist'])} allowlisted) to {baseline_path}")
        return EXIT_CLEAN

    if args.as_json:
        sys.stdout.write(stable_dumps(report))
    else:
        _print_report(report, paths, allowlist)

    rebaseline = ("python -m repro.analysis mutate "
                  + " ".join(str(p) for p in args.paths)
                  + " --update-baseline")
    survivors = [str(m) for m in report["survivors"]]
    unforgiven = [m for m in survivors if m not in allowlist]

    if args.require_all_killed:
        if unforgiven:
            print(f"\n{len(unforgiven)} surviving mutant(s) are neither "
                  "killed nor allowlisted:", file=sys.stderr)
            for mid in unforgiven:
                print(f"  {mid}  "
                      f"{_repro_command(paths, mid)}", file=sys.stderr)
            print("allowlist deliberately (with a reason) in "
                  f"{baseline_path}, or add a test that kills them",
                  file=sys.stderr)
            return EXIT_REGRESSION
        return EXIT_CLEAN

    # Full-run baseline gate: only meaningful when comparing the same
    # universe of mutants (no --sample/--only narrowing).
    if baseline is not None and args.sample is None and not args.only:
        known = {str(s["id"]) for s in baseline.get("survivors", ())}
        known |= set(allowlist)
        new = [m for m in survivors if m not in known]
        if new:
            print(f"\n{len(new)} new surviving mutant(s) — the oracle "
                  "layers lost detection power:", file=sys.stderr)
            for mid in new:
                print(f"  {mid}  {_repro_command(paths, mid)}",
                      file=sys.stderr)
            print("accept deliberately (refreshes the baseline):\n  "
                  f"{rebaseline}", file=sys.stderr)
            return EXIT_REGRESSION
        current_ids = {s.mutant_id for s in sites}
        stale = sorted(
            mid for mid in known
            if mid in current_ids and mid not in survivors
        )
        if stale:
            print(f"\nstale baseline: {len(stale)} recorded survivor(s) "
                  "are now killed:", file=sys.stderr)
            for mid in stale:
                print(f"  {mid}", file=sys.stderr)
            print(f"refresh it:\n  {rebaseline}", file=sys.stderr)
            return EXIT_STALE_BASELINE
    return EXIT_CLEAN


def _print_report(report: dict[str, object], paths: list[Path],
                  allowlist: dict[str, str]) -> None:
    print(f"{report['total']} mutant(s) over "
          f"{len(report['targets'])} file(s): "
          f"{report['killed']} killed, {report['survived']} survived "
          f"(score {report['score']:.2%})")
    print("kill matrix:")
    for layer, count in report["kill_matrix"].items():
        print(f"  {layer:10s} {count}")
    ops = report["operators"]
    print("operators:")
    for op in sorted(ops):
        if ops[op]["total"]:
            print(f"  {op:14s} {ops[op]['killed']}/{ops[op]['total']}")
    survivors = report["survivors"]
    if survivors:
        print("survivors:")
        mutants = report["mutants"]
        for mid in survivors:
            m = mutants[mid]
            note = (f"  [allowlisted: {allowlist[mid]}]"
                    if mid in allowlist else "")
            print(f"  {mid}  {m['path']}:{m['line']} {m['op']} "
                  f"{m['before']} -> {m['after']}{note}")
            print(f"      {_repro_command(paths, mid)}")

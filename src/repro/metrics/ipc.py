"""Simulation result container.

``SimResult`` is the immutable summary an experiment keeps per run; it
carries enough per-thread data to compute both of the paper's metrics
(throughput IPC and the harmonic-mean-of-weighted-IPCs fairness metric)
plus the in-text diagnostic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.stats import PipelineStats


@dataclass(frozen=True, slots=True)
class SimResult:
    """Summary of one simulation run."""

    benchmarks: tuple[str, ...]
    scheduler: str
    iq_size: int
    cycles: int
    committed: tuple[int, ...]
    extras: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_stats(cls, benchmarks: tuple[str, ...], scheduler: str,
                   iq_size: int, stats: PipelineStats) -> "SimResult":
        """Build a result from a finished :class:`PipelineStats`."""
        return cls(
            benchmarks=tuple(benchmarks),
            scheduler=scheduler,
            iq_size=iq_size,
            cycles=stats.cycles,
            committed=tuple(stats.committed),
            extras=stats.as_dict(),
        )

    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        """Hardware threads simulated."""
        return len(self.benchmarks)

    @property
    def throughput_ipc(self) -> float:
        """Total commit IPC across threads (paper's first metric)."""
        if not self.cycles:
            return 0.0
        return sum(self.committed) / self.cycles

    @property
    def per_thread_ipc(self) -> tuple[float, ...]:
        """Commit IPC of each thread."""
        if not self.cycles:
            return tuple(0.0 for _ in self.committed)
        return tuple(c / self.cycles for c in self.committed)

    def extra(self, key: str, default: float = 0.0) -> float:
        """Fetch a diagnostic statistic captured from the pipeline."""
        return self.extras.get(key, default)

"""The paper's fairness metric: harmonic mean of weighted IPCs.

Following Luo et al. [8] (and the paper's §2), each thread's IPC in the
multithreaded mix is weighted by its single-thread IPC on the same
machine, and the harmonic mean over threads rewards balanced progress::

    wIPC_i = IPC_mix,i / IPC_alone,i
    H      = N / sum_i (1 / wIPC_i)

A scheme that speeds one thread up by starving another scores worse on
``H`` even if raw throughput improves.
"""

from __future__ import annotations

from collections.abc import Sequence


def weighted_ipcs(mix_ipcs: Sequence[float],
                  alone_ipcs: Sequence[float]) -> list[float]:
    """Per-thread weighted IPCs (mix IPC relative to solo IPC)."""
    if len(mix_ipcs) != len(alone_ipcs):
        raise ValueError(
            f"thread count mismatch: {len(mix_ipcs)} vs {len(alone_ipcs)}"
        )
    out = []
    for mixed, alone in zip(mix_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError(f"single-thread IPC must be positive, got {alone}")
        out.append(mixed / alone)
    return out


def harmonic_weighted_ipc(mix_ipcs: Sequence[float],
                          alone_ipcs: Sequence[float]) -> float:
    """Harmonic mean of weighted IPCs (the paper's fairness metric)."""
    w = weighted_ipcs(mix_ipcs, alone_ipcs)
    if any(x <= 0 for x in w):
        return 0.0
    return len(w) / sum(1.0 / x for x in w)

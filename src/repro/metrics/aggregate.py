"""Cross-mix aggregation helpers.

"All results are shown as harmonic means across the simulated
multithreaded mixes" (paper §5); speedups of a scheme over a baseline are
the ratios of those harmonic means.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; rejects empty input and non-positive entries."""
    if not values:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"harmonic mean needs positive values, got {values}")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; rejects empty input and non-positive entries."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geometric mean needs positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(scheme: float, baseline: float) -> float:
    """Relative speedup of ``scheme`` over ``baseline`` (1.0 = parity)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return scheme / baseline

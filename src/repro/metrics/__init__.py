"""Performance metrics: throughput IPC, fairness, cross-mix aggregation."""

from repro.metrics.aggregate import geometric_mean, harmonic_mean, speedup
from repro.metrics.fairness import harmonic_weighted_ipc, weighted_ipcs
from repro.metrics.ipc import SimResult

__all__ = [
    "SimResult",
    "harmonic_mean",
    "geometric_mean",
    "speedup",
    "weighted_ipcs",
    "harmonic_weighted_ipc",
]

"""Per-thread pipeline state.

The paper's SMT model shares the IQ, physical registers, execution units
and caches across threads but gives each thread its own program counter,
rename table, load/store queue, reorder buffer and branch predictor —
``ThreadState`` is the per-thread half of that split.
"""

from __future__ import annotations

from collections import deque

from repro.branch.predictor import ThreadPredictor
from repro.config.machine import MachineConfig
from repro.pipeline.dynamic import DynInstr
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rob import ReorderBuffer
from repro.trace.generator import Trace


class ThreadState:
    """All per-thread structures of one SMT hardware context."""

    __slots__ = (
        "tid",
        "trace",
        "trace_len",
        "fetch_idx",
        "pipe",
        "pipe_capacity",
        "dispatch_buffer",
        "rob",
        "lsq",
        "predictor",
        "icount",
        "stalled_until",
        "wait_branch",
        "blocked_2op",
        "committed",
        "pending_long_misses",
    )

    def __init__(self, tid: int, trace: Trace, cfg: MachineConfig) -> None:
        self.tid = tid
        self.trace = trace
        self.trace_len = len(trace)
        self.fetch_idx = 0
        #: (pipe-exit cycle, instr) FIFO modelling the front-end stages
        #: between fetch and rename.
        self.pipe: deque[tuple[int, DynInstr]] = deque()
        self.pipe_capacity = cfg.frontend_depth * cfg.fetch_width
        #: renamed instructions awaiting dispatch (program order).
        self.dispatch_buffer: list[DynInstr] = []
        self.rob = ReorderBuffer(cfg.rob_size)
        self.lsq = LoadStoreQueue(cfg.lsq_size)
        self.predictor = ThreadPredictor(cfg.bp)
        self.icount = 0
        self.stalled_until = 0
        self.wait_branch: DynInstr | None = None
        self.blocked_2op = False
        self.committed = 0
        #: loads currently outstanding to main memory (STALL fetch gate).
        self.pending_long_misses = 0

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once the thread's trace is fully fetched."""
        return self.fetch_idx >= self.trace_len

    @property
    def drained(self) -> bool:
        """True when no instruction of this thread is in flight."""
        return (
            self.exhausted
            and not self.pipe
            and not self.dispatch_buffer
            and len(self.rob) == 0
        )

    def flush_inflight(self, resume_cycle: int) -> int:
        """Squash all in-flight instructions (watchdog recovery).

        Returns the trace index fetch must resume from (the oldest
        squashed instruction), and resets all per-thread pipeline state.
        """
        oldest = self.fetch_idx
        head = self.rob.head
        if head is not None:
            oldest = head.tseq
        elif self.pipe:
            oldest = min(oldest, self.pipe[0][1].tseq)
        if self.dispatch_buffer:
            oldest = min(oldest, self.dispatch_buffer[0].tseq)
        self.fetch_idx = oldest
        self.pipe.clear()
        self.dispatch_buffer = []
        self.rob.clear()
        self.lsq.reset()
        self.icount = 0
        self.wait_branch = None
        self.blocked_2op = False
        self.pending_long_misses = 0
        self.stalled_until = resume_cycle
        return oldest

"""Per-thread reorder buffer (96 entries per thread in the paper)."""

from __future__ import annotations

from collections import deque

from repro.pipeline.dynamic import DynInstr


class ReorderBuffer:
    """In-order retirement window of one SMT thread."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ROB capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: deque[DynInstr] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no rename slot is available."""
        return len(self._entries) >= self.capacity

    @property
    def head(self) -> DynInstr | None:
        """Oldest in-flight instruction, or None when empty."""
        return self._entries[0] if self._entries else None

    def allocate(self, instr: DynInstr) -> None:
        """Append ``instr`` at the tail (rename order)."""
        if self.full:
            raise RuntimeError("ROB overflow (rename stage bug)")
        self._entries.append(instr)

    def retire_head(self) -> DynInstr:
        """Remove and return the (completed) head instruction."""
        return self._entries.popleft()

    def clear(self) -> None:
        """Drop all entries (watchdog flush)."""
        self._entries.clear()

    def __iter__(self):
        return iter(self._entries)

"""Per-thread reorder buffer (96 entries per thread in the paper)."""

from __future__ import annotations

from collections import deque

from repro.pipeline.dynamic import DynInstr


class ReorderBuffer:
    """In-order retirement window of one SMT thread."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ROB capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: deque[DynInstr] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no rename slot is available."""
        return len(self._entries) >= self.capacity

    @property
    def head(self) -> DynInstr | None:
        """Oldest in-flight instruction, or None when empty."""
        return self._entries[0] if self._entries else None

    def allocate(self, instr: DynInstr) -> None:
        """Append ``instr`` at the tail (rename order)."""
        if self.full:
            raise RuntimeError("ROB overflow (rename stage bug)")
        self._entries.append(instr)

    def retire_head(self) -> DynInstr:
        """Remove and return the (completed) head instruction."""
        return self._entries.popleft()

    def first_order_violation(self) -> DynInstr | None:
        """First entry breaking per-thread program (tseq) order, if any.

        Used by the pipeline sanitizer: ROB allocation must happen in
        program order even when dispatch is out of order (paper §4).
        """
        prev = -1
        for instr in self._entries:
            if instr.tseq <= prev:
                return instr
            prev = instr.tseq
        return None

    def clear(self) -> None:
        """Drop all entries (watchdog flush)."""
        self._entries.clear()

    def __iter__(self):
        return iter(self._entries)

"""Pipeline statistics counters.

Counters are grouped by the paper statistic they feed:

* throughput / fairness — per-thread committed counts and total cycles;
* §3 stall analysis — ``all_blocked_2op_cycles`` (percentage of cycles
  in which *every* thread with buffered instructions is blocked by the
  2OP restriction and nothing dispatches);
* §4 HDI analysis — periodic samples of instructions piled up behind the
  first NDI of each blocked thread, plus per-dispatch counts of
  out-of-order dispatches and their NDI dependence;
* §5 residency — cycles spent in the IQ between dispatch and issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class PipelineStats:
    """Mutable counter block owned by one :class:`SMTProcessor`."""

    num_threads: int = 1

    # -- global ----------------------------------------------------------
    cycles: int = 0
    fetched: int = 0
    renamed: int = 0
    dispatched: int = 0
    issued: int = 0
    committed_total: int = 0

    # -- per thread -------------------------------------------------------
    committed: list[int] = field(default_factory=list)
    fetched_per_thread: list[int] = field(default_factory=list)
    blocked_2op_cycles: list[int] = field(default_factory=list)

    # -- dispatch-stall analysis (paper §3) --------------------------------
    all_blocked_2op_cycles: int = 0
    no_dispatch_cycles: int = 0
    iq_full_dispatch_stalls: int = 0

    # -- out-of-order dispatch analysis (paper §4) --------------------------
    ooo_dispatched: int = 0
    ooo_ndi_dependent: int = 0
    hdi_piled_samples: int = 0
    hdi_piled_dispatchable: int = 0
    dab_inserts: int = 0
    dab_issues: int = 0
    watchdog_flushes: int = 0

    # -- issue-queue behaviour (paper §5) -----------------------------------
    iq_residency_sum: int = 0
    iq_residency_count: int = 0
    iq_occupancy_integral: int = 0

    # -- correctness tooling (repro.analysis) -------------------------------
    sanitizer_checks: int = 0

    # -- memory / branch (filled from substrates at the end of a run) -------
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    store_forwards: int = 0

    def __post_init__(self) -> None:
        if not self.committed:
            self.committed = [0] * self.num_threads
        if not self.fetched_per_thread:
            self.fetched_per_thread = [0] * self.num_threads
        if not self.blocked_2op_cycles:
            self.blocked_2op_cycles = [0] * self.num_threads

    # ------------------------------------------------------------------
    @property
    def throughput_ipc(self) -> float:
        """Total commit IPC across all threads."""
        return self.committed_total / self.cycles if self.cycles else 0.0

    @property
    def per_thread_ipc(self) -> list[float]:
        """Commit IPC of each thread."""
        if not self.cycles:
            return [0.0] * self.num_threads
        return [c / self.cycles for c in self.committed]

    @property
    def all_blocked_2op_fraction(self) -> float:
        """Fraction of cycles with every thread 2OP-blocked (§3/§5 stat)."""
        return self.all_blocked_2op_cycles / self.cycles if self.cycles else 0.0

    @property
    def mean_iq_residency(self) -> float:
        """Average cycles an instruction waits in the IQ before issue."""
        if not self.iq_residency_count:
            return 0.0
        return self.iq_residency_sum / self.iq_residency_count

    @property
    def mean_iq_occupancy(self) -> float:
        """Average number of occupied IQ entries per cycle."""
        return self.iq_occupancy_integral / self.cycles if self.cycles else 0.0

    @property
    def hdi_fraction(self) -> float:
        """Measured fraction of piled-up instructions that are HDIs (§4)."""
        if not self.hdi_piled_samples:
            return 0.0
        return self.hdi_piled_dispatchable / self.hdi_piled_samples

    @property
    def ooo_ndi_dependent_fraction(self) -> float:
        """Fraction of OOO-dispatched HDIs depending on a prior NDI (§4)."""
        if not self.ooo_dispatched:
            return 0.0
        return self.ooo_ndi_dependent / self.ooo_dispatched

    @property
    def branch_mispredict_rate(self) -> float:
        """Dynamic branch misprediction rate."""
        if not self.branch_lookups:
            return 0.0
        return self.branch_mispredicts / self.branch_lookups

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, float]:
        """Flat summary used by reports and tests."""
        return {
            "cycles": self.cycles,
            "committed_total": self.committed_total,
            "throughput_ipc": self.throughput_ipc,
            "all_blocked_2op_fraction": self.all_blocked_2op_fraction,
            "mean_iq_residency": self.mean_iq_residency,
            "mean_iq_occupancy": self.mean_iq_occupancy,
            "hdi_fraction": self.hdi_fraction,
            "ooo_dispatched": self.ooo_dispatched,
            "ooo_ndi_dependent_fraction": self.ooo_ndi_dependent_fraction,
            "dab_inserts": self.dab_inserts,
            "watchdog_flushes": self.watchdog_flushes,
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "store_forwards": self.store_forwards,
            "sanitizer_checks": self.sanitizer_checks,
        }

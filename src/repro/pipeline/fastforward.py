"""Idle-cycle fast-forward for the SMT core.

Long L2-miss episodes leave every thread stalled: no stage can move an
instruction, yet the plain cycle loop still pays for a full
commit/issue/dispatch/rename/fetch scan per cycle. This module teaches
:class:`~repro.pipeline.smt_core.SMTProcessor` to recognise those dead
spans and jump over them in one step.

The contract is exact equivalence, not approximation: running with the
engine on or off produces **byte-identical** :class:`PipelineStats`
(enforced by ``tests/test_fastforward.py``). That works because a cycle
in which no stage made progress leaves the machine frozen — ready bits,
buffers, ROBs, the IQ and the free list can only change through a small
set of future events:

* a wakeup broadcast (``_wake_events``) or completion (``_done_events``),
* a front-end pipe arrival (``pipe[0][0]`` reaching rename),
* a fetch stall expiring (``stalled_until``; branch waits and long-miss
  gates resolve at completion events, already covered),
* a functional unit freeing while ready instructions wait to issue.

Until the earliest such event, every cycle replays the last stepped one
exactly, and its statistics deltas (IQ occupancy integral, no-dispatch
and 2OP-blocked counters, periodic HDI samples, watchdog countdown) are
constant — so the engine multiplies them by the span length instead of
stepping. The jump is additionally capped so that cycles with
non-replicable side effects are always stepped for real:

* the watchdog expiry cycle (its tick triggers a pipeline flush),
* the wedge-detector horizon (the no-commit RuntimeError must fire at
  the same cycle),
* sanitizer ticks (each check must observe the window at its exact
  cycle and bump ``stats.sanitizer_checks``),
* ``max_cycles``.

**Precondition:** :meth:`try_skip` may only be called directly after a
step in which no stage moved an instruction (the run loop's progress
fingerprint). That guarantees there is no half-consumed work — no
completed ROB heads waiting on commit width, no partially-drained
dispatch buffer — that could make the next cycle differ from the last.
"""

from __future__ import annotations

from repro.isa.opcodes import OP_FU


class FastForward:
    """Dead-span detector and bulk-accountant for one ``SMTProcessor``."""

    __slots__ = ("core", "wedge_limit", "hdi_mask", "skips", "cycles_skipped")

    def __init__(self, core, wedge_limit: int, hdi_mask: int) -> None:
        self.core = core
        self.wedge_limit = wedge_limit
        self.hdi_mask = hdi_mask
        #: number of successful jumps (telemetry for repro.perf).
        self.skips = 0
        #: total cycles bulk-accounted instead of stepped.
        self.cycles_skipped = 0

    # ------------------------------------------------------------------
    def try_skip(self, max_cycles: int) -> int:
        """Jump to the next actionable cycle; returns cycles skipped.

        Must only be called right after a zero-progress step (see module
        docstring). Returns 0 when the very next cycle could make
        progress (or a cap forbids skipping), leaving the core untouched.
        """
        core = self.core
        if core._events_fired:
            # The step just taken applied a wakeup or completion: ready
            # bits / completed flags changed even though no progress
            # counter moved, so the next cycle may commit or dispatch.
            return 0
        cycle = core.cycle  # next cycle the run loop would step
        target = self._next_active_cycle(cycle, max_cycles)
        if target <= cycle:
            return 0
        span = target - cycle
        self._account(cycle, span)
        core.cycle = target
        self.skips += 1
        self.cycles_skipped += span
        return span

    # ------------------------------------------------------------------
    def _next_active_cycle(self, cycle: int, max_cycles: int) -> int:
        """Earliest cycle ≥ ``cycle`` that must be stepped for real."""
        core = self.core

        # Hard caps first: cycles at which a real step has side effects
        # that bulk accounting cannot replicate.
        horizon = core._last_commit_cycle + self.wedge_limit
        if max_cycles < horizon:
            horizon = max_cycles
        sanitizer = core.sanitizer
        if sanitizer is not None:
            interval = sanitizer.interval
            rem = cycle % interval
            tick = cycle if rem == 0 else cycle + (interval - rem)
            if tick < horizon:
                horizon = tick
        watchdog = core.watchdog
        if watchdog is not None:
            # Dead cycles tick the watchdog whenever any thread holds ROB
            # entries; the expiry tick flushes the pipeline, so that
            # cycle must be stepped for real.
            for ts in core.threads:
                if len(ts.rob):
                    expiry = cycle + watchdog.remaining - 1
                    if expiry < horizon:
                        horizon = expiry
                    break
        for ts in core.threads:
            head = ts.rob.head
            if head is not None and head.completed:
                # Retirement is due: the commit stage will move it on
                # the very next step (defensive — the events_fired gate
                # in try_skip already forces a real step here).
                return cycle
        if horizon <= cycle:
            return cycle
        target = horizon

        # Scheduled events: wakeups and completions.
        events = core._wake_events
        if events:
            t = min(events)
            if t <= cycle:
                return cycle
            if t < target:
                target = t
        events = core._done_events
        if events:
            t = min(events)
            if t <= cycle:
                return cycle
            if t < target:
                target = t

        # Structural issue stalls: ready work waiting for a functional
        # unit wakes up when the unit frees. Union the FU classes of
        # everything eligible to issue (DAB entries and live ready-heap
        # entries) and take the earliest free time of their units.
        waiting_classes = None
        dab = core.dab
        if dab is not None and dab.entries:
            waiting_classes = {OP_FU[instr.op] for instr in dab.entries}
        for _, instr in core.iq.ready_heap:
            if not instr.in_iq:
                # Stale heap entry: per-cycle selection scans prune these
                # one at a time; refuse to skip rather than model it.
                return cycle
            if waiting_classes is None:
                waiting_classes = {OP_FU[instr.op]}
            else:
                waiting_classes.add(OP_FU[instr.op])
        if waiting_classes is not None:
            units = core.fu._units
            for fc in waiting_classes:
                for free_at in units[fc]:
                    if free_at <= cycle:
                        return cycle
                    if free_at < target:
                        target = free_at

        # Front end: pipe arrivals enable rename; an expiring fetch
        # stall makes a thread a fetch candidate again. (All other fetch
        # gates — branch waits, long-miss gates, pipe back-pressure —
        # open only at completion or rename activity, covered above.)
        stall_gate = core.fetch_unit._stall_gate
        for ts in core.threads:
            pipe = ts.pipe
            if pipe:
                t = pipe[0][0]
                # A head that already arrived is rename-blocked by frozen
                # state; only a future arrival is an event.
                if t == cycle:
                    return cycle
                if cycle < t < target:
                    target = t
            if (
                ts.fetch_idx < ts.trace_len
                and ts.wait_branch is None
                and len(pipe) < ts.pipe_capacity
                and not (stall_gate and ts.pending_long_misses)
            ):
                t = ts.stalled_until
                if t <= cycle:
                    return cycle  # thread can fetch right now
                if t < target:
                    target = t
        return target

    # ------------------------------------------------------------------
    def _account(self, cycle: int, span: int) -> None:
        """Book ``span`` dead cycles exactly as stepping each would."""
        core = self.core
        stats = core.stats
        stats.cycles += span
        iq = core.iq
        iq.occupancy_integral += iq.occupancy * span

        # Dispatch-stall attribution: replicate the total==0 branch of
        # ``_dispatch``. The blocked_2op flags still hold the values the
        # last stepped cycle computed, and the frozen state makes every
        # skipped cycle recompute exactly those.
        threads = core.threads
        policy = core.policy
        any_buffered = False
        any_relevant = False
        all_blocked = True
        for ts in threads:
            if ts.blocked_2op:
                stats.blocked_2op_cycles[ts.tid] += span
            if not ts.dispatch_buffer:
                continue
            any_buffered = True
            if ts.rob.full:
                continue
            any_relevant = True
            if all_blocked and not (
                ts.blocked_2op or policy.scan_blocked(core, ts)
            ):
                all_blocked = False
        if any_buffered:
            stats.no_dispatch_cycles += span
        if any_relevant:
            if all_blocked:
                stats.all_blocked_2op_cycles += span
            elif iq.free_slots == 0:
                stats.iq_full_dispatch_stalls += span

        # HDI pile-up sampling: one frozen-state sample scaled by the
        # number of sampling points inside the span.
        if policy.needs_reduced_iq:
            mask = self.hdi_mask
            period = mask + 1
            first = (cycle + mask) & ~mask
            if first < cycle + span:
                points = (cycle + span - 1 - first) // period + 1
                samples, dispatchable = core._sample_hdi()
                if samples:
                    stats.hdi_piled_samples += samples * points
                    stats.hdi_piled_dispatchable += dispatchable * points

        # Watchdog: every skipped cycle would have ticked if some thread
        # held ROB entries. The horizon cap guarantees remaining stays
        # >= 1, so the expiry tick happens in a real step.
        watchdog = core.watchdog
        if watchdog is not None:
            for ts in threads:
                if len(ts.rob):
                    watchdog.remaining -= span
                    break

"""Dynamic (in-flight) instruction record.

One ``DynInstr`` is created per fetched trace instruction and carries the
instruction through rename, dispatch, issue, execution and commit. It is
a plain ``__slots__`` class (not a dataclass) because instances are
allocated on the simulator's hottest path.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.rename.map_table import NO_PREG


class DynInstr:
    """An in-flight instruction of one SMT thread."""

    __slots__ = (
        # identity
        "tid", "seq", "tseq", "op",
        # architectural payload (from the trace)
        "pc", "addr", "taken", "target", "dest_l", "src1_l", "src2_l",
        # classification flags
        "is_load", "is_store", "is_branch",
        # branch prediction state
        "prediction", "mispredicted",
        # renamed operands
        "dest_p", "old_dest_p", "src1_p", "src2_p",
        # scheduler state
        "in_iq", "in_dab", "num_waiting", "issued", "completed",
        "was_ndi_blocked", "ooo_dispatched", "skipped_ndis", "ndi_dependent",
        # timing
        "fetch_cycle", "rename_cycle", "dispatch_cycle", "issue_cycle",
        "complete_cycle",
        # memory
        "forwarded", "long_miss",
    )

    def __init__(self, tid: int, seq: int, tseq: int, op: int, pc: int,
                 addr: int, taken: bool, target: int, dest_l: int,
                 src1_l: int, src2_l: int, fetch_cycle: int) -> None:
        self.tid = tid
        self.seq = seq
        self.tseq = tseq
        self.op = op
        self.pc = pc
        self.addr = addr
        self.taken = taken
        self.target = target
        self.dest_l = dest_l
        self.src1_l = src1_l
        self.src2_l = src2_l
        self.is_load = op == OpClass.LOAD
        self.is_store = op == OpClass.STORE
        self.is_branch = op == OpClass.BRANCH
        self.prediction = None
        self.mispredicted = False
        self.dest_p = NO_PREG
        self.old_dest_p = NO_PREG
        self.src1_p = NO_PREG
        self.src2_p = NO_PREG
        self.in_iq = False
        self.in_dab = False
        self.num_waiting = 0
        self.issued = False
        self.completed = False
        self.was_ndi_blocked = False
        self.ooo_dispatched = False
        self.skipped_ndis = 0
        self.ndi_dependent = False
        self.fetch_cycle = fetch_cycle
        self.rename_cycle = -1
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.forwarded = False
        self.long_miss = False

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynInstr(t{self.tid}#{self.tseq} {OpClass(self.op).name}"
            f" seq={self.seq} d={self.dest_l} s=({self.src1_l},{self.src2_l}))"
        )

    @property
    def iq_residency(self) -> int:
        """Cycles spent in the issue queue (valid once issued)."""
        if self.issue_cycle < 0 or self.dispatch_cycle < 0:
            return 0
        return self.issue_cycle - self.dispatch_cycle

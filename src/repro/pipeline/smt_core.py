"""The SMT processor cycle loop.

Stages are evaluated back-to-front every cycle so same-cycle structural
constraints resolve without moving an instruction through two stages in
one cycle::

    commit -> writeback events -> issue (select) -> dispatch -> rename -> fetch

Timing model (see DESIGN.md §5):

* an instruction fetched at cycle ``C`` reaches rename no earlier than
  ``C + frontend_depth - 1`` (the 5-stage front end of Table 1);
* a producer selected at cycle ``C`` with execution latency ``L`` wakes
  its consumers at ``C + L`` (full bypass: back-to-back issue for
  single-cycle ops) and retires-eligible at ``C + regread_stages + L``;
* loads resolve their cache access at select time (the trace provides
  the address), extending both wakeup and completion by the miss
  penalty; store-to-load forwarding takes the L1-hit path;
* branches resolve at completion; a misprediction stalls the thread's
  fetch from prediction time until resolution + redirect penalty.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.analysis.contracts import stage_contract
from repro.config.machine import MachineConfig
from repro.core.deadlock import DeadlockAvoidanceBuffer, WatchdogTimer
from repro.core.iq import IssueQueue
from repro.core.scheduler import make_dispatch_policy
from repro.isa.opcodes import OP_FU, OP_INTERVAL, OP_LATENCY, OpClass
from repro.isa.registers import FP_BASE, REG_FP_ZERO, REG_INT_ZERO
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.dynamic import DynInstr
from repro.pipeline.fastforward import FastForward
from repro.pipeline.fu import FunctionalUnitPool
from repro.pipeline.stats import PipelineStats
from repro.pipeline.thread import ThreadState
from repro.rename.map_table import NO_PREG
from repro.rename.renamer import RenameUnit
from repro.trace.generator import Trace

#: Upper bound on ready-heap entries examined per select cycle. The FU
#: pools of Table 1 are wide enough that deeper scans never issue more;
#: bounding the scan keeps pathological cycles O(width).
_SELECT_SCAN_LIMIT = 64

#: Cycles without a single commit before the simulator declares itself
#: wedged (a model bug — the deadlock-avoidance machinery should make
#: this unreachable).
_WEDGE_LIMIT = 250_000

#: Period (power of two) of the HDI pile-up sampling (§4 statistic).
_HDI_SAMPLE_MASK = 15


class SMTProcessor:
    """Cycle-level SMT core executing one trace per hardware thread."""

    def __init__(self, cfg: MachineConfig, traces: list[Trace],
                 warmup: int = 0, fast_forward: bool = True) -> None:
        if not traces:
            raise ValueError("need at least one thread trace")
        if warmup < 0 or any(warmup >= len(t) for t in traces):
            raise ValueError(
                f"warmup ({warmup}) must be non-negative and shorter than "
                "every trace"
            )
        self.cfg = cfg
        self.num_threads = len(traces)
        self.renamer = RenameUnit(cfg, self.num_threads)
        self.iq = IssueQueue(
            cfg.iq_size, cfg.iq_comparators_per_entry, self.renamer.ready
        )
        self.policy = make_dispatch_policy(cfg)
        # Exact-type test: subclasses of the traditional policy must not
        # take the inlined dispatch fast path in ``_dispatch``.
        from repro.core.dispatch import InOrderDispatch

        self._policy_inorder = type(self.policy) is InOrderDispatch
        self.dab: DeadlockAvoidanceBuffer | None = None
        self.watchdog: WatchdogTimer | None = None
        if self.policy.supports_ooo:
            if cfg.deadlock_mode == "buffer":
                self.dab = DeadlockAvoidanceBuffer(cfg.deadlock_buffer_size)
            else:
                self.watchdog = WatchdogTimer(cfg.watchdog_cycles)
        self.hierarchy = MemoryHierarchy(cfg.mem)
        self.fu = FunctionalUnitPool(cfg)
        self.threads = [
            ThreadState(tid, trace, cfg) for tid, trace in enumerate(traces)
        ]
        # All n cyclic rotations of the thread list, precomputed once;
        # ``_rotation`` indexes by ``cycle % n`` instead of building a
        # fresh list three times per cycle.
        n = self.num_threads
        threads = self.threads
        self._rotations: tuple[tuple[ThreadState, ...], ...] = tuple(
            tuple(threads[(start + i) % n] for i in range(n))
            for start in range(n)
        )
        self._nrot = n
        self.stats = PipelineStats(num_threads=self.num_threads)
        from repro.frontend.fetch import FetchUnit

        self.fetch_unit = FetchUnit(cfg)
        # Width/latency knobs are frozen at construction; the stage loops
        # read these plain attributes instead of chasing cfg.* per cycle.
        self._commit_width = cfg.commit_width
        self._issue_width = cfg.issue_width
        self._dispatch_width = cfg.dispatch_width
        self._decode_width = cfg.decode_width
        self._buf_depth = cfg.dispatch_buffer_depth
        self._regread = cfg.regread_stages
        self._mem_latency = cfg.mem.memory_latency
        self._redirect_penalty = cfg.mispredict_redirect_penalty
        self._dab_exclusive = cfg.dab_exclusive
        self.cycle = 0
        self._seq = 0
        #: cycle -> physical registers becoming ready (wakeup broadcast).
        self._wake_events: dict[int, list[int]] = {}
        #: cycle -> instructions finishing execution (completion).
        self._done_events: dict[int, list[DynInstr]] = {}
        self._last_commit_cycle = 0
        self._events_fired = False
        #: subclasses overriding ``new_instr`` (an observation hook used
        #: by tests) force fetch onto the compat path that calls it.
        self._custom_new_instr = (
            type(self).new_instr is not SMTProcessor.new_instr
        )
        self.sanitizer = None
        if cfg.sanitize:
            # Imported lazily: the analysis layer sits above the pipeline
            # and costs nothing when sanitizing is off.
            from repro.analysis.sanitizer import PipelineSanitizer

            self.sanitizer = PipelineSanitizer(self)
        #: Idle-cycle fast-forward engine (None = always step). Running
        #: with it on or off produces byte-identical ``PipelineStats``
        #: (enforced by tests/test_fastforward.py); off exists for that
        #: equivalence check and for debugging.
        self.ff: FastForward | None = (
            FastForward(self, _WEDGE_LIMIT, _HDI_SAMPLE_MASK)
            if fast_forward else None
        )
        # Cache the stage bound methods in the instance dict: step()
        # then pays one attribute lookup per stage per cycle instead of
        # a fresh descriptor bind. Lookup still happens at call time, so
        # per-instance wrappers (repro.perf stage timers) intercept.
        for name in ("_commit", "_apply_events", "_issue", "_dispatch",
                     "_rename"):
            setattr(self, name, getattr(self, name))
        self._fetch_cycle = self.fetch_unit.fetch_cycle
        if self.sanitizer is not None:
            # Wrap the cached stage callables with the stage-contract
            # shadow checks (same mechanism as the perf stage timers;
            # must run after the caching loop above).
            self.sanitizer.install_contract_checks()
        self._install_residency()
        if warmup:
            self._warm_up(warmup)
        self.hierarchy.reset_stats()

    # ------------------------------------------------------------------
    # warmup
    # ------------------------------------------------------------------
    def _install_residency(self) -> None:
        """Pre-touch each trace's steady-state resident lines (code and
        data) so reduced-scale simulations do not start from pathological
        all-cold caches; see ``Trace.warm_addrs``."""
        hierarchy = self.hierarchy
        for ts in self.threads:
            hierarchy.warm_inst(ts.trace.warm_pcs)
            hierarchy.warm_data(ts.trace.warm_addrs)

    def _warm_up(self, warmup: int) -> None:
        """Functionally replay the first ``warmup`` trace instructions of
        each thread through the branch predictors and caches, then start
        timing simulation after them.

        The paper fast-forwards each benchmark to its SimPoint region
        before measuring, so its tables/figures describe *warm*
        microarchitectural state; at the reduced instruction budgets of a
        pure-Python reproduction, cold predictors and caches would
        otherwise dominate every number (see DESIGN.md §2).
        """
        branch_op = int(OpClass.BRANCH)
        load_op = int(OpClass.LOAD)
        store_op = int(OpClass.STORE)
        line_shift = self.cfg.mem.l1i.line_bytes.bit_length() - 1
        for ts in self.threads:
            trace = ts.trace
            predictor = ts.predictor
            hierarchy = self.hierarchy
            ops = trace.op
            pcs = trace.pc
            last_block = -1
            for i in range(warmup):
                pc = pcs[i]
                block = pc >> line_shift
                if block != last_block:
                    hierarchy.access_inst(pc)
                    last_block = block
                op = ops[i]
                if op == branch_op:
                    pred = predictor.predict(
                        pc, trace.taken[i], trace.target[i]
                    )
                    predictor.resolve(
                        pc, trace.taken[i], trace.target[i], pred
                    )
                elif op == load_op or op == store_op:
                    hierarchy.access_data(trace.addr[i])
            ts.fetch_idx = warmup
            predictor.branches = 0
            predictor.mispredicts = 0
            predictor.gshare.lookups = 0
            predictor.gshare.hits = 0
            predictor.btb.lookups = 0
            predictor.btb.hits = 0

    # ------------------------------------------------------------------
    # instruction factory
    # ------------------------------------------------------------------
    def new_instr(self, ts: ThreadState, idx: int, cycle: int) -> DynInstr:
        """Materialise trace instruction ``idx`` of thread ``ts``."""
        trace = ts.trace
        instr = DynInstr(
            tid=ts.tid,
            seq=self._seq,
            tseq=idx,
            op=trace.op[idx],
            pc=trace.pc[idx],
            addr=trace.addr[idx],
            taken=trace.taken[idx],
            target=trace.target[idx],
            dest_l=trace.dest[idx],
            src1_l=trace.src1[idx],
            src2_l=trace.src2[idx],
            fetch_cycle=cycle,
        )
        self._seq += 1
        return instr

    def _rotation(self, cycle: int) -> tuple[ThreadState, ...]:  # repro: hot
        rotations = self._rotations
        return rotations[cycle % len(rotations)]

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    @stage_contract(
        "commit",
        reads=("core", "config", "instr"),
        writes=("rob", "lsq", "free_list", "memory", "thread", "stats",
                "core"),
    )
    def _commit(self, cycle: int) -> None:  # repro: hot
        budget = self._commit_width
        stats = self.stats
        committed = stats.committed
        renamer = self.renamer
        # Inlined RenameUnit.release: the pool boundary test replaces
        # FreeList.owns, the deque append replaces FreeList.release.
        fp_base = renamer.fp_free._base
        int_append = renamer.int_free._free.append
        fp_append = renamer.fp_free._free.append
        access_data = self.hierarchy.access_data
        total = 0
        rotations = self._rotations
        for ts in rotations[cycle % self._nrot]:
            if budget <= 0:
                break
            entries = ts.rob._entries
            lsq = ts.lsq
            n = 0
            while budget > 0 and entries:
                head = entries[0]
                if not head.completed:
                    break
                entries.popleft()
                old = head.old_dest_p
                if old >= 0:
                    if old >= fp_base:
                        fp_append(old)
                    else:
                        int_append(old)
                if head.is_load or head.is_store:
                    lsq.count -= 1  # inlined LoadStoreQueue.release
                    if head.is_store:
                        seqs = lsq._stores.get(head.addr)
                        if seqs:
                            # Stores commit in program order: head is ours.
                            del seqs[0]
                            if not seqs:
                                del lsq._stores[head.addr]
                        # Retirement write; timing charged at issue already.
                        access_data(head.addr)
                n += 1
                budget -= 1
            if n:
                ts.committed += n
                committed[ts.tid] += n
                total += n
        if total:
            stats.committed_total += total
            self._last_commit_cycle = cycle

    @stage_contract(
        "writeback",
        reads=("core", "config"),
        writes=("events", "ready", "iq", "thread", "predictor", "instr",
                "core", "stats"),
    )
    def _apply_events(self, cycle: int) -> None:  # repro: hot
        wakes = self._wake_events.pop(cycle, None)
        dones = self._done_events.pop(cycle, None)
        # Consumed by FastForward: an event changes ready bits or
        # completion flags without moving a progress counter, so the
        # cycle after one is never a safe skip origin.
        self._events_fired = wakes is not None or dones is not None
        if wakes:
            ready = self.renamer.ready
            iq = self.iq
            waiting = iq.waiting
            heap = iq.ready_heap
            for p in wakes:
                ready[p] = 1
                waiters = waiting.pop(p, None)  # inlined IssueQueue.wakeup
                if waiters:
                    for instr in waiters:
                        nw = instr.num_waiting - 1
                        instr.num_waiting = nw
                        if nw == 0 and instr.in_iq:
                            heappush(heap, (instr.seq, instr))
        if dones:
            threads = self.threads
            for instr in dones:
                instr.completed = True
                instr.complete_cycle = cycle
                if instr.long_miss:
                    threads[instr.tid].pending_long_misses -= 1
                if instr.is_branch:
                    ts = threads[instr.tid]
                    ts.predictor.resolve(
                        instr.pc, instr.taken, instr.target, instr.prediction
                    )
                    if instr.mispredicted and ts.wait_branch is instr:
                        ts.wait_branch = None
                        stall = cycle + self._redirect_penalty
                        if stall > ts.stalled_until:
                            ts.stalled_until = stall

    def _start_execution(self, instr: DynInstr, cycle: int,
                         from_iq: bool) -> None:  # repro: hot
        instr.issued = True
        instr.issue_cycle = cycle
        ts = self.threads[instr.tid]
        ts.icount -= 1
        stats = self.stats
        stats.issued += 1
        if from_iq:
            stats.iq_residency_sum += cycle - instr.dispatch_cycle
            stats.iq_residency_count += 1
        extra = 0
        if instr.is_load:
            if ts.lsq.can_forward(instr):
                instr.forwarded = True
            else:
                extra = self.hierarchy.access_data(instr.addr).extra_latency
                if extra >= self._mem_latency:
                    instr.long_miss = True
                    ts.pending_long_misses += 1
        wake_at = cycle + OP_LATENCY[instr.op] + extra
        done_at = wake_at + self._regread
        if instr.dest_p >= 0:
            events = self._wake_events
            bucket = events.get(wake_at)
            if bucket is None:
                events[wake_at] = [instr.dest_p]  # repro: noqa[RPR008] — bucket birth
            else:
                bucket.append(instr.dest_p)
        events = self._done_events
        bucket = events.get(done_at)
        if bucket is None:
            events[done_at] = [instr]  # repro: noqa[RPR008] — event-bucket birth
        else:
            bucket.append(instr)

    @stage_contract(
        "issue",
        reads=("core", "config", "ready", "rob"),
        writes=("fu", "iq", "thread", "lsq", "memory", "events", "stats",
                "dab", "instr"),
    )
    def _issue(self, cycle: int) -> None:  # repro: hot
        budget = self._issue_width
        fu = self.fu
        dab = self.dab
        if dab is not None and dab.entries:
            # Deadlock-avoidance instructions take precedence (§4); their
            # sources are ready by construction.
            try_claim = fu.try_claim
            start = self._start_execution
            remaining: list[DynInstr] = []  # repro: noqa[RPR008] — rare DAB path
            for instr in dab.entries:
                if budget > 0 and try_claim(instr.op, cycle):
                    instr.in_dab = False
                    budget -= 1
                    self.stats.dab_issues += 1
                    start(instr, cycle, from_iq=False)
                else:
                    remaining.append(instr)
            dab.entries = remaining
            if self._dab_exclusive and dab.entries:
                # Paper §4 simple arbitration: while the deadlock buffer
                # is occupied, IQ selection is disabled this cycle.
                return
        if budget <= 0:
            return
        heap = self.iq.ready_heap
        if not heap:
            return
        # Tests wrap ``_start_execution`` (instance attribute or subclass
        # override) to observe issues; any wrapper disables the inlined
        # fast path below so every issue still goes through it.
        start = self._start_execution
        custom_start = (
            getattr(start, "__func__", None)
            is not SMTProcessor._start_execution
        )
        iq = self.iq
        fu_units = fu._units
        issued_per_class = fu.issued_per_class
        threads = self.threads
        stats = self.stats
        access_data = self.hierarchy.access_data
        mem_latency = self._mem_latency
        regread = self._regread
        wake_events = self._wake_events
        done_events = self._done_events
        deferred = None
        scanned = 0
        issued_n = 0
        resid_sum = 0
        while heap and budget > 0 and scanned < _SELECT_SCAN_LIMIT:
            item = heappop(heap)
            instr = item[1]
            scanned += 1
            if not instr.in_iq:
                continue
            op = instr.op
            # Inlined FunctionalUnitPool.try_claim.
            fuc = OP_FU[op]
            units = fu_units[fuc]
            claimed = False
            i = 0
            for free_at in units:
                if free_at <= cycle:
                    units[i] = cycle + OP_INTERVAL[op]
                    issued_per_class[fuc] += 1
                    claimed = True
                    break
                i += 1
            if claimed:
                instr.in_iq = False  # inlined IssueQueue.remove_on_issue
                iq.occupancy -= 1
                budget -= 1
                if custom_start:
                    start(instr, cycle, from_iq=True)
                    continue
                # Inlined _start_execution (from_iq=True): see that
                # method for the reference semantics.
                instr.issued = True
                instr.issue_cycle = cycle
                ts = threads[instr.tid]
                ts.icount -= 1
                issued_n += 1
                resid_sum += cycle - instr.dispatch_cycle
                extra = 0
                if instr.is_load:
                    # Inlined LoadStoreQueue.can_forward.
                    lsq = ts.lsq
                    seqs = lsq._stores.get(instr.addr)
                    if seqs and seqs[0] < instr.tseq:
                        lsq.forwards += 1
                        instr.forwarded = True
                    else:
                        extra = access_data(instr.addr).extra_latency
                        if extra >= mem_latency:
                            instr.long_miss = True
                            ts.pending_long_misses += 1
                wake_at = cycle + OP_LATENCY[op] + extra
                dest = instr.dest_p
                if dest >= 0:
                    bucket = wake_events.get(wake_at)
                    if bucket is None:
                        # repro: noqa[RPR008] on bucket births: one
                        # list per event cycle, amortised.
                        wake_events[wake_at] = [dest]  # repro: noqa[RPR008]
                    else:
                        bucket.append(dest)
                done_at = wake_at + regread
                bucket = done_events.get(done_at)
                if bucket is None:
                    done_events[done_at] = [instr]  # repro: noqa[RPR008]
                else:
                    bucket.append(instr)
            elif deferred is None:
                deferred = [item]  # repro: noqa[RPR008] — lazy; only on FU conflicts
            else:
                deferred.append(item)
        if issued_n:
            stats.issued += issued_n
            stats.iq_residency_sum += resid_sum
            stats.iq_residency_count += issued_n
        if deferred:
            for item in deferred:
                heappush(heap, item)

    @stage_contract(
        "dispatch",
        reads=("core", "config", "rob", "ready"),
        writes=("iq", "thread", "dab", "watchdog", "stats", "instr"),
    )
    def _dispatch(self, cycle: int) -> None:  # repro: hot
        budget = self._dispatch_width
        total = 0
        threads = self.threads
        for ts in threads:
            ts.blocked_2op = False
        rotations = self._rotations
        order = rotations[cycle % self._nrot]
        policy = self.policy
        if self._policy_inorder:
            # Inlined InOrderDispatch.dispatch_thread (the exact class,
            # not a subclass): program order, no admission predicate.
            iq = self.iq
            capacity = iq.capacity
            for ts in order:
                if budget <= 0:
                    break
                buf = ts.dispatch_buffer
                n = capacity - iq.occupancy
                if budget < n:
                    n = budget
                if len(buf) < n:
                    n = len(buf)
                if n > 0:
                    iq.insert_slice(buf, n, cycle)
                    del buf[:n]
                    budget -= n
                    total += n
        else:
            dispatch_thread = policy.dispatch_thread
            for ts in order:
                if budget <= 0:
                    break
                n = dispatch_thread(self, ts, cycle, budget)
                budget -= n
                total += n
        dab = self.dab
        if dab is not None and self.iq.free_slots == 0:
            # Paper §4: an instruction that is ROB-oldest and denied an IQ
            # entry moves to the deadlock-avoidance buffer.
            for ts in order:
                if not dab.has_space:
                    break
                buf = ts.dispatch_buffer
                if buf and ts.rob.head is buf[0]:
                    instr = buf.pop(0)
                    dab.insert(instr, cycle)
                    self.stats.dab_inserts += 1
                    total += 1
        stats = self.stats
        stats.dispatched += total
        for ts in threads:
            if ts.blocked_2op:
                stats.blocked_2op_cycles[ts.tid] += 1
        if total == 0:
            # Attribute the stall to the 2OP restriction only for threads
            # that could otherwise make forward progress: a thread whose
            # ROB is already full is window-saturated and would stall
            # under the traditional scheduler as well, so leftover NDIs
            # in its buffer are not the cause (paper §3 statistic).
            any_buffered = False
            any_relevant = False
            all_blocked = True
            for ts in threads:
                if not ts.dispatch_buffer:
                    continue
                any_buffered = True
                if ts.rob.full:
                    continue
                any_relevant = True
                if all_blocked and not (
                    ts.blocked_2op or policy.scan_blocked(self, ts)
                ):
                    all_blocked = False
            if any_buffered:
                stats.no_dispatch_cycles += 1
            if any_relevant:
                if all_blocked:
                    stats.all_blocked_2op_cycles += 1
                elif self.iq.free_slots == 0:
                    stats.iq_full_dispatch_stalls += 1
        if policy.needs_reduced_iq and (cycle & _HDI_SAMPLE_MASK) == 0:
            samples, dispatchable = self._sample_hdi()
            stats.hdi_piled_samples += samples
            stats.hdi_piled_dispatchable += dispatchable
        watchdog = self.watchdog
        if watchdog is not None:
            if total:
                watchdog.note_dispatch()
            else:
                for ts in threads:
                    if len(ts.rob):
                        if watchdog.tick():
                            # Watchdog recovery squashes *everything*:
                            # exempt from the dispatch contract and the
                            # hot closure — it fires at most once per
                            # watchdog period.
                            self._flush_all(cycle)  # repro: noqa[RPR009,RPR011]
                        break

    def _sample_hdi(self) -> tuple[int, int]:  # repro: hot
        """Sample the §4 statistic: of the instructions piled up behind
        the first NDI of each thread, how many are themselves
        dispatchable (HDIs)?

        Returns ``(samples, dispatchable)`` deltas instead of mutating
        the stats block so the fast-forward engine can scale one sample
        by the number of sampling points inside a skipped span.
        """
        iq = self.iq
        samples = 0
        dispatchable = 0
        for ts in self.threads:
            buf = ts.dispatch_buffer
            first_ndi = -1
            for i, instr in enumerate(buf):
                if iq.nonready_count(instr) >= 2:
                    first_ndi = i
                    break
            if first_ndi < 0:
                continue
            for j in range(first_ndi + 1, len(buf)):
                samples += 1
                if iq.nonready_count(buf[j]) < 2:
                    dispatchable += 1
        return samples, dispatchable

    @stage_contract(
        "rename",
        reads=("core", "config"),
        writes=("thread", "rob", "lsq", "map_table", "free_list", "ready",
                "stats", "instr"),
    )
    def _rename(self, cycle: int) -> None:  # repro: hot
        budget = self._decode_width
        renamer = None
        depth = self._buf_depth
        total = 0
        rotations = self._rotations
        for ts in rotations[(cycle + 1) % self._nrot]:
            if budget <= 0:
                break
            pipe = ts.pipe
            if not pipe or pipe[0][0] > cycle:
                continue
            if renamer is None:
                # Hoisted lazily: idle rename cycles skip these lookups.
                renamer = self.renamer
                maps = renamer.maps
                ready = renamer.ready
                int_free = renamer.int_free._free
                fp_free = renamer.fp_free._free
            buf = ts.dispatch_buffer
            rob = ts.rob
            rob_entries = rob._entries
            lsq = ts.lsq
            lsq_cap = lsq.capacity
            table_map = maps[ts.tid]._map
            append = buf.append
            popleft = pipe.popleft
            rob_append = rob_entries.append
            # Tracked locally: this loop is the only writer of either.
            buf_room = depth - len(buf)
            rob_room = rob.capacity - len(rob_entries)
            while budget > 0 and pipe:
                head = pipe[0]
                if head[0] > cycle:
                    break
                if buf_room <= 0 or rob_room <= 0:
                    break
                instr = head[1]
                is_mem = instr.is_load or instr.is_store
                if is_mem and lsq.count >= lsq_cap:
                    break
                # Inlined RenameUnit.rename (+ can_rename): map table and
                # free lists accessed directly; RenameUnit.rename stays
                # the reference form. Source lookups are unconditional:
                # zero registers are pinned to NO_PREG in the map table,
                # and NO_REG (-1) indexes the last entry — the FP zero
                # register, also NO_PREG (see RenameMapTable).
                dest = instr.dest_l
                src1_p = table_map[instr.src1_l]
                src2_p = table_map[instr.src2_l]
                if dest < 0 or dest == REG_INT_ZERO or dest == REG_FP_ZERO:
                    dest_p = NO_PREG
                    old_p = NO_PREG
                else:
                    free = fp_free if dest >= FP_BASE else int_free
                    if not free:
                        break  # destination free list exhausted
                    dest_p = free.popleft()  # inlined FreeList.allocate
                    ready[dest_p] = 0
                    old_p = table_map[dest]
                    table_map[dest] = dest_p
                popleft()
                instr.dest_p = dest_p
                instr.old_dest_p = old_p
                instr.src1_p = src1_p
                instr.src2_p = src2_p
                instr.rename_cycle = cycle
                rob_append(instr)  # inlined ReorderBuffer.allocate
                if is_mem:
                    # Inlined LoadStoreQueue.allocate (capacity verified
                    # above; program-order watermark kept for sanitizer).
                    tseq = instr.tseq
                    if tseq <= lsq.last_alloc_tseq:
                        lsq.alloc_order_ok = False
                    else:
                        lsq.last_alloc_tseq = tseq
                    lsq.count += 1
                    if instr.is_store:
                        stores = lsq._stores
                        addr = instr.addr
                        seqs = stores.get(addr)
                        if seqs is None:
                            # One list per distinct store address.
                            stores[addr] = [tseq]  # repro: noqa[RPR008]
                        else:
                            seqs.append(tseq)
                append(instr)
                buf_room -= 1
                rob_room -= 1
                budget -= 1
                total += 1
        if total:
            self.stats.renamed += total

    def _flush_all(self, cycle: int) -> None:
        """Watchdog recovery: squash everything in flight and refetch
        from each thread's oldest uncommitted instruction."""
        resume = cycle + 1
        for ts in self.threads:
            ts.flush_inflight(resume)
        self.iq.reset()
        if self.dab is not None:
            self.dab.clear()
        self._wake_events.clear()
        self._done_events.clear()
        self.fu.reset()
        self.renamer.reset()
        self.stats.watchdog_flushes += 1

    # ------------------------------------------------------------------
    # invariants (used by the test suite; not called on the hot path)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check cross-structure invariants; raises ``AssertionError``.

        Intended for tests and debugging — it walks every in-flight
        instruction, so it is far too slow to run per cycle in
        experiments. For periodic in-run checking with structured
        failures, enable ``MachineConfig.sanitize`` instead
        (:mod:`repro.analysis.sanitizer`).
        """
        in_iq = 0
        for ts in self.threads:
            pipe_n = len(ts.pipe)
            buf_n = len(ts.dispatch_buffer)
            iq_n = sum(1 for instr in ts.rob if instr.in_iq)
            dab_n = sum(1 for instr in ts.rob if instr.in_dab)
            in_iq += iq_n
            assert ts.icount == pipe_n + buf_n + iq_n + dab_n, (
                f"thread {ts.tid}: icount {ts.icount} != "
                f"{pipe_n}+{buf_n}+{iq_n}+{dab_n}"
            )
            assert len(ts.rob) <= ts.rob.capacity
            assert ts.lsq.count <= ts.lsq.capacity
            for instr in ts.dispatch_buffer:
                assert not instr.in_iq and not instr.issued, (
                    f"buffered instruction already scheduled: {instr!r}"
                )
            prev = -1
            for instr in ts.rob:
                assert instr.tseq > prev, "ROB out of program order"
                prev = instr.tseq
        assert in_iq == self.iq.occupancy, (
            f"IQ occupancy {self.iq.occupancy} != {in_iq} in-flight entries"
        )
        for tag, waiters in self.iq.waiting.items():
            for instr in waiters:
                if instr.in_iq:
                    assert instr.num_waiting > 0, (
                        f"IQ entry waits on ready tag {tag}: {instr!r}"
                    )
        if self.dab is not None:
            assert len(self.dab.entries) <= self.dab.size
            for instr in self.dab.entries:
                assert instr.in_dab and not instr.issued

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def step(self) -> None:  # repro: hot
        """Advance the machine by one cycle."""
        cycle = self.cycle
        self._commit(cycle)
        self._apply_events(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._rename(cycle)
        self._fetch_cycle(self, cycle)
        iq = self.iq
        iq.occupancy_integral += iq.occupancy  # inlined IssueQueue.tick()
        self.stats.cycles += 1
        self.cycle = cycle + 1
        sanitizer = self.sanitizer
        if sanitizer is not None and cycle % sanitizer.interval == 0:
            # Interval-amortised; off the hot closure by construction.
            sanitizer.check(cycle)  # repro: noqa[RPR009]

    def run(self, max_insns: int, max_cycles: int = 5_000_000,
            ) -> PipelineStats:
        """Simulate until any thread commits ``max_insns`` instructions
        (the paper's stopping rule), every trace drains, or ``max_cycles``
        elapse. Returns the finalised statistics block."""
        if max_insns <= 0:
            raise ValueError(f"max_insns must be positive, got {max_insns}")
        threads = self.threads
        stats = self.stats
        step = self.step
        ff = self.ff
        # Progress fingerprint: if no stage moved an instruction during a
        # step, the next cycle is a fast-forward candidate. Counters only
        # grow, so an unchanged sum means all five unchanged — and the
        # stop conditions below (commit budget reached, all threads
        # drained) depend only on state those counters guard, so they
        # are re-evaluated only when the fingerprint moves.
        progress = (
            stats.fetched + stats.renamed + stats.dispatched
            + stats.issued + stats.committed_total
        )
        while self.cycle < max_cycles:
            step()
            if self.cycle - self._last_commit_cycle > _WEDGE_LIMIT:
                raise RuntimeError(
                    f"no commits for {_WEDGE_LIMIT} cycles at cycle "
                    f"{self.cycle} — scheduler deadlock (model bug)"
                )
            new = (
                stats.fetched + stats.renamed + stats.dispatched
                + stats.issued + stats.committed_total
            )
            if new != progress:
                progress = new
                done = False
                for ts in threads:
                    if ts.committed >= max_insns:
                        done = True
                        break
                if done:
                    break
                alive = False
                for ts in threads:
                    # Inlined ThreadState.drained.
                    if (
                        ts.fetch_idx < ts.trace_len
                        or ts.pipe
                        or ts.dispatch_buffer
                        or ts.rob._entries
                    ):
                        alive = True
                        break
                if not alive:
                    break
            elif ff is not None:
                ff.try_skip(max_cycles)
        self._finalize()
        return self.stats

    def _finalize(self) -> None:
        stats = self.stats
        stats.iq_occupancy_integral = self.iq.occupancy_integral
        for ts in self.threads:
            stats.branch_lookups += ts.predictor.branches
            stats.branch_mispredicts += ts.predictor.mispredicts
            stats.store_forwards += ts.lsq.forwards
        stats.l1d_accesses = self.hierarchy.l1d.accesses
        stats.l1d_misses = self.hierarchy.l1d.misses
        stats.l2_accesses = self.hierarchy.l2.accesses
        stats.l2_misses = self.hierarchy.l2.misses
        if self.dab is not None:
            stats.dab_inserts = self.dab.inserts

"""The SMT processor cycle loop.

Stages are evaluated back-to-front every cycle so same-cycle structural
constraints resolve without moving an instruction through two stages in
one cycle::

    commit -> writeback events -> issue (select) -> dispatch -> rename -> fetch

Timing model (see DESIGN.md §5):

* an instruction fetched at cycle ``C`` reaches rename no earlier than
  ``C + frontend_depth - 1`` (the 5-stage front end of Table 1);
* a producer selected at cycle ``C`` with execution latency ``L`` wakes
  its consumers at ``C + L`` (full bypass: back-to-back issue for
  single-cycle ops) and retires-eligible at ``C + regread_stages + L``;
* loads resolve their cache access at select time (the trace provides
  the address), extending both wakeup and completion by the miss
  penalty; store-to-load forwarding takes the L1-hit path;
* branches resolve at completion; a misprediction stalls the thread's
  fetch from prediction time until resolution + redirect penalty.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.config.machine import MachineConfig
from repro.core.deadlock import DeadlockAvoidanceBuffer, WatchdogTimer
from repro.core.iq import IssueQueue
from repro.core.scheduler import make_dispatch_policy
from repro.isa.opcodes import FU_ASSIGNMENT, OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.dynamic import DynInstr
from repro.pipeline.fu import FunctionalUnitPool
from repro.pipeline.stats import PipelineStats
from repro.pipeline.thread import ThreadState
from repro.rename.renamer import RenameUnit
from repro.trace.generator import Trace

#: Upper bound on ready-heap entries examined per select cycle. The FU
#: pools of Table 1 are wide enough that deeper scans never issue more;
#: bounding the scan keeps pathological cycles O(width).
_SELECT_SCAN_LIMIT = 64

#: Cycles without a single commit before the simulator declares itself
#: wedged (a model bug — the deadlock-avoidance machinery should make
#: this unreachable).
_WEDGE_LIMIT = 250_000

#: Period (power of two) of the HDI pile-up sampling (§4 statistic).
_HDI_SAMPLE_MASK = 15


class SMTProcessor:
    """Cycle-level SMT core executing one trace per hardware thread."""

    def __init__(self, cfg: MachineConfig, traces: list[Trace],
                 warmup: int = 0) -> None:
        if not traces:
            raise ValueError("need at least one thread trace")
        if warmup < 0 or any(warmup >= len(t) for t in traces):
            raise ValueError(
                f"warmup ({warmup}) must be non-negative and shorter than "
                "every trace"
            )
        self.cfg = cfg
        self.num_threads = len(traces)
        self.renamer = RenameUnit(cfg, self.num_threads)
        self.iq = IssueQueue(
            cfg.iq_size, cfg.iq_comparators_per_entry, self.renamer.ready
        )
        self.policy = make_dispatch_policy(cfg)
        self.dab: DeadlockAvoidanceBuffer | None = None
        self.watchdog: WatchdogTimer | None = None
        if self.policy.supports_ooo:
            if cfg.deadlock_mode == "buffer":
                self.dab = DeadlockAvoidanceBuffer(cfg.deadlock_buffer_size)
            else:
                self.watchdog = WatchdogTimer(cfg.watchdog_cycles)
        self.hierarchy = MemoryHierarchy(cfg.mem)
        self.fu = FunctionalUnitPool(cfg)
        self.threads = [
            ThreadState(tid, trace, cfg) for tid, trace in enumerate(traces)
        ]
        self.stats = PipelineStats(num_threads=self.num_threads)
        from repro.frontend.fetch import FetchUnit

        self.fetch_unit = FetchUnit(cfg)
        self.cycle = 0
        self._seq = 0
        #: cycle -> physical registers becoming ready (wakeup broadcast).
        self._wake_events: dict[int, list[int]] = {}
        #: cycle -> instructions finishing execution (completion).
        self._done_events: dict[int, list[DynInstr]] = {}
        self._last_commit_cycle = 0
        self.sanitizer = None
        if cfg.sanitize:
            # Imported lazily: the analysis layer sits above the pipeline
            # and costs nothing when sanitizing is off.
            from repro.analysis.sanitizer import PipelineSanitizer

            self.sanitizer = PipelineSanitizer(self)
        self._install_residency()
        if warmup:
            self._warm_up(warmup)
        self.hierarchy.reset_stats()

    # ------------------------------------------------------------------
    # warmup
    # ------------------------------------------------------------------
    def _install_residency(self) -> None:
        """Pre-touch each trace's steady-state resident lines (code and
        data) so reduced-scale simulations do not start from pathological
        all-cold caches; see ``Trace.warm_addrs``."""
        hierarchy = self.hierarchy
        for ts in self.threads:
            for pc in ts.trace.warm_pcs:
                hierarchy.access_inst(pc)
            for addr in ts.trace.warm_addrs:
                hierarchy.access_data(addr)

    def _warm_up(self, warmup: int) -> None:
        """Functionally replay the first ``warmup`` trace instructions of
        each thread through the branch predictors and caches, then start
        timing simulation after them.

        The paper fast-forwards each benchmark to its SimPoint region
        before measuring, so its tables/figures describe *warm*
        microarchitectural state; at the reduced instruction budgets of a
        pure-Python reproduction, cold predictors and caches would
        otherwise dominate every number (see DESIGN.md §2).
        """
        branch_op = int(OpClass.BRANCH)
        load_op = int(OpClass.LOAD)
        store_op = int(OpClass.STORE)
        line_shift = self.cfg.mem.l1i.line_bytes.bit_length() - 1
        for ts in self.threads:
            trace = ts.trace
            predictor = ts.predictor
            hierarchy = self.hierarchy
            ops = trace.op
            pcs = trace.pc
            last_block = -1
            for i in range(warmup):
                pc = pcs[i]
                block = pc >> line_shift
                if block != last_block:
                    hierarchy.access_inst(pc)
                    last_block = block
                op = ops[i]
                if op == branch_op:
                    pred = predictor.predict(
                        pc, trace.taken[i], trace.target[i]
                    )
                    predictor.resolve(
                        pc, trace.taken[i], trace.target[i], pred
                    )
                elif op == load_op or op == store_op:
                    hierarchy.access_data(trace.addr[i])
            ts.fetch_idx = warmup
            predictor.branches = 0
            predictor.mispredicts = 0
            predictor.gshare.lookups = 0
            predictor.gshare.hits = 0
            predictor.btb.lookups = 0
            predictor.btb.hits = 0

    # ------------------------------------------------------------------
    # instruction factory
    # ------------------------------------------------------------------
    def new_instr(self, ts: ThreadState, idx: int, cycle: int) -> DynInstr:
        """Materialise trace instruction ``idx`` of thread ``ts``."""
        trace = ts.trace
        instr = DynInstr(
            tid=ts.tid,
            seq=self._seq,
            tseq=idx,
            op=trace.op[idx],
            pc=trace.pc[idx],
            addr=trace.addr[idx],
            taken=trace.taken[idx],
            target=trace.target[idx],
            dest_l=trace.dest[idx],
            src1_l=trace.src1[idx],
            src2_l=trace.src2[idx],
            fetch_cycle=cycle,
        )
        self._seq += 1
        return instr

    def _rotation(self, cycle: int) -> list[ThreadState]:
        n = self.num_threads
        if n == 1:
            return self.threads
        start = cycle % n
        threads = self.threads
        return [threads[(start + i) % n] for i in range(n)]

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _commit(self, cycle: int) -> None:
        budget = self.cfg.commit_width
        stats = self.stats
        for ts in self._rotation(cycle):
            if budget <= 0:
                break
            rob = ts.rob
            while budget > 0:
                head = rob.head
                if head is None or not head.completed:
                    break
                rob.retire_head()
                self.renamer.release(head.old_dest_p)
                if head.is_load or head.is_store:
                    ts.lsq.release(head)
                    if head.is_store:
                        # Retirement write; timing charged at issue already.
                        self.hierarchy.access_data(head.addr)
                ts.committed += 1
                stats.committed[ts.tid] += 1
                stats.committed_total += 1
                budget -= 1
                self._last_commit_cycle = cycle

    def _apply_events(self, cycle: int) -> None:
        wakes = self._wake_events.pop(cycle, None)
        if wakes:
            ready = self.renamer.ready
            wakeup = self.iq.wakeup
            for p in wakes:
                ready[p] = 1
                wakeup(p)
        dones = self._done_events.pop(cycle, None)
        if dones:
            for instr in dones:
                instr.completed = True
                instr.complete_cycle = cycle
                if instr.long_miss:
                    self.threads[instr.tid].pending_long_misses -= 1
                if instr.is_branch:
                    ts = self.threads[instr.tid]
                    ts.predictor.resolve(
                        instr.pc, instr.taken, instr.target, instr.prediction
                    )
                    if instr.mispredicted and ts.wait_branch is instr:
                        ts.wait_branch = None
                        ts.stalled_until = max(
                            ts.stalled_until,
                            cycle + self.cfg.mispredict_redirect_penalty,
                        )

    def _start_execution(self, instr: DynInstr, cycle: int,
                         from_iq: bool) -> None:
        instr.issued = True
        instr.issue_cycle = cycle
        ts = self.threads[instr.tid]
        ts.icount -= 1
        stats = self.stats
        stats.issued += 1
        if from_iq:
            stats.iq_residency_sum += cycle - instr.dispatch_cycle
            stats.iq_residency_count += 1
        latency = FU_ASSIGNMENT[OpClass(instr.op)][1]
        extra = 0
        if instr.is_load:
            if ts.lsq.can_forward(instr):
                instr.forwarded = True
            else:
                extra = self.hierarchy.access_data(instr.addr).extra_latency
                if extra >= self.cfg.mem.memory_latency:
                    instr.long_miss = True
                    ts.pending_long_misses += 1
        wake_at = cycle + latency + extra
        done_at = wake_at + self.cfg.regread_stages
        if instr.dest_p >= 0:
            bucket = self._wake_events.get(wake_at)
            if bucket is None:
                self._wake_events[wake_at] = [instr.dest_p]
            else:
                bucket.append(instr.dest_p)
        bucket = self._done_events.get(done_at)
        if bucket is None:
            self._done_events[done_at] = [instr]
        else:
            bucket.append(instr)

    def _issue(self, cycle: int) -> None:
        budget = self.cfg.issue_width
        fu = self.fu
        dab = self.dab
        if dab is not None and dab.entries:
            # Deadlock-avoidance instructions take precedence (§4); their
            # sources are ready by construction.
            remaining: list[DynInstr] = []
            for instr in dab.entries:
                if budget > 0 and fu.try_claim(instr.op, cycle):
                    instr.in_dab = False
                    budget -= 1
                    self.stats.dab_issues += 1
                    self._start_execution(instr, cycle, from_iq=False)
                else:
                    remaining.append(instr)
            dab.entries = remaining
            if self.cfg.dab_exclusive and dab.entries:
                # Paper §4 simple arbitration: while the deadlock buffer
                # is occupied, IQ selection is disabled this cycle.
                return
        if budget <= 0:
            return
        iq = self.iq
        heap = iq.ready_heap
        deferred: list[tuple[int, DynInstr]] = []
        scanned = 0
        while heap and budget > 0 and scanned < _SELECT_SCAN_LIMIT:
            item = heappop(heap)
            instr = item[1]
            scanned += 1
            if not instr.in_iq:
                continue
            if fu.try_claim(instr.op, cycle):
                iq.remove_on_issue(instr)
                budget -= 1
                self._start_execution(instr, cycle, from_iq=True)
            else:
                deferred.append(item)
        for item in deferred:
            heappush(heap, item)

    def _dispatch(self, cycle: int) -> None:
        budget = self.cfg.dispatch_width
        total = 0
        threads = self.threads
        for ts in threads:
            ts.blocked_2op = False
        order = self._rotation(cycle)
        policy = self.policy
        for ts in order:
            if budget <= 0:
                break
            n = policy.dispatch_thread(self, ts, cycle, budget)
            budget -= n
            total += n
        dab = self.dab
        if dab is not None and self.iq.free_slots == 0:
            # Paper §4: an instruction that is ROB-oldest and denied an IQ
            # entry moves to the deadlock-avoidance buffer.
            for ts in order:
                if not dab.has_space:
                    break
                buf = ts.dispatch_buffer
                if buf and ts.rob.head is buf[0]:
                    instr = buf.pop(0)
                    dab.insert(instr, cycle)
                    self.stats.dab_inserts += 1
                    total += 1
        stats = self.stats
        stats.dispatched += total
        for ts in threads:
            if ts.blocked_2op:
                stats.blocked_2op_cycles[ts.tid] += 1
        if total == 0:
            # Attribute the stall to the 2OP restriction only for threads
            # that could otherwise make forward progress: a thread whose
            # ROB is already full is window-saturated and would stall
            # under the traditional scheduler as well, so leftover NDIs
            # in its buffer are not the cause (paper §3 statistic).
            nonempty = [ts for ts in threads if ts.dispatch_buffer]
            relevant = [ts for ts in nonempty if not ts.rob.full]
            if nonempty:
                stats.no_dispatch_cycles += 1
            if relevant:
                if all(
                    ts.blocked_2op or policy.scan_blocked(self, ts)
                    for ts in relevant
                ):
                    stats.all_blocked_2op_cycles += 1
                elif self.iq.free_slots == 0:
                    stats.iq_full_dispatch_stalls += 1
        if policy.needs_reduced_iq and (cycle & _HDI_SAMPLE_MASK) == 0:
            self._sample_hdi()
        watchdog = self.watchdog
        if watchdog is not None:
            if total:
                watchdog.note_dispatch()
            elif any(len(ts.rob) for ts in threads):
                if watchdog.tick():
                    self._flush_all(cycle)

    def _sample_hdi(self) -> None:
        """Sample the §4 statistic: of the instructions piled up behind
        the first NDI of each thread, how many are themselves
        dispatchable (HDIs)?"""
        iq = self.iq
        stats = self.stats
        for ts in self.threads:
            buf = ts.dispatch_buffer
            first_ndi = -1
            for i, instr in enumerate(buf):
                if len(iq.nonready_sources(instr)) >= 2:
                    first_ndi = i
                    break
            if first_ndi < 0:
                continue
            for instr in buf[first_ndi + 1:]:
                stats.hdi_piled_samples += 1
                if len(iq.nonready_sources(instr)) < 2:
                    stats.hdi_piled_dispatchable += 1

    def _rename(self, cycle: int) -> None:
        budget = self.cfg.decode_width
        renamer = self.renamer
        depth = self.cfg.dispatch_buffer_depth
        stats = self.stats
        for ts in self._rotation(cycle + 1):
            if budget <= 0:
                break
            pipe = ts.pipe
            buf = ts.dispatch_buffer
            rob = ts.rob
            lsq = ts.lsq
            while budget > 0 and pipe and pipe[0][0] <= cycle:
                if len(buf) >= depth or rob.full:
                    break
                instr = pipe[0][1]
                if (instr.is_load or instr.is_store) and lsq.full:
                    break
                if not renamer.can_rename(ts.tid, instr.dest_l):
                    break
                pipe.popleft()
                d, old, s1, s2 = renamer.rename(
                    ts.tid, instr.dest_l, instr.src1_l, instr.src2_l
                )
                instr.dest_p = d
                instr.old_dest_p = old
                instr.src1_p = s1
                instr.src2_p = s2
                instr.rename_cycle = cycle
                rob.allocate(instr)
                if instr.is_load or instr.is_store:
                    lsq.allocate(instr)
                buf.append(instr)
                budget -= 1
                stats.renamed += 1

    def _flush_all(self, cycle: int) -> None:
        """Watchdog recovery: squash everything in flight and refetch
        from each thread's oldest uncommitted instruction."""
        resume = cycle + 1
        for ts in self.threads:
            ts.flush_inflight(resume)
        self.iq.reset()
        if self.dab is not None:
            self.dab.clear()
        self._wake_events.clear()
        self._done_events.clear()
        self.fu.reset()
        self.renamer.reset()
        self.stats.watchdog_flushes += 1

    # ------------------------------------------------------------------
    # invariants (used by the test suite; not called on the hot path)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check cross-structure invariants; raises ``AssertionError``.

        Intended for tests and debugging — it walks every in-flight
        instruction, so it is far too slow to run per cycle in
        experiments. For periodic in-run checking with structured
        failures, enable ``MachineConfig.sanitize`` instead
        (:mod:`repro.analysis.sanitizer`).
        """
        in_iq = 0
        for ts in self.threads:
            pipe_n = len(ts.pipe)
            buf_n = len(ts.dispatch_buffer)
            iq_n = sum(1 for instr in ts.rob if instr.in_iq)
            dab_n = sum(1 for instr in ts.rob if instr.in_dab)
            in_iq += iq_n
            assert ts.icount == pipe_n + buf_n + iq_n + dab_n, (
                f"thread {ts.tid}: icount {ts.icount} != "
                f"{pipe_n}+{buf_n}+{iq_n}+{dab_n}"
            )
            assert len(ts.rob) <= ts.rob.capacity
            assert ts.lsq.count <= ts.lsq.capacity
            for instr in ts.dispatch_buffer:
                assert not instr.in_iq and not instr.issued, (
                    f"buffered instruction already scheduled: {instr!r}"
                )
            prev = -1
            for instr in ts.rob:
                assert instr.tseq > prev, "ROB out of program order"
                prev = instr.tseq
        assert in_iq == self.iq.occupancy, (
            f"IQ occupancy {self.iq.occupancy} != {in_iq} in-flight entries"
        )
        for tag, waiters in self.iq.waiting.items():
            for instr in waiters:
                if instr.in_iq:
                    assert instr.num_waiting > 0, (
                        f"IQ entry waits on ready tag {tag}: {instr!r}"
                    )
        if self.dab is not None:
            assert len(self.dab.entries) <= self.dab.size
            for instr in self.dab.entries:
                assert instr.in_dab and not instr.issued

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        self._commit(cycle)
        self._apply_events(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._rename(cycle)
        self.fetch_unit.fetch_cycle(self, cycle)
        self.iq.tick()
        self.stats.cycles += 1
        self.cycle = cycle + 1
        sanitizer = self.sanitizer
        if sanitizer is not None and cycle % sanitizer.interval == 0:
            sanitizer.check(cycle)

    def run(self, max_insns: int, max_cycles: int = 5_000_000,
            ) -> PipelineStats:
        """Simulate until any thread commits ``max_insns`` instructions
        (the paper's stopping rule), every trace drains, or ``max_cycles``
        elapse. Returns the finalised statistics block."""
        if max_insns <= 0:
            raise ValueError(f"max_insns must be positive, got {max_insns}")
        threads = self.threads
        while self.cycle < max_cycles:
            self.step()
            if self.cycle - self._last_commit_cycle > _WEDGE_LIMIT:
                raise RuntimeError(
                    f"no commits for {_WEDGE_LIMIT} cycles at cycle "
                    f"{self.cycle} — scheduler deadlock (model bug)"
                )
            done = False
            for ts in threads:
                if ts.committed >= max_insns:
                    done = True
                    break
            if done or all(ts.drained for ts in threads):
                break
        self._finalize()
        return self.stats

    def _finalize(self) -> None:
        stats = self.stats
        stats.iq_occupancy_integral = self.iq.occupancy_integral
        for ts in self.threads:
            stats.branch_lookups += ts.predictor.branches
            stats.branch_mispredicts += ts.predictor.mispredicts
            stats.store_forwards += ts.lsq.forwards
        stats.l1d_accesses = self.hierarchy.l1d.accesses
        stats.l1d_misses = self.hierarchy.l1d.misses
        stats.l2_accesses = self.hierarchy.l2.accesses
        stats.l2_misses = self.hierarchy.l2.misses
        if self.dab is not None:
            stats.dab_inserts = self.dab.inserts

"""Per-thread load/store queue (48 entries per thread in the paper).

Trace-driven simplifications (identical across all scheduler designs, so
relative comparisons are unaffected):

* effective addresses are known at rename (the trace carries them), so a
  store becomes visible to forwarding as soon as it is renamed;
* disambiguation is perfect — loads never wait for unknown store
  addresses and never replay;
* a load forwards when an *older* in-flight store of the same thread
  matches its address exactly, taking the L1-hit path with no cache
  access.
"""

from __future__ import annotations

from repro.pipeline.dynamic import DynInstr


class LoadStoreQueue:
    """Occupancy tracking plus store-to-load forwarding for one thread."""

    __slots__ = ("capacity", "count", "_stores", "forwards",
                 "last_alloc_tseq", "alloc_order_ok")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"LSQ capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.count = 0
        #: address -> per-address FIFO of store tseqs still in flight.
        self._stores: dict[int, list[int]] = {}
        self.forwards = 0
        #: program-order watermark + flag read by the pipeline sanitizer
        #: (allocation must stay in program order even under OOO dispatch).
        self.last_alloc_tseq = -1
        self.alloc_order_ok = True

    # ------------------------------------------------------------------
    @property
    def full(self) -> bool:
        """True when rename must stall a memory instruction."""
        return self.count >= self.capacity

    def allocate(self, instr: DynInstr) -> None:
        """Reserve an entry at rename; stores become forwarding sources."""
        if self.full:
            raise RuntimeError("LSQ overflow (rename stage bug)")
        if instr.tseq <= self.last_alloc_tseq:
            self.alloc_order_ok = False
        else:
            self.last_alloc_tseq = instr.tseq
        self.count += 1
        if instr.is_store:
            self._stores.setdefault(instr.addr, []).append(instr.tseq)

    def can_forward(self, instr: DynInstr) -> bool:
        """Whether load ``instr`` hits an older in-flight store."""
        seqs = self._stores.get(instr.addr)
        if not seqs:
            return False
        if seqs[0] < instr.tseq:
            self.forwards += 1
            return True
        return False

    def release(self, instr: DynInstr) -> None:
        """Free the entry at commit."""
        self.count -= 1
        if instr.is_store:
            seqs = self._stores.get(instr.addr)
            if seqs:
                # Stores commit in program order, so the head is ours.
                seqs.pop(0)
                if not seqs:
                    del self._stores[instr.addr]

    def reset(self) -> None:
        """Drop all state (watchdog flush)."""
        self.count = 0
        self._stores.clear()
        self.last_alloc_tseq = -1
        self.alloc_order_ok = True

"""Functional-unit pool with per-unit busy tracking (Table 1).

Each unit records the next cycle at which it can accept an operation;
multi-cycle-occupancy ops (divides, square roots) therefore block their
unit for the ``issue interval`` of :data:`repro.isa.opcodes.FU_ASSIGNMENT`
while pipelined ops accept one operation per cycle.

``try_claim``/``available`` run once per selected instruction per cycle,
so they use the flat :data:`repro.isa.opcodes.OP_FU`/``OP_INTERVAL``
tables instead of the enum-keyed assignment dict.
"""

from __future__ import annotations

from repro.config.machine import MachineConfig
from repro.isa.opcodes import OP_FU, OP_INTERVAL, FUClass


class FunctionalUnitPool:
    """All execution resources of the SMT core, shared by every thread."""

    __slots__ = ("_units", "issued_per_class")

    def __init__(self, cfg: MachineConfig) -> None:
        #: per FU class (list index == ``FUClass`` value): next-free
        #: cycle of each unit in the pool.
        self._units: list[list[int]] = [
            [0] * cfg.fu_int_alu,       # FUClass.INT_ALU
            [0] * cfg.fu_int_muldiv,    # FUClass.INT_MULDIV
            [0] * cfg.fu_mem_ports,     # FUClass.MEM_PORT
            [0] * cfg.fu_fp_add,        # FUClass.FP_ADD
            [0] * cfg.fu_fp_muldiv,     # FUClass.FP_MULDIV
        ]
        assert len(self._units) == len(FUClass)
        #: per FU class (list index == ``FUClass`` value): operations
        #: issued so far.
        self.issued_per_class: list[int] = [0] * len(FUClass)

    # ------------------------------------------------------------------
    def try_claim(self, op: int, cycle: int) -> bool:  # repro: hot
        """Claim a unit for ``op`` at ``cycle``; False if all are busy."""
        fu = OP_FU[op]
        units = self._units[fu]
        i = 0
        for free_at in units:
            if free_at <= cycle:
                units[i] = cycle + OP_INTERVAL[op]
                self.issued_per_class[fu] += 1
                return True
            i += 1
        return False

    def available(self, op: int, cycle: int) -> bool:  # repro: hot
        """Whether a unit could accept ``op`` at ``cycle`` (no claim)."""
        for free_at in self._units[OP_FU[op]]:
            if free_at <= cycle:
                return True
        return False

    def reset(self) -> None:
        """Mark every unit idle (watchdog flush)."""
        for units in self._units:
            for i in range(len(units)):
                units[i] = 0

"""Functional-unit pool with per-unit busy tracking (Table 1).

Each unit records the next cycle at which it can accept an operation;
multi-cycle-occupancy ops (divides, square roots) therefore block their
unit for the ``issue interval`` of :data:`repro.isa.opcodes.FU_ASSIGNMENT`
while pipelined ops accept one operation per cycle.
"""

from __future__ import annotations

from repro.config.machine import MachineConfig
from repro.isa.opcodes import FU_ASSIGNMENT, FUClass, OpClass


class FunctionalUnitPool:
    """All execution resources of the SMT core, shared by every thread."""

    __slots__ = ("_units", "issued_per_class")

    def __init__(self, cfg: MachineConfig) -> None:
        counts = {
            FUClass.INT_ALU: cfg.fu_int_alu,
            FUClass.INT_MULDIV: cfg.fu_int_muldiv,
            FUClass.MEM_PORT: cfg.fu_mem_ports,
            FUClass.FP_ADD: cfg.fu_fp_add,
            FUClass.FP_MULDIV: cfg.fu_fp_muldiv,
        }
        #: per FU class: list of next-free cycle per unit.
        self._units: dict[int, list[int]] = {
            int(fu): [0] * n for fu, n in counts.items()
        }
        self.issued_per_class: dict[int, int] = {int(fu): 0 for fu in counts}

    # ------------------------------------------------------------------
    def try_claim(self, op: int, cycle: int) -> bool:
        """Claim a unit for ``op`` at ``cycle``; False if all are busy."""
        fu, _lat, interval = FU_ASSIGNMENT[OpClass(op)]
        units = self._units[int(fu)]
        for i, free_at in enumerate(units):
            if free_at <= cycle:
                units[i] = cycle + interval
                self.issued_per_class[int(fu)] += 1
                return True
        return False

    def available(self, op: int, cycle: int) -> bool:
        """Whether a unit could accept ``op`` at ``cycle`` (no claim)."""
        fu = FU_ASSIGNMENT[OpClass(op)][0]
        units = self._units[int(fu)]
        return any(free_at <= cycle for free_at in units)

    def reset(self) -> None:
        """Mark every unit idle (watchdog flush)."""
        for units in self._units.values():
            for i in range(len(units)):
                units[i] = 0

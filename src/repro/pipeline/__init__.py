"""The SMT pipeline: dynamic instructions, ROB/LSQ, functional units and
the cycle-level core (:class:`repro.pipeline.smt_core.SMTProcessor`)."""

from repro.pipeline.dynamic import DynInstr
from repro.pipeline.smt_core import SMTProcessor
from repro.pipeline.stats import PipelineStats

__all__ = ["DynInstr", "SMTProcessor", "PipelineStats"]

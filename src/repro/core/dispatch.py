"""Dispatch policy interface and the traditional in-order policy.

A dispatch policy decides, each cycle and for each thread, which renamed
instructions move from the thread's dispatch buffer into the shared issue
queue. Policies see the core through a narrow surface: the issue queue
(for free slots and readiness queries), the thread's dispatch buffer, and
the statistics block.
"""

from __future__ import annotations


class DispatchPolicy:
    """Base class for dispatch policies.

    Attributes:
        needs_reduced_iq: True when the policy requires (and exploits) an
            issue queue with a single tag comparator per entry.
        supports_ooo: True when the policy may dispatch instructions out
            of program order within a thread (enables deadlock handling).
        max_nonready_sources: most distinct non-ready source tags an
            instruction admitted by this policy may carry — the contract
            the pipeline sanitizer checks against resident IQ entries.
    """

    needs_reduced_iq = False
    supports_ooo = False
    max_nonready_sources = 2

    def dispatch_thread(self, core, ts, cycle: int, budget: int) -> int:
        """Dispatch up to ``budget`` instructions from thread ``ts``.

        Returns the number of instructions moved into the IQ. Must set
        ``ts.blocked_2op`` when the thread cannot dispatch *because of*
        the policy's operand-readiness restriction (used for the paper's
        all-threads-stalled statistic).
        """
        raise NotImplementedError

    def scan_blocked(self, core, ts) -> bool:
        """Whether ``ts`` is currently blocked purely by policy rules
        (i.e. it has buffered instructions, none of which the policy
        would admit even with unlimited IQ space and width)."""
        return False


class InOrderDispatch(DispatchPolicy):
    """Traditional scheduler: program-order dispatch, 2 comparators/entry.

    An instruction may enter the IQ with any number of non-ready sources;
    dispatch only stops on IQ-full, width exhaustion, or an empty buffer.
    """

    def dispatch_thread(self, core, ts, cycle: int, budget: int) -> int:  # repro: hot
        iq = core.iq
        buf = ts.dispatch_buffer
        # Each insert raises occupancy by exactly one, so the admissible
        # count can be precomputed and the buffer drained in one slice.
        n = iq.capacity - iq.occupancy
        if budget < n:
            n = budget
        if len(buf) < n:
            n = len(buf)
        if n <= 0:
            return 0
        iq.insert_slice(buf, n, cycle)
        del buf[:n]
        return n

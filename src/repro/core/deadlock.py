"""Deadlock handling for out-of-order dispatch (§4 of the paper).

With in-order dispatch the oldest instruction of a thread always makes
progress, so the pipeline cannot deadlock. Out-of-order dispatch breaks
that guarantee: younger dependents may fill the IQ while their producer
is still stuck at dispatch. The paper offers two remedies:

* **Deadlock-avoidance buffer** (used for the evaluation): when the
  ROB-oldest instruction of a thread cannot get an IQ entry, it is placed
  in a tiny RAM buffer instead. Being ROB-oldest, all its sources are
  ready by definition, so the buffer needs no wakeup CAM; its
  instructions take precedence at select time.
* **Watchdog timer**: a countdown reset on every dispatch; on expiry the
  pipeline is flushed and every thread restarts from its ROB head.
"""

from __future__ import annotations

from repro.pipeline.dynamic import DynInstr


class DeadlockAvoidanceBuffer:
    """Small RAM buffer holding ROB-oldest instructions denied an IQ slot."""

    __slots__ = ("size", "entries", "inserts")

    def __init__(self, size: int = 1) -> None:
        if size <= 0:
            raise ValueError(f"buffer size must be positive, got {size}")
        self.size = size
        self.entries: list[DynInstr] = []
        self.inserts = 0

    @property
    def has_space(self) -> bool:
        """Whether another instruction can be accepted this cycle."""
        return len(self.entries) < self.size

    def insert(self, instr: DynInstr, cycle: int) -> None:
        """Accept the ROB-oldest instruction ``instr``."""
        if not self.has_space:
            raise RuntimeError("deadlock-avoidance buffer overflow")
        instr.in_dab = True
        instr.dispatch_cycle = cycle
        self.entries.append(instr)
        self.inserts += 1

    def first_invalid_entry(self, ready_bits: bytearray) -> DynInstr | None:
        """First entry violating the buffer's §4 contract, if any.

        A resident instruction must be flagged ``in_dab``, unissued, and
        — being ROB-oldest when inserted — have every renamed source
        already ready. Used by the pipeline sanitizer.
        """
        for instr in self.entries:
            if not instr.in_dab or instr.issued:
                return instr
            for src in (instr.src1_p, instr.src2_p):
                if src >= 0 and not ready_bits[src]:
                    return instr
        return None

    def clear(self) -> None:
        """Drop all entries (watchdog flush)."""
        for instr in self.entries:
            instr.in_dab = False
        self.entries.clear()


class WatchdogTimer:
    """Dispatch-inactivity countdown triggering a recovery flush."""

    __slots__ = ("timeout", "remaining", "expiries")

    def __init__(self, timeout: int) -> None:
        if timeout <= 0:
            raise ValueError(f"watchdog timeout must be positive, got {timeout}")
        self.timeout = timeout
        self.remaining = timeout
        self.expiries = 0

    def note_dispatch(self) -> None:
        """Reset the countdown — an instruction dispatched this cycle."""
        self.remaining = self.timeout

    def tick(self) -> bool:
        """Advance one dispatch-free cycle; True when the timer expires."""
        self.remaining -= 1
        if self.remaining <= 0:
            self.expiries += 1
            self.remaining = self.timeout
            return True
        return False

"""The 2OP_BLOCK dispatch policy (prior work the paper builds on).

An instruction reaching dispatch with **two distinct non-ready source
tags** is non-dispatchable (NDI): it and every younger instruction of the
same thread wait in the front end. The ready bits of the blocked
instruction are re-examined every cycle ("such checks ... are routinely
performed in the baseline machine"); the thread resumes as soon as one
source becomes ready. The payoff is an issue queue with one comparator
per entry; the cost is the ILP throttling this paper quantifies.
"""

from __future__ import annotations

from repro.core.dispatch import DispatchPolicy


class TwoOpBlockDispatch(DispatchPolicy):
    """In-order dispatch that refuses instructions with 2 non-ready sources."""

    needs_reduced_iq = True
    max_nonready_sources = 1

    def dispatch_thread(self, core, ts, cycle: int, budget: int) -> int:  # repro: hot
        iq = core.iq
        buf = ts.dispatch_buffer
        limit = iq.capacity - iq.occupancy
        if budget < limit:
            limit = budget
        if len(buf) < limit:
            limit = len(buf)
        if limit <= 0:
            return 0
        # Find the admissible prefix (stops at the first NDI: two
        # distinct non-ready sources), then insert it in one call.
        bits = iq._ready_bits
        n = 0
        while n < limit:
            instr = buf[n]
            s1, s2 = instr.src1_p, instr.src2_p
            if (s1 >= 0 and not bits[s1]
                    and s2 >= 0 and s2 != s1 and not bits[s2]):
                instr.was_ndi_blocked = True
                ts.blocked_2op = True
                break
            n += 1
        if n:
            iq.insert_slice(buf, n, cycle)
            del buf[:n]
        return n

    def scan_blocked(self, core, ts) -> bool:  # repro: hot
        buf = ts.dispatch_buffer
        if not buf:
            return False
        return core.iq.nonready_count(buf[0]) >= 2

"""The 2OP_BLOCK dispatch policy (prior work the paper builds on).

An instruction reaching dispatch with **two distinct non-ready source
tags** is non-dispatchable (NDI): it and every younger instruction of the
same thread wait in the front end. The ready bits of the blocked
instruction are re-examined every cycle ("such checks ... are routinely
performed in the baseline machine"); the thread resumes as soon as one
source becomes ready. The payoff is an issue queue with one comparator
per entry; the cost is the ILP throttling this paper quantifies.
"""

from __future__ import annotations

from repro.core.dispatch import DispatchPolicy


class TwoOpBlockDispatch(DispatchPolicy):
    """In-order dispatch that refuses instructions with 2 non-ready sources."""

    needs_reduced_iq = True
    max_nonready_sources = 1

    def dispatch_thread(self, core, ts, cycle: int, budget: int) -> int:
        iq = core.iq
        buf = ts.dispatch_buffer
        n = 0
        while buf and n < budget and iq.occupancy < iq.capacity:
            instr = buf[0]
            if len(iq.nonready_sources(instr)) >= 2:
                instr.was_ndi_blocked = True
                ts.blocked_2op = True
                break
            del buf[0]
            iq.insert(instr, cycle)
            n += 1
        return n

    def scan_blocked(self, core, ts) -> bool:
        buf = ts.dispatch_buffer
        if not buf:
            return False
        return len(core.iq.nonready_sources(buf[0])) >= 2

"""The paper's contribution: issue-queue and dispatch-policy designs.

* :class:`~repro.core.iq.IssueQueue` — wakeup/select scheduler with a
  per-entry tag-comparator budget (2 for the traditional design, 1 for
  the 2OP_* designs).
* :mod:`repro.core.dispatch` — in-order dispatch (traditional machine).
* :mod:`repro.core.two_op_block` — the 2OP_BLOCK policy of [13]
  (Sharkey & Ponomarev, HPCA 2006).
* :mod:`repro.core.ooo_dispatch` — 2OP_BLOCK augmented with out-of-order
  dispatch of hidden dispatchable instructions (this paper's proposal),
  plus the idealized NDI-dependence-filtering ablation.
* :mod:`repro.core.deadlock` — deadlock-avoidance buffer and watchdog
  timer (§4).
"""

from repro.core.deadlock import DeadlockAvoidanceBuffer, WatchdogTimer
from repro.core.dispatch import DispatchPolicy, InOrderDispatch
from repro.core.iq import IssueQueue
from repro.core.ooo_dispatch import OutOfOrderDispatch
from repro.core.scheduler import make_dispatch_policy
from repro.core.two_op_block import TwoOpBlockDispatch

__all__ = [
    "IssueQueue",
    "DispatchPolicy",
    "InOrderDispatch",
    "TwoOpBlockDispatch",
    "OutOfOrderDispatch",
    "DeadlockAvoidanceBuffer",
    "WatchdogTimer",
    "make_dispatch_policy",
]

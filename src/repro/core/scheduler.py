"""Factory mapping configuration names to scheduler components."""

from __future__ import annotations

from repro.config.machine import MachineConfig
from repro.core.dispatch import DispatchPolicy, InOrderDispatch
from repro.core.ooo_dispatch import OutOfOrderDispatch
from repro.core.two_op_block import TwoOpBlockDispatch


def make_dispatch_policy(cfg: MachineConfig) -> DispatchPolicy:
    """Instantiate the dispatch policy selected by ``cfg.scheduler``."""
    if cfg.scheduler == "traditional":
        return InOrderDispatch()
    if cfg.scheduler == "2op_block":
        return TwoOpBlockDispatch()
    if cfg.scheduler == "2op_ooo":
        return OutOfOrderDispatch(filtered=False)
    if cfg.scheduler == "2op_ooo_filtered":
        return OutOfOrderDispatch(filtered=True)
    raise ValueError(f"unknown scheduler kind {cfg.scheduler!r}")

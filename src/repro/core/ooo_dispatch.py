"""2OP_BLOCK with out-of-order dispatch — the paper's proposal (§4).

The dispatch stage scans the thread's buffer of renamed instructions in
program order. Non-dispatchable instructions (two distinct non-ready
source tags) are skipped but stay buffered; *hidden dispatchable
instructions* (HDIs) behind them enter the issue queue out of program
order. Register renaming and ROB/LSQ allocation already happened in
program order, so all true dependences are preserved.

The ``filtered`` variant models the paper's idealized ablation: HDIs that
directly or transitively depend on a prior (still-buffered) NDI are *not*
dispatched out of order. The paper measures this perfect, zero-overhead
filter to gain only ≈1.2 % IPC, justifying the blind design; we keep the
variant so the ablation can be regenerated.
"""

from __future__ import annotations

from repro.core.dispatch import DispatchPolicy


class OutOfOrderDispatch(DispatchPolicy):
    """Scan-past-NDIs dispatch (optionally NDI-dependence filtered)."""

    needs_reduced_iq = True
    supports_ooo = True
    max_nonready_sources = 1

    def __init__(self, filtered: bool = False) -> None:
        self.filtered = filtered

    def dispatch_thread(self, core, ts, cycle: int, budget: int) -> int:
        iq = core.iq
        buf = ts.dispatch_buffer
        if not buf:
            return 0
        stats = core.stats
        n = 0
        ndis_seen = 0
        # Dests transitively fed by a prior NDI; allocated lazily — most
        # dispatch scans see no NDI at all.
        tainted: set[int] | None = None
        dispatched: list[int] | None = None
        hit_resource_limit = False
        for i, instr in enumerate(buf):
            if n >= budget or iq.occupancy >= iq.capacity:
                hit_resource_limit = True
                break
            if iq.nonready_count(instr) >= 2:
                ndis_seen += 1
                instr.was_ndi_blocked = True
                if instr.dest_p >= 0:
                    if tainted is None:
                        tainted = {instr.dest_p}  # repro: noqa[RPR009] — lazy
                    else:
                        tainted.add(instr.dest_p)
                continue
            ndi_dep = tainted is not None and (
                instr.src1_p in tainted or instr.src2_p in tainted
            )
            if self.filtered and ndi_dep:
                # Idealized filter: hold NDI-dependent HDIs in the buffer.
                if instr.dest_p >= 0:
                    tainted.add(instr.dest_p)
                continue
            if ndis_seen:
                instr.ooo_dispatched = True
                instr.skipped_ndis = ndis_seen
                instr.ndi_dependent = ndi_dep
                stats.ooo_dispatched += 1
                if ndi_dep:
                    stats.ooo_ndi_dependent += 1
            if ndi_dep and instr.dest_p >= 0:
                tainted.add(instr.dest_p)
            iq.insert(instr, cycle)
            if dispatched is None:
                dispatched = [i]  # repro: noqa[RPR009] — lazy
            else:
                dispatched.append(i)
            n += 1
        if n == 0 and not hit_resource_limit:
            # Scanned the whole buffer and found nothing dispatchable:
            # blocked purely by the 2OP restriction.
            ts.blocked_2op = True
        if dispatched:
            # Guarded by `if dispatched`: pays only on cycles that moved
            # at least one instruction past an NDI.
            keep = set(dispatched)  # repro: noqa[RPR009]
            ts.dispatch_buffer = [  # repro: noqa[RPR009]
                ins for j, ins in enumerate(buf) if j not in keep
            ]
        return n

    def scan_blocked(self, core, ts) -> bool:
        buf = ts.dispatch_buffer
        if not buf:
            return False
        iq = core.iq
        if self.filtered:
            # Cold diagnostic path: runs only on zero-dispatch cycles.
            tainted: set[int] = set()  # repro: noqa[RPR009]
            for instr in buf:
                if iq.nonready_count(instr) >= 2:
                    if instr.dest_p >= 0:
                        tainted.add(instr.dest_p)
                    continue
                if instr.src1_p in tainted or instr.src2_p in tainted:
                    if instr.dest_p >= 0:
                        tainted.add(instr.dest_p)
                    continue
                return False
            return True
        for instr in buf:
            if iq.nonready_count(instr) < 2:
                return False
        return True

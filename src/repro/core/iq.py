"""Issue queue: wakeup/select with a per-entry comparator budget.

Entries watch at most ``comparators_per_entry`` distinct non-ready source
tags. The traditional design has 2 comparators per entry; the 2OP_*
designs have 1 (their dispatch policies guarantee no instruction needs
more). The queue enforces the budget with an assertion so a buggy policy
fails loudly instead of silently modelling impossible hardware.

Wakeup is index based (producer tag → list of waiting instructions)
instead of scanning every entry each cycle — the behavioural result is
identical to a CAM broadcast, and it keeps the Python inner loop off the
profile (DESIGN.md §6).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.pipeline.dynamic import DynInstr


class IssueQueue:
    """Shared SMT issue queue holding instructions until they issue."""

    __slots__ = (
        "capacity",
        "comparators_per_entry",
        "_ready_bits",
        "occupancy",
        "ready_heap",
        "waiting",
        "occupancy_integral",
    )

    def __init__(self, capacity: int, comparators_per_entry: int,
                 ready_bits: bytearray) -> None:
        if capacity <= 0:
            raise ValueError(f"IQ capacity must be positive, got {capacity}")
        if comparators_per_entry not in (1, 2):
            raise ValueError(
                f"comparators_per_entry must be 1 or 2, got "
                f"{comparators_per_entry}"
            )
        self.capacity = capacity
        self.comparators_per_entry = comparators_per_entry
        self._ready_bits = ready_bits
        self.occupancy = 0
        #: min-heap of (global seq, instr) over ready, unissued entries.
        self.ready_heap: list[tuple[int, DynInstr]] = []
        #: producer physical register -> instructions waiting on it.
        self.waiting: dict[int, list[DynInstr]] = {}
        #: sum of occupancy over cycles (average occupancy statistic).
        self.occupancy_integral = 0

    # ------------------------------------------------------------------
    @property
    def free_slots(self) -> int:
        """Entries currently available for dispatch."""
        return self.capacity - self.occupancy

    def nonready_sources(self, instr: DynInstr) -> list[int]:
        """Distinct non-ready source tags of ``instr`` right now.

        Two identical non-ready sources need a single comparator, hence
        count once (the paper's "two non-ready source operands" means two
        distinct outstanding tags).
        """
        bits = self._ready_bits
        s1, s2 = instr.src1_p, instr.src2_p
        out: list[int] = []
        if s1 >= 0 and not bits[s1]:
            out.append(s1)
        if s2 >= 0 and s2 != s1 and not bits[s2]:
            out.append(s2)
        return out

    def nonready_count(self, instr: DynInstr) -> int:  # repro: hot
        """``len(nonready_sources(instr))`` without building the list.

        The dispatch policies and the HDI sampler only need the count;
        they call this once (or more) per buffered instruction per cycle,
        so the allocation-free form matters.
        """
        bits = self._ready_bits
        s1, s2 = instr.src1_p, instr.src2_p
        n = 1 if s1 >= 0 and not bits[s1] else 0
        if s2 >= 0 and s2 != s1 and not bits[s2]:
            n += 1
        return n

    # ------------------------------------------------------------------
    def insert(self, instr: DynInstr, cycle: int) -> None:  # repro: hot
        """Dispatch ``instr`` into the queue.

        The caller must have verified :attr:`free_slots` and — for
        reduced-comparator queues — that the instruction is dispatchable.
        """
        if self.occupancy >= self.capacity:
            raise RuntimeError("issue queue overflow (dispatch policy bug)")
        # Inlined nonready_sources: runs once per dispatched instruction,
        # so the pending tags are tested without building a list.
        bits = self._ready_bits
        s1, s2 = instr.src1_p, instr.src2_p
        wait1 = s1 >= 0 and not bits[s1]
        wait2 = s2 >= 0 and s2 != s1 and not bits[s2]
        count = wait1 + wait2
        if count > self.comparators_per_entry:
            raise RuntimeError(
                f"instruction needs {count} comparators but entries "
                f"have {self.comparators_per_entry} (dispatch policy bug)"
            )
        instr.in_iq = True
        instr.dispatch_cycle = cycle
        instr.num_waiting = count
        if count:
            waiting = self.waiting
            if wait1:
                waiters = waiting.get(s1)
                if waiters is None:
                    waiting[s1] = [instr]  # repro: noqa[RPR008] — waiter-bucket birth
                else:
                    waiters.append(instr)
            if wait2:
                waiters = waiting.get(s2)
                if waiters is None:
                    waiting[s2] = [instr]  # repro: noqa[RPR008] — waiter-bucket birth
                else:
                    waiters.append(instr)
        else:
            heappush(self.ready_heap, (instr.seq, instr))
        self.occupancy += 1

    def insert_slice(self, buf, count: int, cycle: int) -> None:  # repro: hot
        """Insert ``buf[:count]`` in one call (bulk form of :meth:`insert`).

        The caller's dispatch policy has already admission-checked the
        slice; readiness is still re-derived here because it decides
        which wakeup lists each entry joins.
        """
        if self.occupancy + count > self.capacity:
            raise RuntimeError("issue queue overflow (dispatch policy bug)")
        bits = self._ready_bits
        waiting = self.waiting
        heap = self.ready_heap
        budget = self.comparators_per_entry
        for i in range(count):
            instr = buf[i]
            s1, s2 = instr.src1_p, instr.src2_p
            wait1 = s1 >= 0 and not bits[s1]
            wait2 = s2 >= 0 and s2 != s1 and not bits[s2]
            pending = wait1 + wait2
            if pending > budget:
                raise RuntimeError(
                    f"instruction needs {pending} comparators but entries "
                    f"have {budget} (dispatch policy bug)"
                )
            instr.in_iq = True
            instr.dispatch_cycle = cycle
            instr.num_waiting = pending
            if pending:
                if wait1:
                    waiters = waiting.get(s1)
                    if waiters is None:
                        waiting[s1] = [instr]  # repro: noqa[RPR008] — bucket birth
                    else:
                        waiters.append(instr)
                if wait2:
                    waiters = waiting.get(s2)
                    if waiters is None:
                        waiting[s2] = [instr]  # repro: noqa[RPR008] — bucket birth
                    else:
                        waiters.append(instr)
            else:
                heappush(heap, (instr.seq, instr))
        self.occupancy += count

    def wakeup(self, tag: int) -> None:
        """Broadcast the completion of physical register ``tag``."""
        waiters = self.waiting.pop(tag, None)
        if not waiters:
            return
        heap = self.ready_heap
        for instr in waiters:
            instr.num_waiting -= 1
            if instr.num_waiting == 0 and instr.in_iq:
                heappush(heap, (instr.seq, instr))

    def remove_on_issue(self, instr: DynInstr) -> None:
        """Free the entry of an instruction selected for issue."""
        instr.in_iq = False
        self.occupancy -= 1

    def tick(self) -> None:
        """Accumulate per-cycle occupancy statistics."""
        self.occupancy_integral += self.occupancy

    def waiting_census(self) -> dict[int, int]:
        """``id(instr) -> live wakeup registrations`` over all tags.

        Used by the pipeline sanitizer to cross-check each entry's
        ``num_waiting`` against the index actually consulted by
        :meth:`wakeup`; a mismatch means a wakeup can be missed.
        """
        census: dict[int, int] = {}
        for waiters in self.waiting.values():
            for instr in waiters:
                key = id(instr)
                census[key] = census.get(key, 0) + 1
        return census

    # ------------------------------------------------------------------
    def drain_ready(self) -> list[DynInstr]:
        """Pop every currently-ready entry, oldest first (tests only)."""
        out = []
        while self.ready_heap:
            _, instr = heappop(self.ready_heap)
            if instr.in_iq:
                out.append(instr)
        for instr in out:
            heappush(self.ready_heap, (instr.seq, instr))
        return out

    def reset(self) -> None:
        """Empty the queue (watchdog pipeline flush)."""
        self.ready_heap.clear()
        self.waiting.clear()
        self.occupancy = 0

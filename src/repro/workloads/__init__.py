"""SPEC CPU2000 benchmark list and the paper's multithreaded mixes."""

from repro.workloads.mixes import (
    FOUR_THREAD_MIXES,
    THREE_THREAD_MIXES,
    TWO_THREAD_MIXES,
    Mix,
    mixes_for_threads,
)
from repro.workloads.spec2000 import (
    CFP2000,
    CINT2000,
    SPEC2000,
    ilp_class_of,
)

__all__ = [
    "SPEC2000",
    "CINT2000",
    "CFP2000",
    "ilp_class_of",
    "Mix",
    "TWO_THREAD_MIXES",
    "THREE_THREAD_MIXES",
    "FOUR_THREAD_MIXES",
    "mixes_for_threads",
]

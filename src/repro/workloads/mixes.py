"""The paper's multithreaded workloads (Tables 2, 3 and 4).

Benchmark compositions are taken verbatim from the paper. The
classification column of those tables is reproduced *derived* from the
profile ILP classes (the scanned table labels are partially illegible in
the source text; the benchmark lists themselves are unambiguous and are
what the experiments actually consume).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.profiles import PROFILES


@dataclass(frozen=True, slots=True)
class Mix:
    """One multithreaded workload."""

    name: str
    benchmarks: tuple[str, ...]

    def __post_init__(self) -> None:
        unknown = [b for b in self.benchmarks if b not in PROFILES]
        if unknown:
            raise ValueError(f"{self.name}: unknown benchmarks {unknown}")

    @property
    def num_threads(self) -> int:
        """Hardware contexts the mix occupies."""
        return len(self.benchmarks)

    @property
    def classification(self) -> str:
        """Composition label, e.g. ``"2 LOW + 2 HIGH"``."""
        counts: dict[str, int] = {}
        for b in self.benchmarks:
            cls = PROFILES[b].ilp_class
            counts[cls] = counts.get(cls, 0) + 1
        parts = [
            f"{counts[c]} {c.upper()}"
            for c in ("low", "med", "high")
            if c in counts
        ]
        return " + ".join(parts)


def _mixes(prefix: str, rows: list[tuple[str, ...]]) -> tuple[Mix, ...]:
    return tuple(
        Mix(name=f"{prefix}-mix{i + 1}", benchmarks=row)
        for i, row in enumerate(rows)
    )


#: Table 3: the 12 two-threaded workloads.
TWO_THREAD_MIXES: tuple[Mix, ...] = _mixes("2t", [
    ("equake", "lucas"),
    ("twolf", "vpr"),
    ("gcc", "bzip2"),
    ("mgrid", "galgel"),
    ("facerec", "wupwise"),
    ("crafty", "gzip"),
    ("parser", "vortex"),
    ("swim", "gap"),
    ("twolf", "bzip2"),
    ("equake", "gcc"),
    ("applu", "mesa"),
    ("ammp", "gzip"),
])

#: Table 4: the 12 three-threaded workloads.
THREE_THREAD_MIXES: tuple[Mix, ...] = _mixes("3t", [
    ("mgrid", "equake", "art"),
    ("twolf", "vpr", "swim"),
    ("applu", "ammp", "mgrid"),
    ("gcc", "bzip2", "eon"),
    ("facerec", "crafty", "perlbmk"),
    ("wupwise", "gzip", "vortex"),
    ("parser", "equake", "mesa"),
    ("perlbmk", "parser", "crafty"),
    ("art", "lucas", "galgel"),
    ("parser", "bzip2", "gcc"),
    ("gzip", "wupwise", "fma3d"),
    ("vortex", "eon", "mgrid"),
])

#: Table 2: the 12 four-threaded workloads.
FOUR_THREAD_MIXES: tuple[Mix, ...] = _mixes("4t", [
    ("mgrid", "equake", "art", "lucas"),
    ("twolf", "vpr", "swim", "parser"),
    ("applu", "ammp", "mgrid", "galgel"),
    ("gcc", "bzip2", "eon", "apsi"),
    ("facerec", "crafty", "perlbmk", "gap"),
    ("wupwise", "gzip", "vortex", "mesa"),
    ("parser", "equake", "mesa", "vortex"),
    ("parser", "swim", "crafty", "perlbmk"),
    ("art", "lucas", "galgel", "gcc"),
    ("parser", "swim", "gcc", "bzip2"),
    ("gzip", "wupwise", "fma3d", "apsi"),
    ("vortex", "mesa", "mgrid", "eon"),
])


def mixes_for_threads(num_threads: int) -> tuple[Mix, ...]:
    """The paper's mix table for a given thread count (2, 3 or 4)."""
    table = {
        2: TWO_THREAD_MIXES,
        3: THREE_THREAD_MIXES,
        4: FOUR_THREAD_MIXES,
    }.get(num_threads)
    if table is None:
        raise ValueError(
            f"the paper defines mixes for 2, 3 and 4 threads; got "
            f"{num_threads}"
        )
    return table

"""SPEC CPU2000 benchmark roster and ILP classification.

The class labels are those of the synthetic profiles
(:mod:`repro.trace.profiles`); the paper derives the same three-way
low/medium/high split from single-thread simulations (its §2), which
:mod:`repro.trace.classify` reproduces against these targets.
"""

from __future__ import annotations

from repro.trace.profiles import ALL_BENCHMARKS, PROFILES

#: The 12 SPEC CINT2000 programs.
CINT2000: tuple[str, ...] = (
    "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
    "mcf", "parser", "perlbmk", "twolf", "vortex", "vpr",
)

#: The 14 SPEC CFP2000 programs.
CFP2000: tuple[str, ...] = (
    "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d",
    "galgel", "lucas", "mesa", "mgrid", "sixtrack", "swim", "wupwise",
)

#: Full suite (26 programs), alphabetical.
SPEC2000: tuple[str, ...] = tuple(sorted(CINT2000 + CFP2000))

assert SPEC2000 == ALL_BENCHMARKS, "profile registry out of sync with roster"


def ilp_class_of(name: str) -> str:
    """Target ILP class (``low``/``med``/``high``) of a benchmark."""
    return PROFILES[name].ilp_class

"""``python -m repro.exec`` — manage the result cache.

Usage::

    python -m repro.exec cache stats           # entry count + footprint
    python -m repro.exec cache clear           # drop every entry
    python -m repro.exec cache stats --dir X   # non-default root
"""

from __future__ import annotations

import argparse
import sys

from repro.exec.cache import ResultCache, default_cache_dir


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="grid-execution result cache maintenance "
                    "(see docs/exec.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--dir", type=str, default=None,
                   help=f"cache root (default: {default_cache_dir()})")
    args = parser.parse_args(argv)

    cache = ResultCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"root:    {stats.root}")
        print(f"entries: {stats.entries}")
        print(f"bytes:   {stats.total_bytes}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

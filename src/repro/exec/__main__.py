"""``python -m repro.exec`` — cache maintenance, resume, chaos smoke.

Usage::

    python -m repro.exec cache stats            # entries + corrupt count
    python -m repro.exec cache verify           # integrity-sweep + quarantine
    python -m repro.exec cache clear            # drop every entry
    python -m repro.exec cache stats --dir X    # non-default root

    python -m repro.exec resume <run-id>        # finish an interrupted run
    python -m repro.exec resume <run-id> --journal-dir X --jobs 4

    python -m repro.exec chaos-smoke            # chaos run == fault-free run
    REPRO_CHAOS="kill=0.3,corrupt=0.5,seed=7" python -m repro.exec chaos-smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.chaos import ChaosConfig
from repro.exec.journal import RunJournal, default_journal_dir
from repro.exec.pool import ExecutionError, ExecutorConfig, execute_jobs


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"root:    {stats.root}")
        print(f"entries: {stats.entries}")
        print(f"bytes:   {stats.total_bytes}")
        print(f"corrupt: {stats.corrupt}")
        for kind, entries, size in stats.by_kind:
            print(f"kind {kind}: {entries} entr"
                  f"{'y' if entries == 1 else 'ies'}, {size} bytes")
        print(f"hits:    {stats.hits} (over {stats.runs} recorded run"
              f"{'' if stats.runs == 1 else 's'})")
        print(f"misses:  {stats.misses}")
        return 0
    if args.action == "verify":
        report = cache.verify()
        print(f"checked:     {report.checked}")
        print(f"ok:          {report.ok}")
        print(f"stale:       {report.stale}")
        print(f"quarantined: {report.quarantined}")
        return 1 if report.quarantined else 0
    removed = cache.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    journal_dir = (args.journal_dir if args.journal_dir is not None
                   else default_journal_dir())
    path = journal_dir / f"{args.run_id}.jsonl"
    if not path.exists():
        print(f"error: no journal {path}", file=sys.stderr)
        return 2
    # Load the grid from the journal's queued fingerprints, then let the
    # executor's resume pass replay completed results and run the rest.
    loaded = RunJournal(journal_dir, args.run_id, resume=True)
    jobs = loaded.queued_jobs()
    loaded.close()
    if not jobs:
        print(f"error: journal {path} records no jobs", file=sys.stderr)
        return 2
    executor = dataclasses.replace(
        ExecutorConfig.from_env(),
        journal_dir=journal_dir, run_id=args.run_id, resume=True,
    )
    if args.jobs is not None:
        executor = dataclasses.replace(executor, jobs=max(1, args.jobs))
    try:
        _, report = execute_jobs(jobs, executor)
    except ExecutionError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(
        f"run {args.run_id}: {report.total} job(s) — "
        f"{report.resumed} resumed, {report.cached} cached, "
        f"{report.simulated} simulated, {report.retried} retried"
    )
    return 0


def _cmd_chaos_smoke(args: argparse.Namespace) -> int:
    """Golden-match smoke: a chaotic sweep must equal a fault-free one.

    The fault-free golden grid runs serially with no cache; the chaotic
    run gets worker kills/hangs, delivery faults and cache corruption
    (from ``REPRO_CHAOS`` when set, else a built-in default policy) on
    a worker farm with a tight watchdog. Any numerical difference is a
    robustness bug and fails CI.
    """
    from repro.config.presets import small_machine
    from repro.exec.jobs import jobs_for_grid
    from repro.workloads.mixes import TWO_THREAD_MIXES

    keyed = jobs_for_grid(
        TWO_THREAD_MIXES[:2], small_machine(),
        ("traditional", "2op_ooo"), (8, 16), args.insns, 0,
    )
    jobs = [job for _, job in keyed]

    golden, _ = execute_jobs(jobs, ExecutorConfig(jobs=1))

    chaos = ChaosConfig.from_env()
    if chaos is None:
        chaos = ChaosConfig(seed=7, kill_p=0.3, hang_p=0.05,
                            corrupt_p=0.5, delay_p=0.2, dup_p=0.2)
    with tempfile.TemporaryDirectory() as cache_dir, \
            tempfile.TemporaryDirectory() as journal_dir:
        executor = ExecutorConfig(
            jobs=2, cache_dir=cache_dir, journal_dir=journal_dir,
            retries=8, timeout=120.0, watchdog=1.0, chaos=chaos,
        )
        try:
            chaotic, report = execute_jobs(jobs, executor)
            # Warm rerun: reads back the (possibly corrupted) cache, so
            # quarantine + recompute is exercised too.
            warm, warm_report = execute_jobs(jobs, executor)
        except ExecutionError as exc:
            print(f"chaos smoke FAILED to complete:\n{exc}",
                  file=sys.stderr)
            return 1
        corrupt = ResultCache(cache_dir).stats().corrupt
    if (
        [p.result for p in chaotic] != [p.result for p in golden]
        or [p.result for p in warm] != [p.result for p in golden]
    ):
        print("chaos smoke FAILED: results differ from fault-free run",
              file=sys.stderr)
        return 1
    print(
        f"ok: {report.total}-point grid under chaos "
        f"(seed={chaos.seed}, kill={chaos.kill_p:g}, "
        f"hang={chaos.hang_p:g}, corrupt={chaos.corrupt_p:g}) — "
        f"{report.retried} faulty attempt(s) retried; warm rerun served "
        f"{warm_report.cached} from cache, quarantined {corrupt} corrupt "
        "entr(ies), recomputed the rest; results byte-identical"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="grid-execution maintenance: result cache, run "
                    "journal resume, chaos smoke "
                    "(see docs/exec.md, docs/robustness.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cache", help="inspect, verify or clear the "
                                     "result cache")
    p.add_argument("action", choices=["stats", "verify", "clear"])
    p.add_argument("--dir", type=str, default=None,
                   help=f"cache root (default: {default_cache_dir()})")

    p = sub.add_parser("resume", help="re-execute the incomplete jobs "
                                      "of an interrupted run")
    p.add_argument("run_id", help="journal id printed by the original "
                                  "run (results/journal/<id>.jsonl)")
    p.add_argument("--journal-dir", type=_path, default=None,
                   help=f"journal root (default: {default_journal_dir()})")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: $REPRO_JOBS or 1)")

    p = sub.add_parser(
        "chaos-smoke",
        help="assert a chaotic sweep matches the fault-free golden run",
    )
    p.add_argument("--insns", type=int, default=400,
                   help="instructions per thread in the smoke grid")

    args = parser.parse_args(argv)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "resume":
        return _cmd_resume(args)
    return _cmd_chaos_smoke(args)


def _path(value: str):
    from pathlib import Path

    return Path(value)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Parallel grid execution with caching, timeouts and bounded retry.

:func:`execute_jobs` is the single entry point every sweep, figure
driver and benchmark routes through. It

* consults the :class:`~repro.exec.cache.ResultCache` first (when one is
  configured), so a warm rerun performs zero simulation;
* runs the remaining jobs either in-process (``jobs=1``, a single
  pending job, or a platform without ``fork``) or on a farm of forked
  worker processes, scheduling **longest job first** so one straggler
  does not serialise the tail of the grid;
* enforces a per-job wall-clock timeout and retries crashed or
  timed-out workers a bounded number of times;
* reports progress (completed / cached / failed counts) through a
  callback after every job.

Determinism: workers only ever *compute* — each job is an independent
pure function of its content (see :mod:`repro.exec.jobs`), results are
reassembled in submission order, and nothing about scheduling order,
worker count, or cache state can leak into a result value. A grid
executed with ``jobs=8`` is byte-identical to ``jobs=1``; the test suite
enforces this.

The wall clock is read for *harness* concerns only (timeouts, progress)
— never inside simulation code — hence the targeted RPR001 suppression
on the import below.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from time import monotonic as _monotonic  # repro: noqa[RPR001]

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.jobs import JobResult, SimJob

#: Poll interval for the farm's event loop (seconds). Workers signal
#: completion through pipes, so this only bounds timeout detection lag.
_POLL_SECONDS = 0.05


@dataclass(frozen=True, slots=True)
class ExecutorConfig:
    """How a grid should be executed.

    ``jobs=1`` (the default) runs in-process with no behavioural change
    from the historical serial path; ``jobs>1`` forks worker processes.
    """

    jobs: int = 1
    #: Directory of the content-addressed result cache; None disables
    #: caching entirely.
    cache_dir: str | Path | None = None
    #: Per-job wall-clock limit in seconds (process mode only; a job
    #: cannot be interrupted in-process). None means unlimited.
    timeout: float | None = None
    #: How many *additional* attempts a crashed or timed-out job gets
    #: before it is reported as failed.
    retries: int = 1

    @classmethod
    def from_env(cls, default_cache: bool = False) -> "ExecutorConfig":
        """Build from ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``.

        ``REPRO_CACHE=1`` (or ``default_cache=True``) enables the cache
        at its default root; ``REPRO_CACHE=0`` disables it either way.
        """
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
        cache_flag = os.environ.get("REPRO_CACHE")
        if cache_flag is None:
            cached = default_cache
        else:
            cached = cache_flag != "0"
        return cls(
            jobs=max(1, jobs),
            cache_dir=default_cache_dir() if cached else None,
        )

    def with_cache_dir(self, cache_dir: str | Path | None) -> "ExecutorConfig":
        """Copy with a different cache root (benchmarks, tests)."""
        return replace(self, cache_dir=cache_dir)


@dataclass(slots=True)
class ExecReport:
    """Counts accumulated over one :func:`execute_jobs` call."""

    total: int = 0
    #: Jobs satisfied from the result cache without simulating.
    cached: int = 0
    #: Jobs actually simulated (in-process or in a worker).
    simulated: int = 0
    #: Jobs that exhausted their retry budget.
    failed: int = 0
    #: Crashed/timed-out attempts that were retried.
    retried: int = 0

    @property
    def completed(self) -> int:
        """Jobs resolved so far (cached + simulated + failed)."""
        return self.cached + self.simulated + self.failed


@dataclass(frozen=True, slots=True)
class ExecProgress:
    """One progress event: the job that just resolved, plus counts."""

    job: SimJob
    payload: JobResult | None
    #: "cached" | "simulated" | "failed"
    outcome: str
    report: ExecReport


@dataclass(frozen=True, slots=True)
class JobFailure:
    """Terminal failure of one job after retries."""

    job: SimJob
    message: str


class ExecutionError(RuntimeError):
    """Raised when any job of a grid fails terminally."""

    def __init__(self, failures: Sequence[JobFailure],
                 report: ExecReport) -> None:
        self.failures = list(failures)
        self.report = report
        lines = [f"{len(self.failures)} job(s) failed:"]
        for f in self.failures:
            lines.append(
                f"  {'+'.join(f.job.benchmarks)} @ "
                f"{f.job.config.scheduler}/iq{f.job.config.iq_size}: "
                f"{f.message}"
            )
        super().__init__("\n".join(lines))


ProgressFn = Callable[[ExecProgress], None]


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def execute_jobs(jobs: Sequence[SimJob],
                 executor: ExecutorConfig | None = None,
                 progress: ProgressFn | None = None,
                 ) -> tuple[list[JobResult], ExecReport]:
    """Execute a batch of grid points; returns results in input order.

    Raises :class:`ExecutionError` if any job fails terminally (crash or
    timeout beyond the retry budget, or an exception raised by the
    simulation itself).
    """
    cfg = executor if executor is not None else ExecutorConfig()
    cache = ResultCache(cfg.cache_dir) if cfg.cache_dir is not None else None
    report = ExecReport(total=len(jobs))
    results: list[JobResult | None] = [None] * len(jobs)
    failures: list[JobFailure] = []

    def _emit(job: SimJob, payload: JobResult | None, outcome: str) -> None:
        if progress is not None:
            progress(ExecProgress(
                job=job, payload=payload, outcome=outcome, report=report
            ))

    # -- 1. warm-cache pass --------------------------------------------
    pending: list[int] = []
    for idx, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            results[idx] = hit
            report.cached += 1
            _emit(job, hit, "cached")
        else:
            pending.append(idx)

    # -- 2. simulate what's left ---------------------------------------
    use_processes = (
        cfg.jobs > 1 and len(pending) > 1 and fork_available()
    )
    if use_processes:
        _run_in_processes(
            jobs, pending, cfg, cache, results, report, failures, _emit
        )
    else:
        _run_in_process(
            jobs, pending, cfg, cache, results, report, failures, _emit
        )

    if failures:
        raise ExecutionError(failures, report)
    return [r for r in results if r is not None], report


# ----------------------------------------------------------------------
# in-process execution (jobs=1, single pending job, or fork-less host)
# ----------------------------------------------------------------------
def _run_in_process(jobs, pending, cfg, cache, results, report, failures,
                    emit) -> None:
    # Submission order is preserved so callers see progress stream in
    # grid order; timeouts cannot be enforced without a worker process.
    for idx in pending:
        job = jobs[idx]
        payload = None
        for attempt in range(cfg.retries + 1):
            try:
                payload = job.run()
                break
            except Exception as exc:  # noqa: BLE001 - reported to caller
                if attempt < cfg.retries:
                    report.retried += 1
                    continue
                failures.append(JobFailure(
                    job=job, message=f"{type(exc).__name__}: {exc}"
                ))
        if payload is None:
            report.failed += 1
            emit(job, None, "failed")
            continue
        if cache is not None:
            cache.put(job, payload)
        results[idx] = payload
        report.simulated += 1
        emit(job, payload, "simulated")


# ----------------------------------------------------------------------
# forked worker farm
# ----------------------------------------------------------------------
def _worker_main(job: SimJob, conn) -> None:
    """Worker entry point: run one job, ship the outcome, exit."""
    try:
        payload = job.run()
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - serialised to parent
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass(slots=True)
class _Running:
    idx: int
    attempt: int
    proc: multiprocessing.process.BaseProcess
    conn: object
    started: float
    done: bool = field(default=False)


def _run_in_processes(jobs, pending, cfg, cache, results, report, failures,
                      emit) -> None:
    ctx = multiprocessing.get_context("fork")
    # Longest job first: dispatch the expensive grid points before the
    # cheap ones so the final workers drain short tails, minimising
    # makespan (classic LPT list scheduling).
    queue = sorted(
        pending, key=lambda i: (-jobs[i].cost_estimate(), i)
    )
    queue.reverse()  # pop() takes from the end
    width = max(1, min(cfg.jobs, len(queue)))
    running: list[_Running] = []

    def _spawn(idx: int, attempt: int) -> None:
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main, args=(jobs[idx], send), daemon=True
        )
        proc.start()
        send.close()  # parent keeps only the read end
        running.append(_Running(
            idx=idx, attempt=attempt, proc=proc, conn=recv,
            started=_monotonic(),
        ))

    def _finish(slot: _Running, payload: JobResult | None,
                error: str | None) -> None:
        slot.conn.close()
        slot.proc.join()
        running.remove(slot)
        job = jobs[slot.idx]
        if payload is not None:
            if cache is not None:
                cache.put(job, payload)
            results[slot.idx] = payload
            report.simulated += 1
            emit(job, payload, "simulated")
            return
        if slot.attempt < cfg.retries:
            report.retried += 1
            _spawn(slot.idx, slot.attempt + 1)
            return
        failures.append(JobFailure(job=job, message=error or "worker died"))
        report.failed += 1
        emit(job, None, "failed")

    while queue or running:
        while queue and len(running) < width:
            _spawn(queue.pop(), attempt=0)

        ready = _conn_wait(
            [slot.conn for slot in running], timeout=_POLL_SECONDS
        )
        for slot in list(running):
            if slot.conn in ready:
                try:
                    kind, value = slot.conn.recv()
                except (EOFError, OSError):
                    _finish(slot, None, "worker crashed before reporting")
                    continue
                if kind == "ok":
                    _finish(slot, value, None)
                else:
                    _finish(slot, None, str(value))
            elif (
                cfg.timeout is not None
                and _monotonic() - slot.started > cfg.timeout
            ):
                slot.proc.terminate()
                _finish(
                    slot, None,
                    f"timed out after {cfg.timeout:g}s",
                )

"""Parallel grid execution with caching, timeouts, retry and chaos.

:func:`execute_jobs` is the single entry point every sweep, figure
driver and benchmark routes through. It

* drives a :class:`~repro.exec.ledger.JobLedger` — the transport-
  agnostic job-lifecycle state machine shared with the distributed
  sweep service (:mod:`repro.serve`) — which replays any previously-
  journalled results first (``resume``), then consults the
  :class:`~repro.exec.cache.ResultCache` (when one is configured), so
  an interrupted or warm rerun performs zero re-simulation of
  completed grid points;
* runs the remaining jobs either in-process (``jobs=1``, a single
  pending job, or a platform without ``fork``) or on a farm of forked
  worker processes, scheduling **longest job first** so one straggler
  does not serialise the tail of the grid;
* enforces a per-job wall-clock timeout, detects *hung* (no longer
  heartbeating) workers within one poll interval via a per-worker
  heartbeat pipe, escalates ``terminate -> kill``, and retries crashed,
  hung or timed-out workers a bounded number of times;
* appends one fsync'd record per job transition to the run journal
  (when configured), terminates children and flushes the journal on
  ``KeyboardInterrupt`` before re-raising, and reaps any orphaned
  worker at interpreter exit;
* optionally injects deterministic faults (worker kills/hangs, delivery
  delay/duplication, cache corruption) from a seeded
  :class:`~repro.exec.chaos.ChaosConfig` — the test-enforced invariant
  is that a chaotic run's results are byte-identical to a fault-free
  run's;
* ships the whole batch to a remote sweep server instead when
  ``ExecutorConfig.server`` (or ``REPRO_SERVER``) names one — same
  results, same report, computed by the worker fleet attached to that
  server (see ``docs/distributed.md``).

Determinism: workers only ever *compute* — each job is an independent
pure function of its content (see :mod:`repro.exec.jobs`), results are
reassembled in submission order, and nothing about scheduling order,
worker count, cache state, or injected faults can leak into a result
value. A grid executed with ``jobs=8`` is byte-identical to ``jobs=1``;
the test suite enforces this.

The wall clock is read for *harness* concerns only (timeouts,
heartbeats, progress) — never inside simulation code — hence the
targeted RPR001 suppression on the import below.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from time import (  # repro: noqa[RPR001]
    monotonic as _monotonic,
    sleep as _sleep,
)

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.chaos import CHAOS_EXIT_CODE, ChaosConfig, ChaosError
from repro.exec.jobs import JobResult, SimJob
from repro.exec.journal import RunJournal, derive_run_id, journal_dir_from_env
from repro.exec.ledger import (
    ExecProgress,
    ExecReport,
    JobFailure,
    JobLedger,
    ProgressFn,
)

__all__ = [
    "ExecProgress",
    "ExecReport",
    "ExecutionError",
    "ExecutorConfig",
    "JobFailure",
    "ProgressFn",
    "execute_jobs",
    "fork_available",
    "live_worker_count",
]

#: Poll interval for the farm's event loop (seconds). Workers signal
#: completion through pipes, so this only bounds timeout/watchdog
#: detection lag.
_POLL_SECONDS = 0.05

#: Grace between SIGTERM and SIGKILL when escalating on a stuck worker.
_TERM_GRACE_SECONDS = 1.0

#: Default heartbeat period for workers (the parent tolerates a
#: configurable multiple of this before declaring a worker hung).
_HEARTBEAT_SECONDS = 0.1

#: Default hung-worker grace (seconds of heartbeat silence). Generous:
#: the heartbeat thread ticks every 0.1 s regardless of how slow the
#: simulation is, so only a genuinely stuck process goes silent.
_DEFAULT_WATCHDOG_SECONDS = 30.0

#: Workers spawned by this process that have not yet been joined;
#: :func:`_reap_orphans` sweeps it at interpreter exit so no simulation
#: child can outlive the harness.
_LIVE_WORKERS: set = set()

#: Guards _LIVE_WORKERS: the pool mutates it per spawn/reap while the
#: atexit sweep (a distinct execution context — it can interleave with
#: a pool unwinding after an interrupt) snapshots and drains it.
_LIVE_LOCK = threading.Lock()


@dataclass(frozen=True, slots=True)
class ExecutorConfig:
    """How a grid should be executed.

    ``jobs=1`` (the default) runs in-process with no behavioural change
    from the historical serial path; ``jobs>1`` forks worker processes;
    ``server=...`` ships the batch to a :mod:`repro.serve` sweep server
    instead of executing locally.
    """

    jobs: int = 1
    #: Directory of the content-addressed result cache; None disables
    #: caching entirely.
    cache_dir: str | Path | None = None
    #: Per-job wall-clock limit in seconds (process mode only; a job
    #: cannot be interrupted in-process). None means unlimited.
    timeout: float | None = None
    #: How many *additional* attempts a crashed, hung or timed-out job
    #: gets before it is reported as failed.
    retries: int = 1
    #: Directory of the crash-safe run journal; None disables
    #: journalling (and hence resume).
    journal_dir: str | Path | None = None
    #: Journal file name; None derives a content-addressed id from the
    #: batch (same grid -> same journal).
    run_id: str | None = None
    #: Replay completed results from an existing journal instead of
    #: rotating it aside and starting fresh.
    resume: bool = False
    #: Deterministic fault injection; None runs faithfully.
    chaos: ChaosConfig | None = None
    #: Declare a worker hung when its heartbeat pipe has been silent
    #: this many seconds (process mode only); None disables the
    #: watchdog. Distinct from ``timeout``: a slow-but-computing worker
    #: keeps heartbeating and only ``timeout`` can reap it, while a
    #: hung worker stops beating and is reaped within roughly this
    #: grace period regardless of how generous ``timeout`` is.
    watchdog: float | None = _DEFAULT_WATCHDOG_SECONDS
    #: Return instead of raise when jobs fail terminally: results come
    #: back *positionally* (one slot per input job, ``None`` where the
    #: job failed) and the failures are on ``report.job_failures``. For
    #: workloads where individual failures are data, not errors —
    #: mutation analysis treats a crashing mutant as a kill.
    tolerate_failures: bool = False
    #: Base URL of a ``repro.serve`` sweep server (``http://host:port``).
    #: When set, the batch is submitted there and executed by the
    #: server's worker fleet; ``jobs``/``timeout``/``watchdog`` become
    #: server-side concerns. See docs/distributed.md.
    server: str | None = None
    #: Submitter id attached to remote submissions (fair-share
    #: attribution on the server); None submits anonymously.
    submitter: str | None = None
    #: Degraded mode: when the remote client's circuit breaker gives
    #: up on ``server`` (repeated connection refusals / 429s), fall
    #: back to executing locally against the same ``cache_dir`` and
    #: ``journal_dir`` instead of raising. Byte-identical results by
    #: construction — content-addressed jobs do not care where they
    #: run (test-enforced).
    allow_local_fallback: bool = False

    @classmethod
    def from_env(cls, default_cache: bool = False) -> "ExecutorConfig":
        """Build from the ``REPRO_*`` execution knobs.

        ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` as
        before (``REPRO_CACHE=1`` — or ``default_cache=True`` — enables
        the cache at its default root, ``REPRO_CACHE=0`` disables it
        either way); ``REPRO_JOURNAL`` (``1`` or a directory) enables
        the run journal; ``REPRO_RESUME=1`` resumes from it;
        ``REPRO_CHAOS`` configures fault injection (see
        :mod:`repro.exec.chaos`); ``REPRO_WATCHDOG`` overrides the hung
        -worker grace in seconds (``0`` disables); ``REPRO_SERVER``
        routes execution to a remote sweep server;
        ``REPRO_SUBMITTER`` names this client for the server's
        fair-share accounting; ``REPRO_FALLBACK=1`` enables the
        degraded-mode local fallback when the server is unreachable.
        """
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
        cache_flag = os.environ.get("REPRO_CACHE")
        if cache_flag is None:
            cached = default_cache
        else:
            cached = cache_flag != "0"
        watchdog_env = os.environ.get("REPRO_WATCHDOG")
        watchdog: float | None = _DEFAULT_WATCHDOG_SECONDS
        if watchdog_env is not None:
            watchdog = float(watchdog_env) or None
        return cls(
            jobs=max(1, jobs),
            cache_dir=default_cache_dir() if cached else None,
            journal_dir=journal_dir_from_env(),
            resume=os.environ.get("REPRO_RESUME", "0") not in ("", "0"),
            chaos=ChaosConfig.from_env(),
            watchdog=watchdog,
            server=os.environ.get("REPRO_SERVER", "").strip() or None,
            submitter=(os.environ.get("REPRO_SUBMITTER", "").strip()
                       or None),
            allow_local_fallback=(
                os.environ.get("REPRO_FALLBACK", "0") not in ("", "0")
            ),
        )

    def with_cache_dir(self, cache_dir: str | Path | None) -> "ExecutorConfig":
        """Copy with a different cache root (benchmarks, tests)."""
        return replace(self, cache_dir=cache_dir)


class ExecutionError(RuntimeError):
    """Raised when any job of a grid fails terminally."""

    def __init__(self, failures: Sequence[JobFailure],
                 report: ExecReport) -> None:
        self.failures = list(failures)
        self.report = report
        lines = [f"{len(self.failures)} job(s) failed:"]
        for f in self.failures:
            lines.append(f"  {f.job.describe()}: {f.message}")
        super().__init__("\n".join(lines))


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def live_worker_count() -> int:
    """Workers currently alive (diagnostics/tests; 0 after any clean
    or interrupted :func:`execute_jobs` return)."""
    with _LIVE_LOCK:
        procs = list(_LIVE_WORKERS)
    return sum(1 for proc in procs if proc.is_alive())


def execute_jobs(jobs: Sequence[SimJob],
                 executor: ExecutorConfig | None = None,
                 progress: ProgressFn | None = None,
                 ) -> tuple[list[JobResult], ExecReport]:
    """Execute a batch of grid points; returns results in input order.

    Raises :class:`ExecutionError` if any job fails terminally (crash,
    hang or timeout beyond the retry budget, or an exception raised by
    the simulation itself). On ``KeyboardInterrupt`` all workers are
    terminated, in-flight jobs are journalled as ``interrupted``, and
    the interrupt is re-raised — a later ``resume`` run picks up
    exactly the incomplete remainder.
    """
    cfg = executor if executor is not None else ExecutorConfig()
    if cfg.server is not None:
        # Remote execution: the sweep server's ledger does the
        # journalling/caching server-side; imported lazily so local
        # execution never pays for the client.
        from repro.serve.client import CircuitOpenError, SweepClient

        client = SweepClient(
            cfg.server,
            submitter=cfg.submitter or "anonymous",
            chaos=cfg.chaos,
        )
        try:
            results, report = client.execute(jobs, progress)
        except CircuitOpenError:
            if not cfg.allow_local_fallback:
                raise
            # Degraded mode: the breaker gave up on the server. Run
            # the batch locally against the same cache and journal —
            # content-addressed jobs yield byte-identical results
            # regardless of where they execute (test-enforced).
            return execute_jobs(jobs, replace(cfg, server=None),
                                progress)
        if report.job_failures and not cfg.tolerate_failures:
            raise ExecutionError(report.job_failures, report)
        if cfg.tolerate_failures:
            return list(results), report
        return [r for r in results if r is not None], report

    cache = (ResultCache(cfg.cache_dir, chaos=cfg.chaos)
             if cfg.cache_dir is not None else None)
    hashes = [job.content_hash() for job in jobs]
    journal: RunJournal | None = None
    if cfg.journal_dir is not None:
        run_id = cfg.run_id or derive_run_id(hashes)
        journal = RunJournal(cfg.journal_dir, run_id, resume=cfg.resume)

    ledger = JobLedger(
        jobs, hashes=hashes, cache=cache, journal=journal,
        resume=cfg.resume, retries=cfg.retries, progress=progress,
    )
    try:
        pending = ledger.open()
        use_processes = (
            cfg.jobs > 1 and len(pending) > 1 and fork_available()
        )
        runner = _run_in_processes if use_processes else _run_in_process
        runner(pending, cfg, ledger)
        ledger.summarize()
    finally:
        ledger.close()

    report = ledger.report
    if report.job_failures and not cfg.tolerate_failures:
        raise ExecutionError(report.job_failures, report)
    if cfg.tolerate_failures:
        # Positional: one slot per input job, None where it failed.
        return list(ledger.results), report
    return [r for r in ledger.results if r is not None], report


# ----------------------------------------------------------------------
# in-process execution (jobs=1, single pending job, or fork-less host)
# ----------------------------------------------------------------------
def _run_in_process(pending, cfg, ledger: JobLedger) -> None:
    # Submission order is preserved so callers see progress stream in
    # grid order; timeouts cannot be enforced without a worker process.
    # Chaos kills become raised ChaosErrors here — there is no worker
    # process to sacrifice, but the retry path is exercised identically.
    jobs, hashes = ledger.jobs, ledger.hashes
    for idx in pending:
        job = jobs[idx]
        job_hash = hashes[idx]
        payload = None
        attempt = 0
        while True:
            ledger.start(idx, attempt)
            try:
                if cfg.chaos is not None and cfg.chaos.should_kill(
                    job_hash, attempt
                ):
                    raise ChaosError("chaos: injected in-process crash")
                payload = job.run()
                break
            except KeyboardInterrupt:
                ledger.interrupt(idx)
                raise
            except Exception as exc:  # noqa: BLE001 - reported to caller
                message = f"{type(exc).__name__}: {exc}"
                if ledger.retry(idx, attempt, message):
                    attempt += 1
                    continue
                ledger.fail(idx, message)
                break
        if payload is not None:
            ledger.complete(idx, payload)


# ----------------------------------------------------------------------
# forked worker farm
# ----------------------------------------------------------------------
def _heartbeat_loop(conn, interval: float, stop: threading.Event) -> None:
    """Worker-side heartbeat: tick until told to stop or the parent
    goes away."""
    try:
        while not stop.wait(interval):
            conn.send(1)
    except (BrokenPipeError, OSError):  # repro: noqa[RPR007]
        # The parent closed its end (job finished or run tearing
        # down); nothing left to signal.
        pass


def _worker_main(job: SimJob, job_hash: str, attempt: int, conn, hb_conn,
                 hb_interval: float, chaos: ChaosConfig | None) -> None:
    """Worker entry point: run one job, ship the outcome, exit.

    When chaos is configured this is also where worker-side faults are
    enacted: a hang stops the heartbeat thread (so the parent watchdog,
    not the timeout, must catch it), a kill is a hard ``os._exit``
    either before or after computing, and delivery may be delayed or
    duplicated — all decided deterministically from the chaos seed.
    """
    stop = threading.Event()
    if hb_conn is not None:
        threading.Thread(
            target=_heartbeat_loop, args=(hb_conn, hb_interval, stop),
            daemon=True,
        ).start()
    try:
        kill_point = None
        if chaos is not None:
            kill_point = chaos.kill_point(job_hash, attempt)
            if chaos.should_hang(job_hash, attempt):
                stop.set()  # a hung worker stops making progress
                _sleep(chaos.hang_seconds)
            slow = chaos.slow_delay(job_hash, attempt)
            if slow > 0.0:
                # Heartbeat-but-slow: the beat thread keeps ticking, so
                # only the per-job timeout (never the watchdog) applies.
                _sleep(slow)
            if kill_point == "early":
                os._exit(CHAOS_EXIT_CODE)
        payload = job.run()
        if chaos is not None:
            if kill_point == "late":
                os._exit(CHAOS_EXIT_CODE)
            delay = chaos.delivery_delay(job_hash, attempt)
            if delay > 0.0:
                _sleep(delay)
        conn.send(("ok", payload))
        if chaos is not None and chaos.should_duplicate(job_hash, attempt):
            conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - serialised to parent
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:  # repro: noqa[RPR007] — parent gone; exit quietly
            pass
    finally:
        stop.set()
        conn.close()
        if hb_conn is not None:
            hb_conn.close()


def _reap(proc) -> None:
    """Stop one worker for good: terminate, then kill if it lingers."""
    if proc.is_alive():
        proc.terminate()
        proc.join(_TERM_GRACE_SECONDS)
        if proc.is_alive():
            proc.kill()
            proc.join()
    else:
        proc.join()
    with _LIVE_LOCK:
        _LIVE_WORKERS.discard(proc)


def _reap_orphans() -> None:
    """Interpreter-exit sweep: no worker may outlive the harness."""
    with _LIVE_LOCK:
        procs = list(_LIVE_WORKERS)
    for proc in procs:
        _reap(proc)


atexit.register(_reap_orphans)


@dataclass(slots=True)
class _Running:
    idx: int
    attempt: int
    proc: multiprocessing.process.BaseProcess
    conn: object
    hb: object | None
    started: float
    last_beat: float
    done: bool = field(default=False)


def _run_in_processes(pending, cfg, ledger: JobLedger) -> None:
    ctx = multiprocessing.get_context("fork")
    jobs, hashes = ledger.jobs, ledger.hashes
    # Longest job first: dispatch the expensive grid points before the
    # cheap ones so the final workers drain short tails, minimising
    # makespan (classic LPT list scheduling).
    queue = sorted(
        pending, key=lambda i: (-jobs[i].cost_estimate(), i)
    )
    queue.reverse()  # pop() takes from the end
    width = max(1, min(cfg.jobs, len(queue)))
    running: list[_Running] = []
    hb_interval = (min(_HEARTBEAT_SECONDS, cfg.watchdog / 4)
                   if cfg.watchdog is not None else _HEARTBEAT_SECONDS)

    def _spawn(idx: int, attempt: int) -> None:
        recv, send = ctx.Pipe(duplex=False)
        hb_recv, hb_send = (ctx.Pipe(duplex=False)
                            if cfg.watchdog is not None else (None, None))
        proc = ctx.Process(
            target=_worker_main,
            args=(jobs[idx], hashes[idx], attempt, send, hb_send,
                  hb_interval, cfg.chaos),
            daemon=True,
        )
        proc.start()
        with _LIVE_LOCK:
            _LIVE_WORKERS.add(proc)
        send.close()  # parent keeps only the read ends
        if hb_send is not None:
            hb_send.close()
        now = _monotonic()
        running.append(_Running(
            idx=idx, attempt=attempt, proc=proc, conn=recv, hb=hb_recv,
            started=now, last_beat=now,
        ))
        ledger.start(idx, attempt)

    def _close_slot(slot: _Running, forced: bool) -> None:
        slot.conn.close()
        if slot.hb is not None:
            slot.hb.close()
        if forced:
            _reap(slot.proc)
        else:
            slot.proc.join()
            with _LIVE_LOCK:
                _LIVE_WORKERS.discard(slot.proc)
        running.remove(slot)

    def _finish(slot: _Running, payload: JobResult | None,
                error: str | None, forced: bool = False) -> None:
        _close_slot(slot, forced)
        if payload is not None:
            ledger.complete(slot.idx, payload)
            return
        if ledger.retry(slot.idx, slot.attempt, error):
            _spawn(slot.idx, slot.attempt + 1)
            return
        ledger.fail(slot.idx, error)

    try:
        while queue or running:
            while queue and len(running) < width:
                _spawn(queue.pop(), attempt=0)

            waitable = [slot.conn for slot in running]
            waitable += [slot.hb for slot in running if slot.hb is not None]
            ready = set(_conn_wait(waitable, timeout=_POLL_SECONDS))
            now = _monotonic()
            for slot in list(running):
                if slot.hb is not None and slot.hb in ready:
                    try:
                        while slot.hb.poll(0):
                            slot.hb.recv()
                            slot.last_beat = now
                    except (EOFError, OSError):
                        # Worker exited; its result pipe (EOF or data)
                        # resolves the slot below or next poll.
                        slot.hb.close()
                        slot.hb = None
                if slot.conn in ready:
                    try:
                        kind, value = slot.conn.recv()
                    except (EOFError, OSError):
                        slot.proc.join()
                        code = slot.proc.exitcode
                        _finish(
                            slot, None,
                            "worker crashed before reporting "
                            f"(exit code {code})",
                        )
                        continue
                    if kind == "ok":
                        _finish(slot, value, None)
                    else:
                        _finish(slot, None, str(value))
                elif (
                    cfg.timeout is not None
                    and now - slot.started > cfg.timeout
                ):
                    _finish(
                        slot, None,
                        f"timed out after {cfg.timeout:g}s",
                        forced=True,
                    )
                elif (
                    cfg.watchdog is not None
                    and slot.hb is not None
                    and now - slot.last_beat > cfg.watchdog
                ):
                    _finish(
                        slot, None,
                        "worker hung (no heartbeat for "
                        f"{cfg.watchdog:g}s)",
                        forced=True,
                    )
    except BaseException:
        # Ctrl-C (or any other escape): terminate and join every child,
        # journal the in-flight jobs as interrupted so a resume run
        # re-executes exactly them, then re-raise. The journal's
        # per-record fsync means completed work is already durable.
        for slot in list(running):
            slot.conn.close()
            if slot.hb is not None:
                slot.hb.close()
            _reap(slot.proc)
            ledger.interrupt(slot.idx, slot.attempt)
        running.clear()
        raise

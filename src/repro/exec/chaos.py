"""Deterministic fault injection for the grid executor.

The paper's dispatch engine guarantees forward progress under
pathological conditions (deadlock-avoidance buffer, watchdog timer);
this module gives the *harness* the same adversary. A
:class:`ChaosConfig` injects the faults we want the executor to survive
— worker crashes, hung workers, delayed/duplicated result delivery,
corrupted or truncated cache entries — and every injection decision is
a pure function of ``(chaos seed, site, job hash, attempt)`` via
:mod:`repro.util.rng`. Consequences:

* a chaotic run is **replayable**: the same seed injects the same
  faults at the same grid points, regardless of worker count or
  scheduling order, so a failure found under chaos reproduces in a
  test;
* retries make progress: a kill/hang decision is keyed by attempt, so
  a retried job is not deterministically re-killed forever (with
  kill probability *p* and *r* retries a job fails terminally with
  probability ``p**(r+1)``);
* the headline invariant is testable: with chaos enabled, a sweep must
  complete and produce results byte-identical to a fault-free run
  (``tests/test_chaos.py``, ``make chaos-smoke``).

Enable from the environment (picked up by
:meth:`repro.exec.ExecutorConfig.from_env` and the benchmarks)::

    REPRO_CHAOS="kill=0.3,hang=0.05,corrupt=0.5,seed=7" make figures-parallel

Knobs: ``kill`` / ``hang`` / ``delay`` / ``dup`` / ``corrupt``
(probabilities), ``seed`` (int), ``delay_max`` / ``hang_seconds``
(seconds). ``REPRO_CHAOS=0`` (or unset) disables injection entirely.

The distributed sweep service (:mod:`repro.serve`) adds *network*
fault sites between the server and its remote workers: any protocol
message may be dropped, duplicated or delayed, each decided purely in
``(seed, site, message key, attempt)`` like every other fault. Knobs:
``net_drop`` / ``net_dup`` / ``net_delay`` (probabilities) and
``net_delay_max`` (seconds). A dropped job assignment or result is
indistinguishable from a lost worker — the server's deadline/watchdog
machinery re-shards the job, and the headline invariant still holds:
the sweep's results are byte-identical to a fault-free single-host run
(``tests/test_serve.py``).

Two further serve-side faults exercise the *overload* machinery:
``net_refuse`` makes a client connection attempt fail with a refusal
(as if the server were down or its listen backlog full), keyed by
``(site, server, attempt)`` so client backoff retries converge; and
``slow`` makes a worker *heartbeat-but-slow* — it keeps beating (so
the hang watchdog stays quiet) yet sits on the job for
``slow_seconds`` before running it, which only the per-job deadline
can reap. Together they drive the client circuit breaker, fair-share
backpressure and degraded-mode fallback paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

from repro.util.rng import make_rng

#: Exit status a chaos-killed worker dies with (visible in failure
#: messages, distinguishable from a real simulator crash).
CHAOS_EXIT_CODE = 73


class ChaosError(RuntimeError):
    """Injected failure in serial (in-process) mode.

    In process mode a kill is a genuine ``os._exit``; without a worker
    process to sacrifice, the serial path raises this instead so the
    retry machinery is exercised the same way.
    """


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Seeded fault-injection policy for one executor run."""

    #: Root seed every injection decision derives from.
    seed: int = 0
    #: Probability a worker dies (``os._exit``) during a job attempt.
    kill_p: float = 0.0
    #: Probability a worker hangs (stops heartbeating, then sleeps
    #: ``hang_seconds``) before running its job — exercises the
    #: watchdog/timeout path, never corrupts a result.
    hang_p: float = 0.0
    #: Probability result delivery is delayed by up to ``delay_max`` s.
    delay_p: float = 0.0
    #: Probability a worker delivers its result twice.
    dup_p: float = 0.0
    #: Probability a cache entry is corrupted (truncated or bit-flipped)
    #: as it is written.
    corrupt_p: float = 0.0
    #: Upper bound of an injected delivery delay, seconds.
    delay_max: float = 0.05
    #: How long a hung worker sleeps; the watchdog (or the per-job
    #: timeout) is expected to reap it long before this elapses.
    hang_seconds: float = 3600.0
    #: Probability a server<->worker protocol message is dropped on the
    #: floor (the sender believes it was sent; nobody receives it).
    net_drop_p: float = 0.0
    #: Probability a server<->worker protocol message is delivered twice.
    net_dup_p: float = 0.0
    #: Probability a server<->worker protocol message is delayed by up
    #: to ``net_delay_max`` seconds before delivery.
    net_delay_p: float = 0.0
    #: Upper bound of an injected network delay, seconds.
    net_delay_max: float = 0.05
    #: Probability a client connection attempt is refused outright
    #: (``ConnectionRefusedError``), as if the server were down.
    net_refuse_p: float = 0.0
    #: Probability a worker goes *heartbeat-but-slow* on a job attempt:
    #: it keeps beating but sleeps ``slow_seconds`` before running, so
    #: only the per-job deadline (never the hang watchdog) can reap it.
    slow_p: float = 0.0
    #: How long a slow worker sits on the job before running it.
    slow_seconds: float = 0.25

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any fault has a non-zero probability."""
        return any(
            p > 0.0
            for p in (self.kill_p, self.hang_p, self.delay_p, self.dup_p,
                      self.corrupt_p, self.net_drop_p, self.net_dup_p,
                      self.net_delay_p, self.net_refuse_p, self.slow_p)
        )

    @property
    def net_enabled(self) -> bool:
        """Whether any *network* fault site is active (the protocol
        layer checks this before paying per-frame RNG draws)."""
        return any(
            p > 0.0
            for p in (self.net_drop_p, self.net_dup_p, self.net_delay_p)
        )

    @classmethod
    def from_env(cls) -> "ChaosConfig | None":
        """Parse ``REPRO_CHAOS``; None when unset, empty, or ``0``.

        Format: comma-separated ``knob=value`` pairs, e.g.
        ``kill=0.3,corrupt=0.5,seed=7``. Knobs map onto the dataclass
        fields (``kill`` -> ``kill_p`` etc.); unknown knobs raise.
        """
        spec = os.environ.get("REPRO_CHAOS", "").strip()
        if spec in ("", "0"):
            return None
        return cls.parse(spec)

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse a ``kill=0.3,seed=7``-style spec string."""
        aliases = {
            "kill": "kill_p", "hang": "hang_p", "delay": "delay_p",
            "dup": "dup_p", "corrupt": "corrupt_p",
            "net_drop": "net_drop_p", "net_dup": "net_dup_p",
            "net_delay": "net_delay_p", "net_refuse": "net_refuse_p",
            "slow": "slow_p",
        }
        known = {f.name: f for f in fields(cls)}
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            name = aliases.get(name.strip(), name.strip())
            if not sep or name not in known:
                raise ValueError(
                    f"bad REPRO_CHAOS knob {part!r}; known: "
                    f"{', '.join(sorted(set(aliases) | set(known)))}"
                )
            if name == "seed":
                kwargs[name] = int(value.strip())
            else:
                kwargs[name] = float(value.strip())
        for name, p in kwargs.items():
            if name.endswith("_p") and not 0.0 <= float(p) <= 1.0:
                raise ValueError(f"chaos probability {name}={p} not in [0,1]")
        return cls(**kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # decisions — pure functions of (seed, site, labels)
    # ------------------------------------------------------------------
    def _u(self, site: str, *labels: object) -> float:
        """Uniform [0,1) draw, deterministic in (seed, site, labels)."""
        return float(make_rng(self.seed, "chaos", site, *labels).random())

    def kill_point(self, job_hash: str, attempt: int) -> str | None:
        """None, or where this attempt dies: "early" (before the job
        runs) or "late" (after computing, before reporting)."""
        u = self._u("kill", job_hash, attempt)
        if u >= self.kill_p:
            return None
        return "early" if u < self.kill_p / 2 else "late"

    def should_kill(self, job_hash: str, attempt: int) -> bool:
        """Whether this attempt is killed at all (either point)."""
        return self.kill_point(job_hash, attempt) is not None

    def should_hang(self, job_hash: str, attempt: int) -> bool:
        """Whether this attempt hangs (stops heartbeating) first."""
        return self._u("hang", job_hash, attempt) < self.hang_p

    def delivery_delay(self, job_hash: str, attempt: int) -> float:
        """Injected delay (seconds) before result delivery; 0 = none."""
        if self._u("delay", job_hash, attempt) >= self.delay_p:
            return 0.0
        return self._u("delay-len", job_hash, attempt) * self.delay_max

    def should_duplicate(self, job_hash: str, attempt: int) -> bool:
        """Whether the worker delivers its result twice."""
        return self._u("dup", job_hash, attempt) < self.dup_p

    # ------------------------------------------------------------------
    # network sites (repro.serve server <-> worker messages)
    # ------------------------------------------------------------------
    def net_fault(self, site: str, key: str, attempt: int) -> str | None:
        """None, or what happens to this protocol message: "drop" (never
        delivered) or "dup" (delivered twice).

        ``site`` names the link direction (e.g. ``serve-dispatch``,
        ``serve-result``); ``key``/``attempt`` identify the message so
        a retried attempt draws fresh faults and eventually gets
        through (drop probability ``p`` -> terminal-loss probability
        ``p**(retries+1)``, same shape as worker kills).
        """
        u = self._u("net", site, key, attempt)
        if u < self.net_drop_p:
            return "drop"
        if u < self.net_drop_p + self.net_dup_p:
            return "dup"
        return None

    def net_delay(self, site: str, key: str, attempt: int) -> float:
        """Injected delivery delay (seconds) for one protocol message;
        0 = deliver immediately."""
        if self._u("net-delay", site, key, attempt) >= self.net_delay_p:
            return 0.0
        return (self._u("net-delay-len", site, key, attempt)
                * self.net_delay_max)

    def should_refuse(self, site: str, key: str, attempt: int) -> bool:
        """Whether a client connection attempt is refused outright.

        Keyed by ``(site, key, attempt)`` — typically ``key`` is the
        server URL and ``attempt`` the client's retry counter — so a
        backing-off client draws fresh refusal decisions each retry and
        terminal refusal has probability ``p**(retries+1)``, the same
        convergence shape as every other injected fault.
        """
        return self._u("net-refuse", site, key, attempt) < self.net_refuse_p

    def slow_delay(self, job_hash: str, attempt: int) -> float:
        """Seconds a heartbeat-but-slow worker sits on this attempt
        before running it; 0 = full speed. Unlike :meth:`should_hang`
        the worker keeps heartbeating throughout, so the hang watchdog
        must stay quiet and only the per-job deadline can intervene."""
        if self._u("slow", job_hash, attempt) >= self.slow_p:
            return 0.0
        return self.slow_seconds

    def cache_fault(self, key: str) -> str | None:
        """None, or how the entry write for ``key`` is damaged:
        "truncate" (half the bytes) or "flip" (a corrupted slice)."""
        u = self._u("corrupt", key)
        if u >= self.corrupt_p:
            return None
        return "truncate" if u < self.corrupt_p / 2 else "flip"

    def corrupt_bytes(self, key: str, blob: bytes) -> bytes:
        """Apply :meth:`cache_fault` to an encoded entry (identity when
        no fault is drawn for ``key``)."""
        fault = self.cache_fault(key)
        if fault is None or len(blob) < 8:
            return blob
        if fault == "truncate":
            return blob[: len(blob) // 2]
        damaged = bytearray(blob)
        start = len(blob) // 3
        for i in range(start, min(start + 16, len(blob))):
            damaged[i] ^= 0x5A
        return bytes(damaged)

"""Transport-agnostic job-lifecycle state machine for grid execution.

Historically :func:`repro.exec.pool.execute_jobs` owned the whole job
lifecycle inline: journal replay, the warm-cache pass, per-transition
journalling, retry accounting, result caching and progress events. The
distributed sweep service (:mod:`repro.serve`) needs exactly the same
state machine — driven by messages arriving from remote workers instead
of forked children — so it lives here as :class:`JobLedger`, and both
the local pool and the server drive it.

A ledger owns one batch of jobs and guarantees, regardless of who
executes them:

* **replay first** — :meth:`open` replays any previously-journalled
  ``done`` records (resume), then consults the
  :class:`~repro.exec.cache.ResultCache`, so completed grid points are
  never recomputed;
* **every transition journalled** — ``queued``/``started``/``retried``/
  ``done``/``failed``/``interrupted`` records are appended (fsync'd)
  exactly as the single-host executor always wrote them, which is what
  makes the journal a replication log: a server crash loses nothing and
  ``python -m repro.exec resume <run-id>`` works on a journal written
  by either driver;
* **results land once** — :meth:`complete` caches (for
  :class:`~repro.exec.jobs.SimJob` results), records and emits in one
  step, keeping :class:`ExecReport` counts consistent with the journal;
* **per-run cache counters** — on :meth:`summarize` the hit/miss
  counts of the run are persisted next to the cache
  (``<cache root>/runs/<run-id>.json``), feeding
  ``python -m repro.exec cache stats`` and the server's ``/v1/cache``
  endpoint.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.exec.cache import ResultCache
from repro.exec.jobs import JobResult, SimJob
from repro.exec.journal import RunJournal


@dataclass(slots=True)
class ExecReport:
    """Counts accumulated over one batch of jobs."""

    total: int = 0
    #: Jobs satisfied from the result cache without simulating.
    cached: int = 0
    #: Jobs replayed from a prior run's journal without simulating.
    resumed: int = 0
    #: Jobs actually simulated (in-process, in a worker, or remotely).
    simulated: int = 0
    #: Jobs that exhausted their retry budget.
    failed: int = 0
    #: Crashed/hung/timed-out attempts that were retried.
    retried: int = 0
    #: Journal id of this run; None when journalling is off.
    run_id: str | None = None
    #: Terminal :class:`JobFailure` records, in resolution order.
    #: Raised inside :class:`~repro.exec.pool.ExecutionError` normally;
    #: the caller's to inspect under ``tolerate_failures``.
    job_failures: list = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Jobs resolved so far (cached + resumed + simulated + failed)."""
        return self.cached + self.resumed + self.simulated + self.failed

    def as_dict(self) -> dict[str, object]:
        """JSON-safe summary (the serve protocol ships this)."""
        return {
            "total": self.total,
            "cached": self.cached,
            "resumed": self.resumed,
            "simulated": self.simulated,
            "failed": self.failed,
            "retried": self.retried,
            "run_id": self.run_id,
            "failures": [
                {"job": f.job.describe(), "message": f.message}
                for f in self.job_failures
            ],
        }


@dataclass(frozen=True, slots=True)
class ExecProgress:
    """One progress event: the job that just resolved, plus counts."""

    job: SimJob
    payload: JobResult | None
    #: "cached" | "resumed" | "simulated" | "failed"
    outcome: str
    report: ExecReport


@dataclass(frozen=True, slots=True)
class JobFailure:
    """Terminal failure of one job after retries."""

    job: SimJob
    message: str


ProgressFn = Callable[[ExecProgress], None]


class JobLedger:
    """Job-lifecycle bookkeeping for one batch, however it executes.

    The driver (local pool or sweep server) decides *where* and *when*
    each pending job runs; the ledger decides what that means for the
    journal, the cache, the report and the progress stream. Transitions
    are methods: :meth:`start`, :meth:`retry`, :meth:`complete`,
    :meth:`fail`, :meth:`interrupt`.
    """

    def __init__(self, jobs: Sequence, *,
                 hashes: Sequence[str] | None = None,
                 cache: ResultCache | None = None,
                 journal: RunJournal | None = None,
                 resume: bool = False,
                 retries: int = 1,
                 progress: ProgressFn | None = None) -> None:
        self.jobs = list(jobs)
        self.hashes = (list(hashes) if hashes is not None
                       else [job.content_hash() for job in self.jobs])
        self.cache = cache
        self.journal = journal
        self.resume = resume
        self.retries = retries
        self.progress = progress
        self.report = ExecReport(total=len(self.jobs))
        if journal is not None:
            self.report.run_id = journal.run_id
        self.results: list[object | None] = [None] * len(self.jobs)
        self._opened = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _emit(self, idx: int, payload: object | None,
              outcome: str) -> None:
        if self.progress is not None:
            self.progress(ExecProgress(
                job=self.jobs[idx], payload=payload, outcome=outcome,
                report=self.report,
            ))

    def open(self) -> list[int]:
        """Journal the batch header, replay, and run the cache pass.

        Returns the indices still pending (to be executed by the
        driver), in submission order.
        """
        self._opened = True
        journal = self.journal
        replayed = (journal.completed_results()
                    if journal is not None and self.resume else {})
        if journal is not None:
            journal.record("run-start", run_id=self.report.run_id,
                           total=len(self.jobs), resume=self.resume,
                           schema=1)
            for job, job_hash in zip(self.jobs, self.hashes):
                journal.record_queued(job, job_hash)

        pending: list[int] = []
        for idx, job in enumerate(self.jobs):
            prior = replayed.get(self.hashes[idx])
            if prior is not None:
                self.results[idx] = prior
                self.report.resumed += 1
                if journal is not None:
                    journal.record("resumed", self.hashes[idx])
                self._emit(idx, prior, "resumed")
                continue
            # The disk cache's schema is SimJob/JobResult-shaped; other
            # job kinds bring their own store (see the WorkJob
            # docstring).
            hit = (self.cache.get(job)
                   if self.cache is not None and isinstance(job, SimJob)
                   else None)
            if hit is not None:
                self.results[idx] = hit
                self.report.cached += 1
                if journal is not None:
                    journal.record("cached", self.hashes[idx])
                self._emit(idx, hit, "cached")
            else:
                pending.append(idx)
        return pending

    # ------------------------------------------------------------------
    # per-job transitions
    # ------------------------------------------------------------------
    def start(self, idx: int, attempt: int) -> None:
        """An execution attempt of job ``idx`` has begun."""
        if self.journal is not None:
            self.journal.record("started", self.hashes[idx],
                                attempt=attempt)

    def retry(self, idx: int, attempt: int, error: str | None) -> bool:
        """A failed attempt: consume retry budget if any remains.

        Returns True (and records the retry) when the driver should
        re-execute the job with ``attempt + 1``; False when the budget
        is exhausted and the driver must call :meth:`fail`.
        """
        if attempt >= self.retries:
            return False
        self.report.retried += 1
        if self.journal is not None:
            self.journal.record("retried", self.hashes[idx],
                                attempt=attempt, error=error)
        return True

    def complete(self, idx: int, payload: object) -> None:
        """Job ``idx`` produced ``payload``: cache, journal, emit."""
        if self.cache is not None and isinstance(payload, JobResult):
            # The cache's atomic write is the sanctioned synchronous
            # helper of the async service (docs/distributed.md).
            self.cache.put(self.jobs[idx], payload)  # repro: noqa[RPR013]
        self.results[idx] = payload
        self.report.simulated += 1
        if self.journal is not None:
            self.journal.record_done(self.hashes[idx], payload)
        self._emit(idx, payload, "simulated")

    def fail(self, idx: int, error: str | None) -> None:
        """Job ``idx`` failed terminally (budget exhausted)."""
        message = error or "worker died"
        self.report.job_failures.append(
            JobFailure(job=self.jobs[idx], message=message)
        )
        self.report.failed += 1
        if self.journal is not None:
            self.journal.record("failed", self.hashes[idx], error=error)
        self._emit(idx, None, "failed")

    def interrupt(self, idx: int, attempt: int | None = None) -> None:
        """Job ``idx`` was in flight when the run was interrupted."""
        if self.journal is not None:
            if attempt is None:
                self.journal.record("interrupted", self.hashes[idx])
            else:
                self.journal.record("interrupted", self.hashes[idx],
                                    attempt=attempt)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether every job has resolved (completed or failed)."""
        return self.report.completed >= self.report.total

    def summarize(self) -> None:
        """Record the ``run-end`` summary and persist cache counters.

        Called once on normal completion (an interrupted run has no
        summary — that is how resume knows it is incomplete).
        """
        r = self.report
        if self.journal is not None:
            self.journal.record(
                "run-end", cached=r.cached, resumed=r.resumed,
                simulated=r.simulated, failed=r.failed,
                retried=r.retried,
            )
        if self.cache is not None and r.run_id is not None:
            self.cache.record_run(
                r.run_id, hits=r.cached,
                misses=r.total - r.cached - r.resumed, total=r.total,
            )

    def close(self) -> None:
        """Close the journal fd (safe to call repeatedly)."""
        if self.journal is not None:
            self.journal.close()

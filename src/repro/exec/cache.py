"""Content-addressed on-disk result store.

Layout: one JSON file per grid point, ``<root>/<content-hash>.json``.
The default root is ``results/cache`` (override with ``REPRO_CACHE_DIR``
or per :class:`ResultCache` instance).

Each entry records:

* ``schema`` — :data:`SCHEMA_VERSION`. Bumped whenever either the entry
  format *or the simulator's observable behaviour* changes; entries with
  any other value are treated as misses, so stale results self-invalidate
  instead of silently corrupting figures.
* ``repro_version`` — the package version that produced the entry, a
  second self-invalidation guard across releases.
* ``key`` — the job's content hash (must match the filename and the
  requesting job; a mismatch means a corrupt or hand-edited entry).
* ``job`` — the job's fingerprint payload, for human inspection.
* ``result`` / ``fairness`` — the stored :class:`SimResult` fields.

Writes are atomic (write to a same-directory temp file, then
``os.replace``), so a crashed or parallel writer can never leave a
half-written entry behind — readers see either the old entry or the new
one. Corrupt, truncated, or schema-mismatched entries are treated as
misses; the executor then recomputes and overwrites them.

Floats survive the round trip exactly: ``json`` serialises Python floats
with ``repr``, which round-trips IEEE-754 doubles bit-for-bit, so a
cached :class:`SimResult` compares equal to a freshly simulated one.

CLI::

    python -m repro.exec cache stats
    python -m repro.exec cache clear
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.metrics.ipc import SimResult

from repro.exec.jobs import JobResult, SimJob

#: Bump when the entry format or simulator behaviour changes (see
#: docs/exec.md "Invalidation rules").
SCHEMA_VERSION = 1

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"


def default_cache_dir() -> Path:
    """Cache root honouring the ``REPRO_CACHE_DIR`` environment knob."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else DEFAULT_CACHE_DIR


def _repro_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Aggregate numbers for ``repro.exec cache stats``."""

    root: str
    entries: int
    total_bytes: int


class ResultCache:
    """Content-addressed store of :class:`JobResult` values."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # ------------------------------------------------------------------
    def path_for(self, job: SimJob) -> Path:
        """Entry path for a job (exists or not)."""
        return self.root / f"{job.content_hash()}.json"

    def get(self, job: SimJob) -> JobResult | None:
        """Stored result for ``job``, or None on miss.

        Corrupt JSON, schema/version mismatches, and key mismatches all
        read as misses — never as errors — so a poisoned entry costs one
        recomputation, not a crashed sweep.
        """
        key = job.content_hash()
        path = self.root / f"{key}.json"
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != SCHEMA_VERSION:
            return None
        if entry.get("repro_version") != _repro_version():
            return None
        if entry.get("key") != key:
            return None
        try:
            return _decode_job_result(entry)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, job: SimJob, payload: JobResult) -> Path:
        """Atomically persist ``payload`` under the job's content hash."""
        self.root.mkdir(parents=True, exist_ok=True)
        key = job.content_hash()
        path = self.root / f"{key}.json"
        entry = {
            "schema": SCHEMA_VERSION,
            "repro_version": _repro_version(),
            "key": key,
            "job": job.fingerprint_payload(),
            "result": _encode_sim_result(payload.result),
            "fairness": payload.fairness,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(entry, sort_keys=True, indent=1), encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Entry count and on-disk footprint."""
        entries = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                entries += 1
                total += path.stat().st_size
        return CacheStats(
            root=str(self.root), entries=entries, total_bytes=total
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


# ----------------------------------------------------------------------
# (de)serialisation
# ----------------------------------------------------------------------
def _encode_sim_result(result: SimResult) -> dict[str, object]:
    return {
        "benchmarks": list(result.benchmarks),
        "scheduler": result.scheduler,
        "iq_size": result.iq_size,
        "cycles": result.cycles,
        "committed": list(result.committed),
        "extras": dict(result.extras),
    }


def _decode_job_result(entry: dict[str, object]) -> JobResult:
    raw = entry["result"]
    if not isinstance(raw, dict):
        raise TypeError("result field is not an object")
    result = SimResult(
        benchmarks=tuple(raw["benchmarks"]),
        scheduler=str(raw["scheduler"]),
        iq_size=int(raw["iq_size"]),
        cycles=int(raw["cycles"]),
        committed=tuple(int(c) for c in raw["committed"]),
        extras={str(k): float(v) for k, v in dict(raw["extras"]).items()},
    )
    fairness = entry.get("fairness")
    return JobResult(
        result=result,
        fairness=None if fairness is None else float(fairness),
    )

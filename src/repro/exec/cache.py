"""Content-addressed on-disk result store with integrity checking.

Layout: one JSON file per grid point, ``<root>/<content-hash>.json``.
The default root is ``results/cache`` (override with ``REPRO_CACHE_DIR``
or per :class:`ResultCache` instance).

Each entry records:

* ``schema`` — :data:`SCHEMA_VERSION`. Bumped whenever either the entry
  format *or the simulator's observable behaviour* changes; entries with
  any other value are treated as misses, so stale results self-invalidate
  instead of silently corrupting figures.
* ``repro_version`` — the package version that produced the entry, a
  second self-invalidation guard across releases.
* ``key`` — the job's content hash (must match the filename and the
  requesting job; a mismatch means a corrupt or hand-edited entry).
* ``job`` — the job's fingerprint payload, for human inspection.
* ``result`` / ``fairness`` — the stored :class:`SimResult` fields.
* ``checksum`` — SHA-256 over the canonical encoding of the payload
  fields, so a torn, truncated, or bit-rotted entry is *detected*, not
  silently served.

Writes are atomic (write to a same-directory temp file, then
``os.replace``), so a crashed or parallel writer can never leave a
half-written entry behind — readers see either the old entry or the new
one.

Damage handling distinguishes two cases on read:

* **stale** (schema or version mismatch) — a plain miss; the entry is
  recomputed and overwritten in place;
* **corrupt** (unparseable, checksum or key mismatch) — the entry is
  *quarantined*: atomically renamed to ``<hash>.corrupt`` so the damage
  stays visible (``cache stats`` counts quarantined files, ``cache
  verify`` sweeps the whole store) while the executor recomputes.

Floats survive the round trip exactly: ``json`` serialises Python floats
with ``repr``, which round-trips IEEE-754 doubles bit-for-bit, so a
cached :class:`SimResult` compares equal to a freshly simulated one.

Fault injection: construct with ``chaos=``:class:`~repro.exec.chaos.
ChaosConfig` (or let the executor pass it through) and entry writes are
deterministically truncated/corrupted with the configured probability —
the integrity machinery above is what makes this survivable.

CLI::

    python -m repro.exec cache stats
    python -m repro.exec cache verify
    python -m repro.exec cache clear
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.metrics.ipc import SimResult

from repro.exec.chaos import ChaosConfig
from repro.exec.jobs import JobResult, SimJob, hash_payload

#: Bump when the entry format or simulator behaviour changes (see
#: docs/exec.md "Invalidation rules"). 2: payload checksum added.
SCHEMA_VERSION = 2

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"

#: Suffix quarantined (corrupt) entries are renamed to.
CORRUPT_SUFFIX = ".corrupt"


def default_cache_dir() -> Path:
    """Cache root honouring the ``REPRO_CACHE_DIR`` environment knob."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else DEFAULT_CACHE_DIR


def _repro_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Aggregate numbers for ``repro.exec cache stats`` (and the sweep
    server's ``/v1/cache`` endpoint, which serves this same struct)."""

    root: str
    entries: int
    total_bytes: int
    #: Quarantined ``*.corrupt`` files awaiting inspection/deletion.
    corrupt: int = 0
    #: Per-kind breakdown ``(kind, entries, bytes)``: ``sim`` for
    #: :class:`SimJob` results, the fingerprint ``kind`` for other job
    #: classes (e.g. ``work``), and ``mutation`` for the mutation
    #: engine's per-layer outcome store under ``<root>/mutation/``.
    by_kind: tuple[tuple[str, int, int], ...] = ()
    #: Cache hits summed over the persisted per-run counter files
    #: (``<root>/runs/<run-id>.json``, written at the end of every
    #: journalled run).
    hits: int = 0
    #: Cache misses (jobs a run had to execute) over the same files.
    misses: int = 0
    #: How many per-run counter files the totals aggregate.
    runs: int = 0

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form (shared by ``--json`` and ``/v1/cache``)."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "corrupt": self.corrupt,
            "by_kind": [
                {"kind": k, "entries": n, "bytes": b}
                for k, n, b in self.by_kind
            ],
            "hits": self.hits,
            "misses": self.misses,
            "runs": self.runs,
        }


@dataclass(frozen=True, slots=True)
class VerifyReport:
    """Outcome of a full-store integrity sweep (``cache verify``)."""

    checked: int
    ok: int
    #: Schema/version mismatches: valid files awaiting recomputation.
    stale: int
    #: Entries failing integrity checks, moved to ``*.corrupt``.
    quarantined: int


class ResultCache:
    """Content-addressed store of :class:`JobResult` values."""

    def __init__(self, root: str | Path | None = None,
                 chaos: ChaosConfig | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Fault-injection policy applied on write (None = writes are
        #: faithful). Reads never inject: detection is the point.
        self.chaos = chaos

    # ------------------------------------------------------------------
    def path_for(self, job: SimJob) -> Path:
        """Entry path for a job (exists or not)."""
        return self.root / f"{job.content_hash()}.json"

    def get(self, job: SimJob) -> JobResult | None:
        """Stored result for ``job``, or None on miss.

        Never raises: a missing or stale entry is a plain miss; a
        *corrupt* entry (bad JSON, checksum/key mismatch) is quarantined
        to ``<hash>.corrupt`` and then reads as a miss, so a poisoned
        entry costs one recomputation plus a visible quarantine file,
        not a crashed sweep.
        """
        key = job.content_hash()
        path = self.root / f"{key}.json"
        try:
            blob = path.read_bytes()
        except OSError:  # repro: noqa[RPR007] — absent entry: ordinary miss
            return None
        state, payload = self._validate(key, blob)
        if state == "ok":
            return payload
        if state == "corrupt":
            self._quarantine(path)
        return None

    def _validate(self, key: str,
                  blob: bytes) -> tuple[str, JobResult | None]:
        """Classify an entry's bytes: ("ok", payload) / ("stale", None)
        / ("corrupt", None)."""
        try:
            entry = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return "corrupt", None
        if not isinstance(entry, dict):
            return "corrupt", None
        if entry.get("schema") != SCHEMA_VERSION:
            return "stale", None
        if entry.get("repro_version") != _repro_version():
            return "stale", None
        if entry.get("key") != key:
            return "corrupt", None
        body = {
            "result": entry.get("result"),
            "fairness": entry.get("fairness"),
        }
        try:
            if entry.get("checksum") != hash_payload(body):
                return "corrupt", None
            return "ok", decode_job_result(body)
        except (KeyError, TypeError, ValueError):
            return "corrupt", None

    def _quarantine(self, path: Path) -> Path:
        """Atomically move a damaged entry aside as ``<hash>.corrupt``."""
        target = path.with_suffix(CORRUPT_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:  # repro: noqa[RPR007] — lost a benign race
            # A concurrent reader quarantined the same entry first;
            # either way the bad file is out of the namespace.
            pass
        return target

    def put(self, job: SimJob, payload: JobResult) -> Path:
        """Atomically persist ``payload`` under the job's content hash."""
        self.root.mkdir(parents=True, exist_ok=True)
        key = job.content_hash()
        path = self.root / f"{key}.json"
        body = encode_job_result(payload)
        entry = {
            "schema": SCHEMA_VERSION,
            "repro_version": _repro_version(),
            "key": key,
            "job": job.fingerprint_payload(),
            "checksum": hash_payload(body),
            **body,
        }
        blob = json.dumps(entry, sort_keys=True, indent=1).encode("utf-8")
        if self.chaos is not None:
            blob = self.chaos.corrupt_bytes(key, blob)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # per-run hit/miss counters
    # ------------------------------------------------------------------
    def record_run(self, run_id: str, hits: int, misses: int,
                   total: int) -> Path:
        """Persist one run's hit/miss counters under ``runs/<run-id>``.

        Written (atomically, like entries) at the end of every
        journalled run by :meth:`repro.exec.ledger.JobLedger.summarize`;
        ``stats`` aggregates them so hit rates survive across
        processes and are visible to ``cache stats`` / ``/v1/cache``.
        Re-running the same grid overwrites its own counter file (run
        ids are content-derived), so warm reruns update rather than
        double-count.
        """
        runs = self.root / "runs"
        runs.mkdir(parents=True, exist_ok=True)
        path = runs / f"{run_id}.json"
        blob = json.dumps(
            {"run_id": run_id, "hits": int(hits), "misses": int(misses),
             "total": int(total)},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Entry count, footprint, quarantine count, per-kind breakdown
        and aggregated per-run hit/miss counters."""
        entries = 0
        total = 0
        corrupt = 0
        by_kind: dict[str, list[int]] = {}
        hits = misses = runs = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                entries += 1
                size = path.stat().st_size
                total += size
                kind = self._entry_kind(path)
                bucket = by_kind.setdefault(kind, [0, 0])
                bucket[0] += 1
                bucket[1] += size
            corrupt = sum(1 for _ in self.root.glob(f"*{CORRUPT_SUFFIX}"))
            # The mutation engine keeps its per-layer outcome store
            # under <root>/mutation/; count it as its own kind.
            mutation = self.root / "mutation"
            if mutation.is_dir():
                bucket = by_kind.setdefault("mutation", [0, 0])
                for path in mutation.rglob("*.json"):
                    bucket[0] += 1
                    bucket[1] += path.stat().st_size
            for path in (self.root / "runs").glob("*.json"):
                try:
                    rec = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError):  # repro: noqa[RPR007] — torn counter file: skip
                    continue
                hits += int(rec.get("hits", 0))
                misses += int(rec.get("misses", 0))
                runs += 1
        return CacheStats(
            root=str(self.root), entries=entries, total_bytes=total,
            corrupt=corrupt,
            by_kind=tuple(
                (kind, n, size)
                for kind, (n, size) in sorted(by_kind.items())
            ),
            hits=hits, misses=misses, runs=runs,
        )

    def _entry_kind(self, path: Path) -> str:
        """Job kind of one stored entry, from its recorded fingerprint.

        :class:`SimJob` fingerprints predate the ``kind`` discriminator
        and have none; anything unreadable counts as ``unknown`` (the
        integrity sweep, not stats, judges corruption).
        """
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            job = entry.get("job")
            if isinstance(job, dict):
                return str(job.get("kind", "sim"))
        except (OSError, ValueError):  # repro: noqa[RPR007] — stats never raise on damage
            pass
        return "unknown"

    def verify(self) -> VerifyReport:
        """Integrity-sweep every entry; quarantine the corrupt ones.

        Unlike :meth:`get`, this checks entries without knowing the
        requesting job: the recorded ``key`` must match the filename and
        the checksum must match the payload.
        """
        checked = ok = stale = quarantined = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("*.json")):
                checked += 1
                try:
                    blob = path.read_bytes()
                except OSError:  # repro: noqa[RPR007] — deleted underneath us
                    continue
                state, _ = self._validate(path.stem, blob)
                if state == "ok":
                    ok += 1
                elif state == "stale":
                    stale += 1
                else:
                    self._quarantine(path)
                    quarantined += 1
        return VerifyReport(checked=checked, ok=ok, stale=stale,
                            quarantined=quarantined)

    def clear(self, corrupt: bool = True) -> int:
        """Delete every entry (and, by default, every quarantined
        file); returns how many files were removed."""
        removed = 0
        if self.root.is_dir():
            patterns = ["*.json"] + ([f"*{CORRUPT_SUFFIX}"] if corrupt
                                     else [])
            for pattern in patterns:
                for path in self.root.glob(pattern):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed


# ----------------------------------------------------------------------
# (de)serialisation
# ----------------------------------------------------------------------
def encode_job_result(payload: JobResult) -> dict[str, object]:
    """Encode a :class:`JobResult` as the JSON-safe payload body shared
    by cache entries and journal ``done`` records."""
    result = payload.result
    return {
        "result": {
            "benchmarks": list(result.benchmarks),
            "scheduler": result.scheduler,
            "iq_size": result.iq_size,
            "cycles": int(result.cycles),
            "committed": [int(c) for c in result.committed],
            # Normalised to float so encoding a fresh result and
            # re-encoding a decoded one are byte-identical (extras may
            # hold ints in memory; decode always yields floats).
            "extras": {str(k): float(v)
                       for k, v in result.extras.items()},
        },
        "fairness": (None if payload.fairness is None
                     else float(payload.fairness)),
    }


def decode_job_result(body: dict[str, object]) -> JobResult:
    """Inverse of :func:`encode_job_result`."""
    raw = body["result"]
    if not isinstance(raw, dict):
        raise TypeError("result field is not an object")
    result = SimResult(
        benchmarks=tuple(raw["benchmarks"]),
        scheduler=str(raw["scheduler"]),
        iq_size=int(raw["iq_size"]),
        cycles=int(raw["cycles"]),
        committed=tuple(int(c) for c in raw["committed"]),
        extras={str(k): float(v) for k, v in dict(raw["extras"]).items()},
    )
    fairness = body.get("fairness")
    return JobResult(
        result=result,
        fairness=None if fairness is None else float(fairness),
    )

"""Crash-safe run journal: one fsync'd JSON line per job transition.

While a grid executes, :func:`repro.exec.execute_jobs` appends a record
to ``results/journal/<run-id>.jsonl`` at every job transition::

    {"event": "run-start", "run_id": ..., "total": N, ...}
    {"event": "queued",  "job": "<hash>", "fingerprint": {...}}
    {"event": "started", "job": "<hash>", "attempt": 0}
    {"event": "done",    "job": "<hash>", "payload": {...}}   # full result
    {"event": "cached" | "resumed" | "retried" | "failed" | "interrupted", ...}
    {"event": "run-end", "simulated": ..., "cached": ..., ...}

Every line is written with ``O_APPEND`` + ``fsync`` before the executor
moves on, so the journal is exactly as complete as the work that
actually happened — a worker crash, a ``kill -9``, or a Ctrl-C cannot
lose a completed job or invent an incomplete one. A torn final line
(the one write a crash can interrupt) is detected and ignored on load.

Because ``done`` records embed the full encoded result, the journal
alone is sufficient to resume: ``python -m repro.exec resume <run-id>``
(or ``ExecutorConfig(resume=True)``) replays completed results with
**zero re-simulation** and re-executes only the incomplete remainder.
``queued`` records embed each job's fingerprint, so the resume CLI can
rebuild the grid without the original driver script.

Run ids are content-derived (a hash of the batch's job hashes), so the
same grid always journals to the same file; starting a *fresh* run of a
grid whose journal already exists atomically rotates the old journal
(and any of its segments) aside to ``<run-id>.jsonl.1`` first.

**Size rotation.** Long-lived writers (the sweep server journals every
transition of every submission) can cap the active file with
``rotate_bytes``: once the active file exceeds the cap, it is atomically
renamed to ``<run-id>.jsonl.seg<N>`` and appending continues in a fresh
``<run-id>.jsonl``. Loading replays the segments in order, then the
active file, *as one logical byte stream* — so a record torn at the
rotation seam (a fragment at the tail of one segment whose continuation
is at the head of the next file, exactly what a reader racing a
rotation observes) is stitched back together instead of rejected. Only
the final line of the final file may be torn without a continuation;
it is truncated away on resume like the single-file case always was.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from pathlib import Path

from repro.exec.cache import decode_job_result, encode_job_result
from repro.exec.jobs import JobResult, SimJob, WorkJob, hash_payload

#: Journal line-format version, recorded in ``run-start``.
JOURNAL_SCHEMA = 1

#: Default journal root, relative to the current working directory.
DEFAULT_JOURNAL_DIR = Path("results") / "journal"


def default_journal_dir() -> Path:
    """Journal root honouring the ``REPRO_JOURNAL`` environment knob
    (``REPRO_JOURNAL=1`` selects this default; any other non-zero value
    is itself the directory)."""
    env = os.environ.get("REPRO_JOURNAL", "")
    if env not in ("", "0", "1"):
        return Path(env)
    return DEFAULT_JOURNAL_DIR


def journal_dir_from_env() -> Path | None:
    """Journal directory selected by ``REPRO_JOURNAL``, or None when
    journalling is off (unset or ``0``)."""
    env = os.environ.get("REPRO_JOURNAL", "").strip()
    if env in ("", "0"):
        return None
    return default_journal_dir()


def derive_run_id(job_hashes: Sequence[str]) -> str:
    """Deterministic run id for a batch: a digest over its job hashes.

    The id depends only on *what* is being executed, so re-running the
    same grid finds (and can resume) its own journal without the caller
    tracking ids.
    """
    return hash_payload({"jobs": list(job_hashes)})[:16]


class RunJournal:
    """Append-only transition log for one run id.

    ``resume=True`` loads the existing journal (completed results,
    queued fingerprints) and appends to it; ``resume=False`` rotates any
    existing file aside and starts fresh.
    """

    def __init__(self, root: str | Path, run_id: str,
                 resume: bool = False,
                 rotate_bytes: int | None = None) -> None:
        self.root = Path(root)
        self.run_id = run_id
        self.path = self.root / f"{run_id}.jsonl"
        self.root.mkdir(parents=True, exist_ok=True)
        #: Active-file size cap; exceeding it rotates the file to a
        #: ``.seg<N>`` segment. None = never rotate mid-run.
        self.rotate_bytes = rotate_bytes
        #: job hash -> decoded result, from prior ``done`` records.
        self._completed: dict[str, object] = {}
        #: job hash -> fingerprint payload, in first-queued order.
        self._fingerprints: dict[str, dict] = {}
        self._seq = 0
        if self.path.exists() or self._segments():
            if resume:
                self._load()
            else:
                self._rotate_aside()
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._size = os.fstat(self._fd).st_size

    # ------------------------------------------------------------------
    def _segments(self) -> list[Path]:
        """Mid-run size-rotation segments, in write (ascending) order."""
        out = []
        for path in self.root.glob(f"{self.path.name}.seg*"):
            suffix = path.name[len(self.path.name) + 4:]
            if suffix.isdigit():
                out.append((int(suffix), path))
        return [p for _, p in sorted(out)]

    def _rotate_aside(self) -> None:
        """Archive a prior run of the same grid before starting fresh:
        the active file and every segment move under a ``.1`` prefix."""
        for seg in self._segments():
            os.replace(seg, self.path.with_name(
                f"{self.path.name}.1{seg.name[len(self.path.name):]}"
            ))
        if self.path.exists():
            os.replace(self.path, self.path.with_name(
                self.path.name + ".1"
            ))

    def _load(self) -> None:
        """Replay an existing journal (segments + active file).

        The files are parsed as one concatenated byte stream, so a
        record torn across a rotation seam — the tail fragment of one
        segment continued at the head of the next file — is recovered
        intact. Tolerates exactly the damage a crash can cause beyond
        that: a torn final line (no trailing newline / truncated JSON)
        is skipped and truncated from disk. Any *earlier* malformed
        line means outside interference and raises.
        """
        files = self._segments()
        if self.path.exists():
            files.append(self.path)
        blobs = [path.read_bytes() for path in files]
        blob = b"".join(blobs)
        lines = blob.split(b"\n")
        parsed = 0
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                if i == len(lines) - 1:
                    # A crash mid-write leaves exactly one torn,
                    # newline-less fragment at the tail. Drop it from
                    # disk too, or the records this resume appends
                    # would concatenate onto it and damage the journal
                    # for every later load.
                    self._truncate_tail(files, blobs, len(line))
                    break
                raise ValueError(
                    f"journal {self.path} is damaged at line {i + 1}"
                ) from exc
            self._absorb(rec)
            parsed += 1
        self._seq = parsed

    def _truncate_tail(self, files: list[Path], blobs: list[bytes],
                       drop: int) -> None:
        """Remove the torn final ``drop`` bytes, walking backwards over
        the physical files they may span."""
        for path, data in zip(reversed(files), reversed(blobs)):
            if drop <= 0:
                break
            keep = max(0, len(data) - drop)
            os.truncate(path, keep)
            drop -= len(data) - keep

    def _absorb(self, rec: dict) -> None:
        event = rec.get("event")
        job = rec.get("job")
        if event == "queued" and job is not None:
            self._fingerprints.setdefault(job, rec.get("fingerprint"))
        elif event == "done" and job is not None:
            if rec.get("payload_kind", "sim") == "sim":
                self._completed[job] = decode_job_result(rec["payload"])
            else:
                # Generic (WorkJob) results are journalled verbatim.
                self._completed[job] = rec["payload"]

    # ------------------------------------------------------------------
    def record(self, event: str, job_hash: str | None = None,
               **fields: object) -> None:
        """Append one fsync'd transition record."""
        if self._fd is None:
            raise ValueError("journal is closed")
        rec: dict[str, object] = {"seq": self._seq, "event": event}
        if job_hash is not None:
            rec["job"] = job_hash
        rec.update(fields)
        line = json.dumps(rec, sort_keys=True,
                          separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        os.write(self._fd, data)
        os.fsync(self._fd)
        self._size += len(data)
        self._seq += 1
        self._absorb(rec)
        if self.rotate_bytes is not None and self._size >= self.rotate_bytes:
            self._rotate_segment()

    def _rotate_segment(self) -> None:
        """Roll the active file over to the next ``.seg<N>`` segment.

        Readers racing this rename see either the old layout or the new
        one (``os.replace`` is atomic); either way :meth:`_load`'s
        concatenated replay yields the same record stream.
        """
        segs = self._segments()
        next_n = 1
        if segs:
            next_n = int(segs[-1].name.rsplit("seg", 1)[1]) + 1
        os.close(self._fd)
        os.replace(self.path, self.path.with_name(
            f"{self.path.name}.seg{next_n}"
        ))
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._size = 0

    def record_queued(self, job, job_hash: str) -> None:
        """Record a queued job with its reconstruction fingerprint."""
        self.record("queued", job_hash,
                    fingerprint=job.fingerprint_payload())

    def record_done(self, job_hash: str, payload: object) -> None:
        """Record a completed job with its full encoded result.

        :class:`JobResult` payloads go through the cache's codec;
        anything else (a :class:`~repro.exec.jobs.WorkJob` return) must
        already be JSON-safe and is embedded verbatim, discriminated by
        ``payload_kind`` so replay decodes each record correctly.
        """
        if isinstance(payload, JobResult):
            self.record("done", job_hash,
                        payload=encode_job_result(payload))
        else:
            self.record("done", job_hash, payload=payload,
                        payload_kind="raw")

    # ------------------------------------------------------------------
    def completed_results(self) -> dict[str, object]:
        """Results of every job this journal has seen complete."""
        return dict(self._completed)

    def queued_jobs(self) -> list:
        """Reconstruct every queued job, in first-queued order.

        The fingerprint's ``kind`` discriminator selects the job class;
        historical journals (no ``kind``) are all :class:`SimJob`.
        """
        out = []
        for fp in self._fingerprints.values():
            if fp is None:
                continue
            if fp.get("kind") == "work":
                out.append(WorkJob.from_fingerprint(fp))
            else:
                out.append(SimJob.from_fingerprint(fp))
        return out

    def close(self) -> None:
        """Close the journal fd (records already on disk stay put)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Crash-safe run journal: one fsync'd JSON line per job transition.

While a grid executes, :func:`repro.exec.execute_jobs` appends a record
to ``results/journal/<run-id>.jsonl`` at every job transition::

    {"event": "run-start", "run_id": ..., "total": N, ...}
    {"event": "queued",  "job": "<hash>", "fingerprint": {...}}
    {"event": "started", "job": "<hash>", "attempt": 0}
    {"event": "done",    "job": "<hash>", "payload": {...}}   # full result
    {"event": "cached" | "resumed" | "retried" | "failed" | "interrupted", ...}
    {"event": "run-end", "simulated": ..., "cached": ..., ...}

Every line is written with ``O_APPEND`` + ``fsync`` before the executor
moves on, so the journal is exactly as complete as the work that
actually happened — a worker crash, a ``kill -9``, or a Ctrl-C cannot
lose a completed job or invent an incomplete one. A torn final line
(the one write a crash can interrupt) is detected and ignored on load.

Because ``done`` records embed the full encoded result, the journal
alone is sufficient to resume: ``python -m repro.exec resume <run-id>``
(or ``ExecutorConfig(resume=True)``) replays completed results with
**zero re-simulation** and re-executes only the incomplete remainder.
``queued`` records embed each job's fingerprint, so the resume CLI can
rebuild the grid without the original driver script.

Run ids are content-derived (a hash of the batch's job hashes), so the
same grid always journals to the same file; starting a *fresh* run of a
grid whose journal already exists atomically rotates the old journal to
``<run-id>.jsonl.1`` first.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from pathlib import Path

from repro.exec.cache import decode_job_result, encode_job_result
from repro.exec.jobs import JobResult, SimJob, WorkJob, hash_payload

#: Journal line-format version, recorded in ``run-start``.
JOURNAL_SCHEMA = 1

#: Default journal root, relative to the current working directory.
DEFAULT_JOURNAL_DIR = Path("results") / "journal"


def default_journal_dir() -> Path:
    """Journal root honouring the ``REPRO_JOURNAL`` environment knob
    (``REPRO_JOURNAL=1`` selects this default; any other non-zero value
    is itself the directory)."""
    env = os.environ.get("REPRO_JOURNAL", "")
    if env not in ("", "0", "1"):
        return Path(env)
    return DEFAULT_JOURNAL_DIR


def journal_dir_from_env() -> Path | None:
    """Journal directory selected by ``REPRO_JOURNAL``, or None when
    journalling is off (unset or ``0``)."""
    env = os.environ.get("REPRO_JOURNAL", "").strip()
    if env in ("", "0"):
        return None
    return default_journal_dir()


def derive_run_id(job_hashes: Sequence[str]) -> str:
    """Deterministic run id for a batch: a digest over its job hashes.

    The id depends only on *what* is being executed, so re-running the
    same grid finds (and can resume) its own journal without the caller
    tracking ids.
    """
    return hash_payload({"jobs": list(job_hashes)})[:16]


class RunJournal:
    """Append-only transition log for one run id.

    ``resume=True`` loads the existing journal (completed results,
    queued fingerprints) and appends to it; ``resume=False`` rotates any
    existing file aside and starts fresh.
    """

    def __init__(self, root: str | Path, run_id: str,
                 resume: bool = False) -> None:
        self.root = Path(root)
        self.run_id = run_id
        self.path = self.root / f"{run_id}.jsonl"
        self.root.mkdir(parents=True, exist_ok=True)
        #: job hash -> decoded result, from prior ``done`` records.
        self._completed: dict[str, object] = {}
        #: job hash -> fingerprint payload, in first-queued order.
        self._fingerprints: dict[str, dict] = {}
        self._seq = 0
        if self.path.exists():
            if resume:
                self._load()
            else:
                os.replace(self.path, self.path.with_name(
                    self.path.name + ".1"
                ))
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Replay an existing journal file into memory.

        Tolerates exactly the damage a crash can cause: a torn final
        line (no trailing newline / truncated JSON) is skipped. Any
        *earlier* malformed line means outside interference and raises.
        """
        blob = self.path.read_bytes()
        lines = blob.split(b"\n")
        parsed = 0
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                if i == len(lines) - 1:
                    # A crash mid-write leaves exactly one torn,
                    # newline-less fragment at the tail. Drop it from
                    # disk too, or the records this resume appends
                    # would concatenate onto it and damage the journal
                    # for every later load.
                    os.truncate(self.path, len(blob) - len(line))
                    break
                raise ValueError(
                    f"journal {self.path} is damaged at line {i + 1}"
                ) from exc
            self._absorb(rec)
            parsed += 1
        self._seq = parsed

    def _absorb(self, rec: dict) -> None:
        event = rec.get("event")
        job = rec.get("job")
        if event == "queued" and job is not None:
            self._fingerprints.setdefault(job, rec.get("fingerprint"))
        elif event == "done" and job is not None:
            if rec.get("payload_kind", "sim") == "sim":
                self._completed[job] = decode_job_result(rec["payload"])
            else:
                # Generic (WorkJob) results are journalled verbatim.
                self._completed[job] = rec["payload"]

    # ------------------------------------------------------------------
    def record(self, event: str, job_hash: str | None = None,
               **fields: object) -> None:
        """Append one fsync'd transition record."""
        if self._fd is None:
            raise ValueError("journal is closed")
        rec: dict[str, object] = {"seq": self._seq, "event": event}
        if job_hash is not None:
            rec["job"] = job_hash
        rec.update(fields)
        line = json.dumps(rec, sort_keys=True,
                          separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        os.fsync(self._fd)
        self._seq += 1
        self._absorb(rec)

    def record_queued(self, job, job_hash: str) -> None:
        """Record a queued job with its reconstruction fingerprint."""
        self.record("queued", job_hash,
                    fingerprint=job.fingerprint_payload())

    def record_done(self, job_hash: str, payload: object) -> None:
        """Record a completed job with its full encoded result.

        :class:`JobResult` payloads go through the cache's codec;
        anything else (a :class:`~repro.exec.jobs.WorkJob` return) must
        already be JSON-safe and is embedded verbatim, discriminated by
        ``payload_kind`` so replay decodes each record correctly.
        """
        if isinstance(payload, JobResult):
            self.record("done", job_hash,
                        payload=encode_job_result(payload))
        else:
            self.record("done", job_hash, payload=payload,
                        payload_kind="raw")

    # ------------------------------------------------------------------
    def completed_results(self) -> dict[str, object]:
        """Results of every job this journal has seen complete."""
        return dict(self._completed)

    def queued_jobs(self) -> list:
        """Reconstruct every queued job, in first-queued order.

        The fingerprint's ``kind`` discriminator selects the job class;
        historical journals (no ``kind``) are all :class:`SimJob`.
        """
        out = []
        for fp in self._fingerprints.values():
            if fp is None:
                continue
            if fp.get("kind") == "work":
                out.append(WorkJob.from_fingerprint(fp))
            else:
                out.append(SimJob.from_fingerprint(fp))
        return out

    def close(self) -> None:
        """Close the journal fd (records already on disk stay put)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

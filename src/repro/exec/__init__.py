"""Parallel grid-execution engine: caching, journalling, fault tolerance.

The evaluation pipeline's bottleneck stage is the grid runner: the
paper's grid (schedulers x IQ sizes x mixes x thread counts) is
embarrassingly parallel, and identical grid points recur across figures.
This subsystem makes every sweep parallel, incremental, and — like the
paper's dispatch engine with its deadlock-avoidance buffer and watchdog
timer — guaranteed to make forward progress under faults:

* :mod:`repro.exec.jobs`    — :class:`SimJob`, a grid point as picklable,
  content-hashable data, and :class:`WorkJob`, the generic job kind
  that lets non-simulation workloads (mutation analysis) ride the same
  farm;
* :mod:`repro.exec.cache`   — :class:`ResultCache`, an on-disk
  content-addressed store with atomic writes, payload checksums and
  corrupt-entry quarantine;
* :mod:`repro.exec.journal` — :class:`RunJournal`, a crash-safe fsync'd
  transition log enabling exact resume of interrupted runs;
* :mod:`repro.exec.chaos`   — :class:`ChaosConfig`, seeded deterministic
  fault injection (worker kills/hangs, delivery faults, cache
  corruption) for testing all of the above;
* :mod:`repro.exec.pool`    — :func:`execute_jobs`, a forked worker farm
  with longest-job-first ordering, per-job timeouts, a heartbeat
  watchdog for hung workers, bounded retry and orphan reaping, falling
  back to in-process execution when ``jobs=1`` or the platform lacks
  ``fork``.

See ``docs/exec.md`` for architecture and the determinism guarantee,
``docs/robustness.md`` for the fault-tolerance contract.
"""

from repro.exec.cache import (
    DEFAULT_CACHE_DIR,
    SCHEMA_VERSION,
    CacheStats,
    ResultCache,
    VerifyReport,
    default_cache_dir,
)
from repro.exec.chaos import CHAOS_EXIT_CODE, ChaosConfig, ChaosError
from repro.exec.jobs import JobResult, SimJob, WorkJob, jobs_for_grid
from repro.exec.journal import (
    DEFAULT_JOURNAL_DIR,
    RunJournal,
    default_journal_dir,
    derive_run_id,
)
from repro.exec.ledger import JobLedger
from repro.exec.pool import (
    ExecProgress,
    ExecReport,
    ExecutionError,
    ExecutorConfig,
    JobFailure,
    execute_jobs,
    fork_available,
    live_worker_count,
)

__all__ = [
    "CHAOS_EXIT_CODE",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_JOURNAL_DIR",
    "SCHEMA_VERSION",
    "CacheStats",
    "ChaosConfig",
    "ChaosError",
    "ExecProgress",
    "ExecReport",
    "ExecutionError",
    "ExecutorConfig",
    "JobFailure",
    "JobLedger",
    "JobResult",
    "ResultCache",
    "RunJournal",
    "SimJob",
    "VerifyReport",
    "WorkJob",
    "default_cache_dir",
    "default_journal_dir",
    "derive_run_id",
    "execute_jobs",
    "fork_available",
    "jobs_for_grid",
    "live_worker_count",
]

"""Parallel grid-execution engine with a content-addressed result cache.

The evaluation pipeline's bottleneck stage is the grid runner: the
paper's grid (schedulers x IQ sizes x mixes x thread counts) is
embarrassingly parallel, and identical grid points recur across figures.
This subsystem makes every sweep both parallel and incremental:

* :mod:`repro.exec.jobs`  — :class:`SimJob`, a grid point as picklable,
  content-hashable data;
* :mod:`repro.exec.cache` — :class:`ResultCache`, an on-disk
  content-addressed store with atomic writes and self-invalidation;
* :mod:`repro.exec.pool`  — :func:`execute_jobs`, a forked worker farm
  with longest-job-first ordering, per-job timeouts and bounded retry,
  falling back to in-process execution when ``jobs=1`` or the platform
  lacks ``fork``.

See ``docs/exec.md`` for architecture, cache layout, invalidation rules
and the determinism guarantee.
"""

from repro.exec.cache import (
    DEFAULT_CACHE_DIR,
    SCHEMA_VERSION,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from repro.exec.jobs import JobResult, SimJob, jobs_for_grid
from repro.exec.pool import (
    ExecProgress,
    ExecReport,
    ExecutionError,
    ExecutorConfig,
    JobFailure,
    execute_jobs,
    fork_available,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SCHEMA_VERSION",
    "CacheStats",
    "ExecProgress",
    "ExecReport",
    "ExecutionError",
    "ExecutorConfig",
    "JobFailure",
    "JobResult",
    "ResultCache",
    "SimJob",
    "default_cache_dir",
    "execute_jobs",
    "fork_available",
    "jobs_for_grid",
]

"""Grid points as picklable, content-addressable jobs.

A :class:`SimJob` captures everything that determines one simulation's
outcome — the benchmarks tuple, the full :class:`MachineConfig`, the
instruction budget, the seed — as plain data. Two consequences:

* a job can be shipped to a worker process and executed there with a
  byte-identical result (the simulator is deterministic in exactly
  these inputs, see ``docs/exec.md``), and
* a job has a *content hash*: a SHA-256 digest over a canonical
  JSON encoding of its fields. The hash is insensitive to field
  declaration order (keys are sorted at every nesting level) and is the
  key under which :class:`repro.exec.cache.ResultCache` stores results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass

from repro.config.machine import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    MemoryConfig,
)
from repro.metrics.ipc import SimResult


@dataclass(frozen=True, slots=True)
class JobResult:
    """What one executed grid point produces."""

    result: SimResult
    #: Harmonic mean of weighted IPCs, present when the job was run
    #: ``with_fairness``.
    fairness: float | None = None


@dataclass(frozen=True, slots=True)
class SimJob:
    """One grid point of an evaluation sweep, as picklable data."""

    benchmarks: tuple[str, ...]
    config: MachineConfig
    max_insns: int = 20_000
    seed: int = 0
    max_cycles: int = 5_000_000
    warmup: int | None = None
    #: Also run the single-thread baselines and compute the paper's
    #: fairness metric. Part of the content hash: a cached plain result
    #: must not satisfy a fairness request.
    with_fairness: bool = False

    def __post_init__(self) -> None:
        # Normalise so hashing and pickling see one canonical form.
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))

    # ------------------------------------------------------------------
    # content addressing
    # ------------------------------------------------------------------
    def fingerprint_payload(self) -> dict[str, object]:
        """The job as a JSON-safe dict; the domain of the content hash."""
        return {
            "benchmarks": list(self.benchmarks),
            "config": dataclasses.asdict(self.config),
            "max_insns": self.max_insns,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "warmup": self.warmup,
            "with_fairness": self.with_fairness,
        }

    @classmethod
    def from_fingerprint(cls, payload: dict[str, object]) -> "SimJob":
        """Reconstruct a job from :meth:`fingerprint_payload` output.

        The run journal records each queued job's fingerprint so
        ``python -m repro.exec resume`` can rebuild and re-execute the
        incomplete remainder of an interrupted grid. Round-trip safety
        is test-enforced: the reconstructed job has the same content
        hash as the original.
        """
        return cls(
            benchmarks=tuple(str(b) for b in payload["benchmarks"]),
            config=config_from_dict(payload["config"]),
            max_insns=int(payload["max_insns"]),
            seed=int(payload["seed"]),
            max_cycles=int(payload["max_cycles"]),
            warmup=(None if payload["warmup"] is None
                    else int(payload["warmup"])),
            with_fairness=bool(payload["with_fairness"]),
        )

    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the job's content.

        Stable across processes, Python versions and dataclass field
        reordering: the payload is serialised with sorted keys and no
        insignificant whitespace before hashing.
        """
        return hash_payload(self.fingerprint_payload())

    # ------------------------------------------------------------------
    # scheduling + execution
    # ------------------------------------------------------------------
    def cost_estimate(self) -> int:
        """Relative wall-clock estimate for longest-job-first ordering.

        Simulation time grows with the per-thread budget and the number
        of contexts; a fairness job additionally runs one single-thread
        baseline per (distinct) benchmark.
        """
        threads = len(self.benchmarks)
        cost = self.max_insns * threads
        if self.with_fairness:
            cost += self.max_insns * len(set(self.benchmarks))
        return cost

    def describe(self) -> str:
        """One-line human identity for failure reports and progress."""
        return (f"{'+'.join(self.benchmarks)} @ "
                f"{self.config.scheduler}/iq{self.config.iq_size}")

    def run(self) -> JobResult:
        """Execute the grid point in the current process."""
        from repro.experiments.runner import (
            simulate_mix,
            simulate_mix_with_fairness,
        )

        if self.with_fairness:
            result, fairness = simulate_mix_with_fairness(
                self.benchmarks, self.config, self.max_insns, self.seed
            )
            return JobResult(result=result, fairness=fairness)
        result = simulate_mix(
            self.benchmarks, self.config, self.max_insns, self.seed,
            self.max_cycles, self.warmup,
        )
        return JobResult(result=result)


@dataclass(frozen=True, slots=True)
class WorkJob:
    """An arbitrary unit of work shipped through the grid machinery.

    The executor only ever needs four things from a job — a content
    hash, a cost estimate, a ``run()`` and a ``describe()`` — so
    non-simulation workloads (mutation analysis, batch linting) reuse
    the whole farm: LJF scheduling, per-job timeout, the hung-worker
    watchdog, retries, journalling. The work itself is named by
    ``entry`` (``"package.module:function"``); the function receives
    ``payload`` (a JSON-safe dict — RPR012's pickle-safety rules apply)
    and should return a JSON-safe value so the journal can embed it.

    Results are *not* stored in the :class:`~repro.exec.cache
    .ResultCache` (its schema is :class:`SimJob`-shaped); callers that
    want warm re-runs keep their own content-addressed store keyed by
    :meth:`content_hash`.
    """

    entry: str
    payload: dict
    #: Relative wall-clock estimate for longest-job-first ordering.
    cost: int = 1
    #: Discriminator recorded in the fingerprint so the journal can
    #: reconstruct the right job class on resume.
    kind: str = "work"

    def fingerprint_payload(self) -> dict[str, object]:
        """The job as a JSON-safe dict; the domain of the content hash."""
        return {
            "kind": self.kind,
            "entry": self.entry,
            "payload": self.payload,
            "cost": self.cost,
        }

    @classmethod
    def from_fingerprint(cls, payload: dict[str, object]) -> "WorkJob":
        """Reconstruct a job from :meth:`fingerprint_payload` output."""
        return cls(
            entry=str(payload["entry"]),
            payload=dict(payload["payload"]),
            cost=int(payload.get("cost", 1)),
            kind=str(payload.get("kind", "work")),
        )

    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the job's content."""
        return hash_payload(self.fingerprint_payload())

    def cost_estimate(self) -> int:
        return self.cost

    def describe(self) -> str:
        return f"{self.kind} {self.entry}"

    def run(self) -> object:
        """Resolve ``entry`` and invoke it with the payload.

        A ``None`` return is coerced to ``{}``: the executor uses
        ``None`` result slots as its failed-job sentinel, so a job must
        never *succeed* with one.
        """
        import importlib

        module_name, sep, func_name = self.entry.partition(":")
        if not sep or not module_name or not func_name:
            raise ValueError(
                f"WorkJob entry must be 'module:function', got {self.entry!r}"
            )
        fn = getattr(importlib.import_module(module_name), func_name)
        out = fn(dict(self.payload))
        return {} if out is None else out


def config_from_dict(raw: object) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from ``dataclasses.asdict`` form.

    Inverse of the ``config`` leg of :meth:`SimJob.fingerprint_payload`;
    nested cache/branch-predictor dataclasses are reconstructed so the
    result validates itself exactly like a hand-built config.
    """
    if not isinstance(raw, dict):
        raise TypeError("config payload is not an object")
    d = dict(raw)
    mem = dict(d.pop("mem"))
    d["mem"] = MemoryConfig(
        l1i=CacheConfig(**mem.pop("l1i")),
        l1d=CacheConfig(**mem.pop("l1d")),
        l2=CacheConfig(**mem.pop("l2")),
        **mem,
    )
    d["bp"] = BranchPredictorConfig(**d.pop("bp"))
    return MachineConfig(**d)


def hash_payload(payload: dict[str, object]) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``."""
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def jobs_for_grid(mixes: Sequence, base_config: MachineConfig,
                  schedulers: Sequence[str], iq_sizes: Sequence[int],
                  max_insns: int, seed: int,
                  with_fairness: bool = False) -> list[tuple[tuple, SimJob]]:
    """Expand a (scheduler, IQ size, mix) grid into keyed jobs.

    Returns ``[((scheduler, iq_size, mix_name), SimJob), ...]`` in the
    same deterministic order the serial sweep historically used.
    """
    out: list[tuple[tuple, SimJob]] = []
    for scheduler in schedulers:
        for iq_size in iq_sizes:
            cfg = base_config.replace(scheduler=scheduler, iq_size=iq_size)
            for mix in mixes:
                key = (scheduler, iq_size, mix.name)
                out.append((key, SimJob(
                    benchmarks=tuple(mix.benchmarks),
                    config=cfg,
                    max_insns=max_insns,
                    seed=seed,
                    with_fairness=with_fairness,
                )))
    return out

"""Per-thread rename map table (logical -> physical register)."""

from __future__ import annotations

from repro.isa.registers import NUM_LOGICAL_REGS, is_zero_reg

#: Physical-register id meaning "no dependence" (zero registers,
#: immediates). Always ready.
NO_PREG = -1


class RenameMapTable:
    """Architectural-to-physical mapping for one SMT thread.

    Zero registers are pinned to :data:`NO_PREG` and may not be remapped.
    The core's rename loop relies on that pinning — and on ``NO_REG``
    (-1) indexing the last entry, the FP zero register — to look up
    source operands with a single unconditional ``_map[src]``.
    """

    __slots__ = ("_map",)

    def __init__(self) -> None:
        self._map: list[int] = [NO_PREG] * NUM_LOGICAL_REGS

    def lookup(self, logical: int) -> int:
        """Current physical mapping of ``logical`` (``NO_PREG`` if none)."""
        if logical < 0:
            return NO_PREG
        return self._map[logical]

    def remap(self, logical: int, phys: int) -> int:
        """Point ``logical`` at ``phys``; returns the previous mapping."""
        if is_zero_reg(logical):
            raise ValueError(f"cannot remap zero register {logical}")
        old = self._map[logical]
        self._map[logical] = phys
        return old

    def mappings(self) -> list[int]:
        """Snapshot of the full table (for tests and flush logic)."""
        return list(self._map)

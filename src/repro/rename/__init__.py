"""Register renaming: per-thread map tables, shared physical registers."""

from repro.rename.free_list import FreeList
from repro.rename.map_table import RenameMapTable
from repro.rename.renamer import RenameUnit

__all__ = ["FreeList", "RenameMapTable", "RenameUnit"]

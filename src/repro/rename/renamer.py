"""The rename unit: shared physical register file + per-thread tables.

Matches the paper's SMT model: "the threads share ... the pool of
physical registers ... but have separate rename tables". Renaming is
always in program order within a thread — the paper's out-of-order
*dispatch* explicitly keeps renaming in order, which is what makes it
deadlock-safe for dependences.
"""

from __future__ import annotations

from repro.config.machine import MachineConfig
from repro.isa.registers import FP_BASE, NO_REG, is_zero_reg
from repro.rename.free_list import FreeList
from repro.rename.map_table import NO_PREG, RenameMapTable


class RenameUnit:
    """Allocates physical registers and tracks operand readiness.

    The ready scoreboard is shared with the issue queue: entry ``p`` of
    :attr:`ready` is 1 when physical register ``p`` holds its final
    value. ``NO_PREG`` sources are ready by definition.
    """

    __slots__ = ("cfg", "num_threads", "int_free", "fp_free", "maps", "ready")

    def __init__(self, cfg: MachineConfig, num_threads: int) -> None:
        self.cfg = cfg
        self.num_threads = num_threads
        total = cfg.int_phys_regs + cfg.fp_phys_regs
        self.int_free = FreeList(0, cfg.int_phys_regs)
        self.fp_free = FreeList(cfg.int_phys_regs, cfg.fp_phys_regs)
        self.ready = bytearray(total)
        self.maps = [RenameMapTable() for _ in range(num_threads)]
        self._install_initial_mappings()

    def _install_initial_mappings(self) -> None:
        """Give every writable logical register an initial (ready) mapping."""
        from repro.isa.registers import NUM_LOGICAL_REGS

        needed_int = sum(
            1 for r in range(FP_BASE) if not is_zero_reg(r)
        ) * self.num_threads
        needed_fp = sum(
            1 for r in range(FP_BASE, NUM_LOGICAL_REGS) if not is_zero_reg(r)
        ) * self.num_threads
        if needed_int >= self.cfg.int_phys_regs:
            raise ValueError(
                f"{self.cfg.int_phys_regs} integer physical registers cannot "
                f"back {self.num_threads} threads ({needed_int} architectural "
                "mappings, plus in-flight headroom)"
            )
        if needed_fp >= self.cfg.fp_phys_regs:
            raise ValueError(
                f"{self.cfg.fp_phys_regs} FP physical registers cannot back "
                f"{self.num_threads} threads ({needed_fp} architectural "
                "mappings, plus in-flight headroom)"
            )
        for table in self.maps:
            for logical in range(NUM_LOGICAL_REGS):
                if is_zero_reg(logical):
                    continue
                pool = self.fp_free if logical >= FP_BASE else self.int_free
                phys = pool.allocate()
                table.remap(logical, phys)
                self.ready[phys] = 1

    # ------------------------------------------------------------------
    def can_rename(self, tid: int, dest: int) -> bool:
        """True when a destination register (if any) can be allocated."""
        if dest == NO_REG or is_zero_reg(dest):
            return True
        pool = self.fp_free if dest >= FP_BASE else self.int_free
        return len(pool) > 0

    def rename(self, tid: int, dest: int, src1: int, src2: int,
               ) -> tuple[int, int, int, int]:
        """Rename one instruction of thread ``tid``.

        Returns ``(dest_p, old_dest_p, src1_p, src2_p)``. The new
        destination register is marked not-ready. The caller must check
        :meth:`can_rename` first; running out of registers here raises.
        """
        table = self.maps[tid]
        src1_p = NO_PREG if src1 == NO_REG or is_zero_reg(src1) \
            else table.lookup(src1)
        src2_p = NO_PREG if src2 == NO_REG or is_zero_reg(src2) \
            else table.lookup(src2)
        if dest == NO_REG or is_zero_reg(dest):
            return NO_PREG, NO_PREG, src1_p, src2_p
        pool = self.fp_free if dest >= FP_BASE else self.int_free
        dest_p = pool.allocate()
        self.ready[dest_p] = 0
        old = table.remap(dest, dest_p)
        return dest_p, old, src1_p, src2_p

    # ------------------------------------------------------------------
    def is_ready(self, phys: int) -> bool:
        """Readiness of a physical register (``NO_PREG`` is ready)."""
        return phys < 0 or bool(self.ready[phys])

    def mark_ready(self, phys: int) -> None:
        """Set the ready bit (writeback)."""
        if phys >= 0:
            self.ready[phys] = 1

    def release(self, phys: int) -> None:
        """Return a physical register to its free list (commit time)."""
        if phys < 0:
            return
        pool = self.fp_free if self.fp_free.owns(phys) else self.int_free
        pool.release(phys)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reinitialise all state (used by the watchdog pipeline flush)."""
        total = self.cfg.int_phys_regs + self.cfg.fp_phys_regs
        self.int_free = FreeList(0, self.cfg.int_phys_regs)
        self.fp_free = FreeList(self.cfg.int_phys_regs, self.cfg.fp_phys_regs)
        self.ready = bytearray(total)
        self.maps = [RenameMapTable() for _ in range(self.num_threads)]
        self._install_initial_mappings()

"""Free list of physical registers (one per register class)."""

from __future__ import annotations

from collections import deque


class FreeList:
    """FIFO free list over a contiguous range of physical registers."""

    __slots__ = ("_free", "_base", "_limit")

    def __init__(self, base: int, count: int) -> None:
        if count <= 0:
            raise ValueError(f"free list needs at least one register, got {count}")
        self._base = base
        self._limit = base + count
        self._free: deque[int] = deque(range(base, base + count))

    def __len__(self) -> int:
        return len(self._free)

    @property
    def capacity(self) -> int:
        """Total registers managed (free + allocated)."""
        return self._limit - self._base

    def allocate(self) -> int:
        """Pop a free physical register; raises ``IndexError`` when empty."""
        return self._free.popleft()

    def release(self, reg: int) -> None:
        """Return a register to the pool."""
        if not self._base <= reg < self._limit:
            raise ValueError(
                f"register {reg} outside pool [{self._base}, {self._limit})"
            )
        self._free.append(reg)

    def owns(self, reg: int) -> bool:
        """True when ``reg`` belongs to this pool's range."""
        return self._base <= reg < self._limit

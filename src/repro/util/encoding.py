"""Byte-stable JSON encoding shared by every committed artifact.

The repository commits machine-written JSON (the perf baseline, the
flow-analysis baseline, ``--json`` lint output piped into diffs) and
relies on *byte* stability: re-encoding unchanged data must produce
the identical file, or every refresh churns the diff and the CI gates
that compare against committed baselines turn flaky.

:func:`stable_dumps` is the single canonical form — sorted keys,
two-space indent, trailing newline — used by ``repro.perf.bench``
(``BENCH_sim_speed.json``), the ``repro.analysis`` lint/flow ``--json``
outputs and ``results/flow_baseline.json``. Callers are responsible
for normalising value *types* first (``int()``/``float()`` coercion,
fixed rounding), as ``repro.exec.cache.encode_job_result`` and
``repro.perf.bench.encode_bench_result`` do; this function fixes the
serialisation layer on top.
"""

from __future__ import annotations

import json


def stable_dumps(payload: object) -> str:
    """Canonical JSON text for committed artifacts (ends in a newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"

"""Small shared utilities: deterministic RNG derivation, validation and
byte-stable JSON encoding."""

from repro.util.encoding import stable_dumps
from repro.util.rng import derive_seed, make_rng
from repro.util.validate import check_positive, check_power_of_two, check_range

__all__ = [
    "derive_seed",
    "make_rng",
    "check_positive",
    "check_power_of_two",
    "check_range",
    "stable_dumps",
]

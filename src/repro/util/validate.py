"""Lightweight argument validation helpers used by configuration objects."""

from __future__ import annotations


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a power of two, got {value!r}")


def check_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")

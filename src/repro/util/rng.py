"""Deterministic random-number derivation.

Every stochastic component of the simulator (trace generation, address
streams, branch outcome processes) derives its generator from a *root seed*
plus a string label, so that

* the same (seed, benchmark, thread) triple always produces the identical
  instruction stream, and
* two threads running the same benchmark in one mix produce *different*
  streams (they are distinct SimPoint regions in spirit).
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``root`` and any hashable labels.

    Uses BLAKE2b over a canonical encoding, so the derivation is stable
    across processes and Python versions (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(root).to_bytes(8, "little", signed=False))
    for label in labels:
        h.update(repr(label).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") & _MASK64


def make_rng(root: int, *labels: object) -> np.random.Generator:
    """Create a NumPy generator seeded deterministically from labels."""
    return np.random.default_rng(derive_seed(root, *labels))

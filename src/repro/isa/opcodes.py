"""Operation classes and functional-unit latency table.

Latencies and unit counts follow Table 1 of the paper:

========================  =====  ========  ==============
Unit                      count  latency   issue interval
========================  =====  ========  ==============
Int Add                      8       1            1
Int Mult / Div               4     3 / 20       1 / 19
Load/Store port              4       2            1
FP Add                       8       2            1
FP Mult / Div / Sqrt         4   4 / 12 / 24  1 / 12 / 24
========================  =====  ========  ==============

Loads pay the 2-cycle port latency for an L1 hit; cache misses extend the
completion time by the hierarchy's miss penalty (see
:mod:`repro.memory.hierarchy`). Branches execute on the integer adders.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Dynamic-instruction operation classes understood by the scheduler."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    LOAD = 3
    STORE = 4
    FPADD = 5
    FPMUL = 6
    FPDIV = 7
    FPSQRT = 8
    BRANCH = 9
    NOP = 10


class FUClass(enum.IntEnum):
    """Functional-unit pools (Table 1)."""

    INT_ALU = 0
    INT_MULDIV = 1
    MEM_PORT = 2
    FP_ADD = 3
    FP_MULDIV = 4


#: op class -> (functional unit pool, execution latency, issue interval).
#: The issue interval is the number of cycles the unit is busy before it
#: can accept another operation (Table 1's ``total/issue`` notation).
FU_ASSIGNMENT: dict[OpClass, tuple[FUClass, int, int]] = {
    OpClass.IALU: (FUClass.INT_ALU, 1, 1),
    OpClass.BRANCH: (FUClass.INT_ALU, 1, 1),
    OpClass.IMUL: (FUClass.INT_MULDIV, 3, 1),
    OpClass.IDIV: (FUClass.INT_MULDIV, 20, 19),
    OpClass.LOAD: (FUClass.MEM_PORT, 2, 1),
    OpClass.STORE: (FUClass.MEM_PORT, 2, 1),
    OpClass.FPADD: (FUClass.FP_ADD, 2, 1),
    OpClass.FPMUL: (FUClass.FP_MULDIV, 4, 1),
    OpClass.FPDIV: (FUClass.FP_MULDIV, 12, 12),
    OpClass.FPSQRT: (FUClass.FP_MULDIV, 24, 24),
    OpClass.NOP: (FUClass.INT_ALU, 1, 1),
}

#: Flat int-indexed views of :data:`FU_ASSIGNMENT` for the issue/execute
#: hot path. ``DynInstr.op`` is stored as a plain ``int``; indexing these
#: tuples avoids re-entering the ``OpClass`` enum constructor (a Python
#: function call) for every issued instruction.
OP_FU: tuple[int, ...] = tuple(
    int(FU_ASSIGNMENT[OpClass(op)][0]) for op in range(len(OpClass))
)
OP_LATENCY: tuple[int, ...] = tuple(
    FU_ASSIGNMENT[OpClass(op)][1] for op in range(len(OpClass))
)
OP_INTERVAL: tuple[int, ...] = tuple(
    FU_ASSIGNMENT[OpClass(op)][2] for op in range(len(OpClass))
)

#: Ops that write a floating-point destination register.
FP_PRODUCERS = frozenset(
    {OpClass.FPADD, OpClass.FPMUL, OpClass.FPDIV, OpClass.FPSQRT}
)

#: Ops that reference data memory.
MEM_OPS = frozenset({OpClass.LOAD, OpClass.STORE})


def fu_for_op(op: OpClass) -> FUClass:
    """Functional-unit pool executing ``op``."""
    return FU_ASSIGNMENT[op][0]


def execution_latency(op: OpClass) -> int:
    """Base execution latency of ``op`` in cycles (excludes cache misses)."""
    return FU_ASSIGNMENT[op][1]


def issue_interval(op: OpClass) -> int:
    """Cycles the functional unit stays busy after accepting ``op``."""
    return FU_ASSIGNMENT[op][2]

"""Trace instruction record.

``TraceInstruction`` is the *architectural* view produced by the trace
generator; the pipeline wraps it into a dynamic instruction
(:class:`repro.pipeline.dynamic.DynInstr`) at fetch time. Keeping the two
separate lets a trace be replayed through many machine configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG


@dataclass(frozen=True, slots=True)
class TraceInstruction:
    """One architectural instruction in a benchmark trace.

    Attributes:
        op: operation class.
        dest: destination logical register, or ``NO_REG``.
        src1: first source logical register, or ``NO_REG``.
        src2: second source logical register, or ``NO_REG``.
        pc: instruction address (used by icache and branch predictor).
        addr: effective address for loads/stores, else 0.
        taken: architectural branch outcome (branches only).
        target: architectural branch target (branches only).
    """

    op: OpClass
    dest: int = NO_REG
    src1: int = NO_REG
    src2: int = NO_REG
    pc: int = 0
    addr: int = 0
    taken: bool = False
    target: int = 0

    @property
    def is_branch(self) -> bool:
        """True when the instruction is a control transfer."""
        return self.op is OpClass.BRANCH

    @property
    def is_load(self) -> bool:
        """True for data-memory reads."""
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for data-memory writes."""
        return self.op is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.op is OpClass.LOAD or self.op is OpClass.STORE

    def num_reg_sources(self) -> int:
        """Number of true register source operands (zero regs excluded)."""
        from repro.isa.registers import is_zero_reg

        n = 0
        if self.src1 != NO_REG and not is_zero_reg(self.src1):
            n += 1
        if self.src2 != NO_REG and not is_zero_reg(self.src2):
            n += 1
        return n

"""Logical register model.

We model an Alpha-like register file: 32 integer registers (0–31, with
r31 hard-wired to zero) and 32 floating-point registers (32–63, with f31
= index 63 hard-wired to zero). Zero registers carry no dependences and
are never renamed — the trace generator uses them for instructions with
fewer than two register sources.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: First floating-point logical register index.
FP_BASE = NUM_INT_REGS

#: Hard-wired zero registers (Alpha r31 / f31).
REG_INT_ZERO = NUM_INT_REGS - 1
REG_FP_ZERO = NUM_LOGICAL_REGS - 1

#: Sentinel for "no register operand".
NO_REG = -1


def is_fp_reg(reg: int) -> bool:
    """True when ``reg`` names a floating-point logical register."""
    return reg >= FP_BASE


def is_zero_reg(reg: int) -> bool:
    """True for the hard-wired zero registers (never renamed)."""
    return reg == REG_INT_ZERO or reg == REG_FP_ZERO


def reg_class(reg: int) -> int:
    """0 for integer registers, 1 for floating-point registers."""
    return 1 if reg >= FP_BASE else 0

"""ISA model: operation classes, functional-unit latencies, registers.

The simulator is trace driven, so the "ISA" is the minimal abstract
machine the scheduler cares about: each instruction has an operation
class (which selects a functional unit and a latency), up to two register
source operands, at most one register destination, and — for loads,
stores and branches — the extra trace payload (effective address, branch
outcome/target).
"""

from repro.isa.opcodes import (
    FU_ASSIGNMENT,
    FUClass,
    OpClass,
    execution_latency,
    fu_for_op,
    issue_interval,
)
from repro.isa.instruction import TraceInstruction
from repro.isa.registers import (
    FP_BASE,
    NUM_LOGICAL_REGS,
    REG_FP_ZERO,
    REG_INT_ZERO,
    is_fp_reg,
    is_zero_reg,
    reg_class,
)

__all__ = [
    "OpClass",
    "FUClass",
    "FU_ASSIGNMENT",
    "fu_for_op",
    "execution_latency",
    "issue_interval",
    "TraceInstruction",
    "NUM_LOGICAL_REGS",
    "FP_BASE",
    "REG_INT_ZERO",
    "REG_FP_ZERO",
    "is_fp_reg",
    "is_zero_reg",
    "reg_class",
]

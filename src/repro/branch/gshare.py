"""gshare direction predictor (McFarling-style).

A table of 2-bit saturating counters indexed by PC XOR global history.
The paper's configuration is a per-thread 2K-entry table with 10 bits of
global history (Table 1).
"""

from __future__ import annotations


class GShare:
    """2-bit saturating-counter gshare predictor.

    The global history register is updated *speculatively* at predict
    time with the predicted direction and repaired with the architectural
    outcome at update time (trace-driven simulation resolves every branch,
    so the repair is exact).

    :meth:`predict` returns ``(taken, token)``; the opaque token must be
    passed back to :meth:`update` so the trained entry is the one the
    prediction actually read, even with many branches in flight.
    """

    __slots__ = ("_table", "_mask", "_history", "_history_mask", "lookups", "hits")

    def __init__(self, entries: int = 2048, history_bits: int = 10) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if not 1 <= history_bits <= 30:
            raise ValueError(f"history_bits out of range: {history_bits}")
        self._table = bytearray([2] * entries)  # init weakly taken
        self._mask = entries - 1
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> tuple[bool, int]:
        """Predict the branch at ``pc``; returns ``(taken, token)``."""
        idx = ((pc >> 2) ^ self._history) & self._mask
        taken = self._table[idx] >= 2
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.lookups += 1
        return taken, idx

    def update(self, token: int, taken: bool, predicted: bool) -> None:
        """Train the entry named by ``token`` and repair history.

        ``predicted`` must be the direction returned by the matching
        :meth:`predict` call.
        """
        ctr = self._table[token]
        if taken:
            if ctr < 3:
                self._table[token] = ctr + 1
        elif ctr > 0:
            self._table[token] = ctr - 1
        if taken == predicted:
            self.hits += 1
        else:
            # The youngest speculative history bit is wrong; overwrite it.
            # (Older in-flight speculative bits, if any, were already shifted
            # further up and are repaired by their own updates.)
            self._history = (
                (self._history & ~1) | int(taken)
            ) & self._history_mask

    # ------------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        """Fraction of predictions that matched the outcome so far."""
        return self.hits / self.lookups if self.lookups else 0.0

"""Branch prediction substrate: per-thread gshare + shared BTB."""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GShare
from repro.branch.predictor import BranchPrediction, ThreadPredictor

__all__ = ["GShare", "BranchTargetBuffer", "ThreadPredictor", "BranchPrediction"]

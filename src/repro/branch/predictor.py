"""Combined per-thread branch predictor used by the fetch unit.

Each SMT thread owns a private gshare table (per Table 1) while the BTB
is shared by convention configurable at construction; the paper does not
state BTB sharing, so we default to one BTB per thread as well, matching
"each thread also has its own branch predictor".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GShare
from repro.config.machine import BranchPredictorConfig


@dataclass(frozen=True, slots=True)
class BranchPrediction:
    """Outcome of a fetch-time branch lookup.

    ``mispredicted`` already folds in BTB behaviour: a branch predicted
    (and actually) taken whose target is absent from the BTB cannot
    redirect fetch, which costs the same bubble as a direction
    misprediction in this front end.
    """

    pred_taken: bool
    pred_target: int | None
    mispredicted: bool
    gshare_token: int


class ThreadPredictor:
    """gshare + BTB wrapper exposing trace-driven predict/resolve."""

    __slots__ = ("gshare", "btb", "branches", "mispredicts")

    def __init__(self, cfg: BranchPredictorConfig) -> None:
        self.gshare = GShare(cfg.gshare_entries, cfg.history_bits)
        self.btb = BranchTargetBuffer(cfg.btb_entries, cfg.btb_assoc)
        self.branches = 0
        self.mispredicts = 0

    # ------------------------------------------------------------------
    def predict(self, pc: int, taken: bool, target: int) -> BranchPrediction:
        """Predict the dynamic branch at ``pc`` whose architectural
        outcome is ``taken``/``target`` (known from the trace).

        Returns the prediction; statistics are updated immediately since
        the architectural outcome is available in a trace-driven model.
        """
        pred_taken, token = self.gshare.predict(pc)
        pred_target = self.btb.lookup(pc) if pred_taken else None
        wrong_direction = pred_taken != taken
        wrong_target = taken and pred_taken and (
            pred_target is None or pred_target != target
        )
        mispredicted = wrong_direction or wrong_target
        self.branches += 1
        if mispredicted:
            self.mispredicts += 1
        return BranchPrediction(pred_taken, pred_target, mispredicted, token)

    def resolve(self, pc: int, taken: bool, target: int,
                prediction: BranchPrediction) -> None:
        """Train predictor state when the branch executes."""
        self.gshare.update(prediction.gshare_token, taken, prediction.pred_taken)
        if taken:
            self.btb.install(pc, target)

    # ------------------------------------------------------------------
    @property
    def mispredict_rate(self) -> float:
        """Fraction of dynamic branches mispredicted so far."""
        return self.mispredicts / self.branches if self.branches else 0.0

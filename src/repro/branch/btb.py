"""Branch target buffer: set-associative tag/target store with LRU."""

from __future__ import annotations


class BranchTargetBuffer:
    """A classic BTB (paper: 2048 entries, 2-way set-associative).

    ``lookup`` returns the stored target for a PC, or ``None`` on a miss;
    a taken branch that misses the BTB cannot be redirected at fetch even
    if the direction predictor says taken, which the front end charges as
    a misprediction-like bubble.
    """

    __slots__ = ("_sets", "_num_sets", "_set_bits", "_assoc", "lookups", "hits")

    def __init__(self, entries: int = 2048, assoc: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if assoc <= 0 or entries % assoc:
            raise ValueError(f"assoc {assoc} must divide entries {entries}")
        self._num_sets = entries // assoc
        self._set_bits = self._num_sets.bit_length() - 1
        self._assoc = assoc
        # Each set is an LRU-ordered list of (tag, target); index 0 = MRU.
        self._sets: list[list[tuple[int, int]]] = [
            [] for _ in range(self._num_sets)
        ]
        self.lookups = 0
        self.hits = 0

    @property
    def assoc(self) -> int:
        """Ways per set."""
        return self._assoc

    def _locate(self, pc: int) -> tuple[list[tuple[int, int]], int]:
        word = pc >> 2
        return self._sets[word & (self._num_sets - 1)], word >> self._set_bits

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target for ``pc`` or ``None`` on miss."""
        self.lookups += 1
        ways, tag = self._locate(pc)
        for i, (t, target) in enumerate(ways):
            if t == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                self.hits += 1
                return target
        return None

    def install(self, pc: int, target: int) -> None:
        """Install/refresh the target of the (taken) branch at ``pc``."""
        ways, tag = self._locate(pc)
        for i, (t, _) in enumerate(ways):
            if t == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self._assoc:
            ways.pop()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0

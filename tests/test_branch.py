"""Branch predictor tests: gshare, BTB, combined thread predictor."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GShare
from repro.branch.predictor import ThreadPredictor
from repro.config.machine import BranchPredictorConfig


class TestGShare:
    def test_initial_state_weakly_taken(self):
        g = GShare(64, 4)
        taken, _ = g.predict(0)
        assert taken is True  # counters init to 2 (weakly taken)

    def test_learns_always_taken(self):
        g = GShare(64, 4)
        for _ in range(50):
            pred, tok = g.predict(0x40)
            g.update(tok, True, pred)
        pred, _ = g.predict(0x40)
        assert pred is True
        assert g.accuracy > 0.9

    def test_learns_always_not_taken(self):
        g = GShare(64, 4)
        for _ in range(50):
            pred, tok = g.predict(0x40)
            g.update(tok, False, pred)
        pred, _ = g.predict(0x40)
        assert pred is False

    def test_learns_alternating_pattern_through_history(self):
        """T,N,T,N... is perfectly predictable once history trains."""
        g = GShare(1024, 8)
        outcome = True
        correct = 0
        for i in range(400):
            pred, tok = g.predict(0x100)
            if i >= 200:
                correct += pred == outcome
            g.update(tok, outcome, pred)
            outcome = not outcome
        assert correct / 200 > 0.95

    def test_counter_saturation(self):
        g = GShare(16, 2)
        for _ in range(10):
            pred, tok = g.predict(4)
            g.update(tok, True, pred)
        # One not-taken cannot immediately flip the prediction.
        pred, tok = g.predict(4)
        g.update(tok, False, pred)
        pred, _ = g.predict(4)
        assert pred is True

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            GShare(100, 4)
        with pytest.raises(ValueError):
            GShare(64, 0)

    def test_accuracy_counts(self):
        g = GShare(64, 4)
        pred, tok = g.predict(0)
        g.update(tok, pred, pred)
        assert g.lookups == 1 and g.hits == 1
        pred, tok = g.predict(0)
        g.update(tok, not pred, pred)
        assert g.lookups == 2 and g.hits == 1


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 2)
        assert btb.lookup(0x40) is None
        btb.install(0x40, 0x1000)
        assert btb.lookup(0x40) == 0x1000

    def test_update_existing_target(self):
        btb = BranchTargetBuffer(64, 2)
        btb.install(0x40, 0x1000)
        btb.install(0x40, 0x2000)
        assert btb.lookup(0x40) == 0x2000

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
        num_sets = 4
        # Three PCs mapping to the same set: evicts the least recent.
        pcs = [((i * num_sets) << 2) for i in range(3)]
        btb.install(pcs[0], 1)
        btb.install(pcs[1], 2)
        assert btb.lookup(pcs[0]) == 1  # refresh pc0 -> pc1 becomes LRU
        btb.install(pcs[2], 3)
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[2]) == 3

    def test_distinct_sets_do_not_interfere(self):
        btb = BranchTargetBuffer(8, 2)
        btb.install(0 << 2, 10)
        btb.install(1 << 2, 11)
        btb.install(2 << 2, 12)
        assert btb.lookup(0 << 2) == 10
        assert btb.lookup(1 << 2) == 11

    def test_hit_rate(self):
        btb = BranchTargetBuffer(64, 2)
        btb.lookup(0)
        btb.install(0, 4)
        btb.lookup(0)
        assert btb.hit_rate == 0.5

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(63, 2)
        with pytest.raises(ValueError):
            BranchTargetBuffer(64, 3)


class TestThreadPredictor:
    def _predictor(self):
        return ThreadPredictor(BranchPredictorConfig(
            gshare_entries=256, history_bits=6, btb_entries=64, btb_assoc=2
        ))

    def test_correct_prediction_after_training(self):
        p = self._predictor()
        for _ in range(60):
            pred = p.predict(0x80, True, 0x400)
            p.resolve(0x80, True, 0x400, pred)
        pred = p.predict(0x80, True, 0x400)
        assert not pred.mispredicted

    def test_taken_branch_with_cold_btb_counts_as_mispredict(self):
        p = self._predictor()
        # Train direction only at a different PC so BTB stays cold for
        # the probe PC... instead: first dynamic instance of a taken
        # branch mispredicts either by direction or by missing target.
        pred = p.predict(0x80, True, 0x400)
        assert pred.mispredicted  # weakly-taken direction but BTB miss

    def test_not_taken_needs_no_btb(self):
        p = self._predictor()
        for _ in range(40):
            pred = p.predict(0x80, False, 0)
            p.resolve(0x80, False, 0, pred)
        pred = p.predict(0x80, False, 0)
        assert not pred.mispredicted

    def test_wrong_target_is_mispredict(self):
        p = self._predictor()
        for _ in range(40):
            pred = p.predict(0x80, True, 0x400)
            p.resolve(0x80, True, 0x400, pred)
        pred = p.predict(0x80, True, 0x800)  # same branch, new target
        assert pred.mispredicted

    def test_mispredict_rate_counting(self):
        p = self._predictor()
        pred = p.predict(0x80, True, 0x400)
        assert p.branches == 1
        assert p.mispredicts == (1 if pred.mispredicted else 0)
        assert 0.0 <= p.mispredict_rate <= 1.0

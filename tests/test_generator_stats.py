"""Statistical-property tests of the trace generator's dataflow model.

These verify the properties the calibration relies on (DESIGN.md §8):
strand independence, dependence distances, two-source rates, branch
site structure.
"""

import statistics

from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG
from repro.trace.generator import generate_trace
from repro.trace.profiles import get_profile


def last_writer_distances(trace, max_n=20000):
    """Distance (in instructions) from each consumer to the most recent
    write of its first source register."""
    last_write = {}
    distances = []
    n = min(len(trace), max_n)
    for i in range(n):
        src = trace.src1[i]
        if src != NO_REG and src in last_write:
            distances.append(i - last_write[src])
        if trace.dest[i] != NO_REG:
            last_write[trace.dest[i]] = i
    return distances


class TestDependenceStructure:
    def test_low_ilp_has_shorter_distances_than_high(self):
        low = statistics.median(
            last_writer_distances(generate_trace("parser", 20000, 0)))
        high = statistics.median(
            last_writer_distances(generate_trace("gzip", 20000, 0)))
        assert low < high

    def test_distances_scale_with_dep_mean(self):
        d_parser = statistics.mean(
            last_writer_distances(generate_trace("parser", 20000, 0)))
        d_mgrid = statistics.mean(
            last_writer_distances(generate_trace("mgrid", 20000, 0)))
        assert d_mgrid > d_parser

    def test_two_source_instructions_exist_in_volume(self):
        """NDIs require two distinct register sources; the generator
        must produce plenty of candidates."""
        tr = generate_trace("equake", 20000, 0)
        two_src = sum(
            1 for i in range(len(tr))
            if tr.src1[i] != NO_REG and tr.src2[i] != NO_REG
            and tr.src1[i] != tr.src2[i]
        )
        assert two_src / len(tr) > 0.10

    def test_dependence_free_instructions_exist(self):
        """Far/immediate operands: some instructions must reach dispatch
        with no register dependences at all (instant DIs)."""
        tr = generate_trace("gzip", 20000, 0)
        free = sum(
            1 for i in range(len(tr))
            if tr.src1[i] == NO_REG and tr.src2[i] == NO_REG
        )
        assert free / len(tr) > 0.05


class TestBranchStructure:
    def test_static_site_count_is_bounded(self):
        """Branch PCs must recur at a fixed set of sites small enough
        for a 2K-entry gshare to learn."""
        tr = generate_trace("gzip", 50000, 0)
        sites = {
            tr.pc[i] for i in range(len(tr))
            if tr.op[i] == int(OpClass.BRANCH)
        }
        assert 10 < len(sites) < 2048

    def test_taken_targets_are_stable_per_site(self):
        """The BTB model requires one target per static branch."""
        tr = generate_trace("gcc", 50000, 0)
        targets = {}
        for i in range(len(tr)):
            if tr.op[i] == int(OpClass.BRANCH) and tr.taken[i]:
                prev = targets.setdefault(tr.pc[i], tr.target[i])
                assert prev == tr.target[i]

    def test_taken_fraction_moderate(self):
        tr = generate_trace("gzip", 50000, 0)
        taken = [tr.taken[i] for i in range(len(tr))
                 if tr.op[i] == int(OpClass.BRANCH)]
        frac = sum(taken) / len(taken)
        assert 0.1 < frac < 0.8

    def test_backward_taken_branches_exist(self):
        """Loop latches: some taken branches must jump backward."""
        tr = generate_trace("gzip", 50000, 0)
        backward = sum(
            1 for i in range(len(tr))
            if tr.op[i] == int(OpClass.BRANCH) and tr.taken[i]
            and tr.target[i] < tr.pc[i]
        )
        assert backward > 0


class TestAddressStructure:
    def test_memory_bound_profile_touches_many_distinct_lines(self):
        tr = generate_trace("mcf", 20000, 0)
        lines = {
            tr.addr[i] // 512 for i in range(len(tr))
            if tr.op[i] in (int(OpClass.LOAD), int(OpClass.STORE))
        }
        assert len(lines) > 500  # far beyond any cache

    def test_cache_resident_profile_touches_few_lines(self):
        profile = get_profile("gzip")
        tr = generate_trace("gzip", 20000, 0)
        lines = {
            tr.addr[i] // 512 for i in range(len(tr))
            if tr.op[i] in (int(OpClass.LOAD), int(OpClass.STORE))
        }
        # Bounded by the footprint.
        assert len(lines) <= profile.footprint_kb * 1024 // 512 + 1

    def test_pointer_chase_creates_load_load_dependences(self):
        """For chasing profiles, some loads read a register produced by
        an earlier load."""
        tr = generate_trace("mcf", 20000, 0)
        load_dests = set()
        chained = 0
        for i in range(len(tr)):
            if tr.op[i] == int(OpClass.LOAD):
                if tr.src1[i] in load_dests:
                    chained += 1
                if tr.dest[i] != NO_REG:
                    load_dests.add(tr.dest[i])
        assert chained > 100

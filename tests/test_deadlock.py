"""Deadlock-avoidance buffer and watchdog timer unit tests."""

import pytest

from repro.core.deadlock import DeadlockAvoidanceBuffer, WatchdogTimer
from repro.isa.opcodes import OpClass
from repro.pipeline.dynamic import DynInstr


def instr(seq=0):
    return DynInstr(tid=0, seq=seq, tseq=seq, op=int(OpClass.IALU), pc=0,
                    addr=0, taken=False, target=0, dest_l=-1, src1_l=-1,
                    src2_l=-1, fetch_cycle=0)


class TestDeadlockAvoidanceBuffer:
    def test_insert_marks_instruction(self):
        dab = DeadlockAvoidanceBuffer(1)
        i = instr()
        dab.insert(i, cycle=7)
        assert i.in_dab
        assert i.dispatch_cycle == 7
        assert dab.inserts == 1

    def test_capacity_enforced(self):
        dab = DeadlockAvoidanceBuffer(1)
        dab.insert(instr(0), 0)
        assert not dab.has_space
        with pytest.raises(RuntimeError, match="overflow"):
            dab.insert(instr(1), 0)

    def test_multi_entry(self):
        dab = DeadlockAvoidanceBuffer(2)
        dab.insert(instr(0), 0)
        assert dab.has_space
        dab.insert(instr(1), 0)
        assert not dab.has_space

    def test_clear(self):
        dab = DeadlockAvoidanceBuffer(1)
        i = instr()
        dab.insert(i, 0)
        dab.clear()
        assert not i.in_dab
        assert dab.has_space
        assert dab.inserts == 1  # statistics preserved

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DeadlockAvoidanceBuffer(0)


class TestWatchdogTimer:
    def test_counts_down_and_expires(self):
        w = WatchdogTimer(3)
        assert not w.tick()
        assert not w.tick()
        assert w.tick()
        assert w.expiries == 1

    def test_reset_on_dispatch(self):
        w = WatchdogTimer(3)
        w.tick()
        w.tick()
        w.note_dispatch()
        assert not w.tick()
        assert not w.tick()
        assert w.tick()

    def test_rearms_after_expiry(self):
        w = WatchdogTimer(2)
        w.tick()
        assert w.tick()
        assert not w.tick()
        assert w.tick()
        assert w.expiries == 2

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            WatchdogTimer(0)

"""PipelineStats derived-metric tests."""

from repro.pipeline.stats import PipelineStats


def make_stats(**kw):
    s = PipelineStats(num_threads=2)
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestDerivedMetrics:
    def test_throughput_and_per_thread(self):
        s = make_stats(cycles=10, committed=[20, 10], committed_total=30)
        assert s.throughput_ipc == 3.0
        assert s.per_thread_ipc == [2.0, 1.0]

    def test_zero_cycles_guards(self):
        s = PipelineStats(num_threads=2)
        assert s.throughput_ipc == 0.0
        assert s.per_thread_ipc == [0.0, 0.0]
        assert s.all_blocked_2op_fraction == 0.0
        assert s.mean_iq_occupancy == 0.0

    def test_blocked_fraction(self):
        s = make_stats(cycles=100, all_blocked_2op_cycles=43)
        assert s.all_blocked_2op_fraction == 0.43

    def test_residency(self):
        s = make_stats(iq_residency_sum=150, iq_residency_count=10)
        assert s.mean_iq_residency == 15.0
        assert PipelineStats(num_threads=1).mean_iq_residency == 0.0

    def test_hdi_fraction(self):
        s = make_stats(hdi_piled_samples=100, hdi_piled_dispatchable=90)
        assert s.hdi_fraction == 0.9
        assert PipelineStats(num_threads=1).hdi_fraction == 0.0

    def test_ndi_dependent_fraction(self):
        s = make_stats(ooo_dispatched=50, ooo_ndi_dependent=5)
        assert s.ooo_ndi_dependent_fraction == 0.1

    def test_branch_rate(self):
        s = make_stats(branch_lookups=200, branch_mispredicts=10)
        assert s.branch_mispredict_rate == 0.05

    def test_as_dict_keys(self):
        d = PipelineStats(num_threads=1).as_dict()
        for key in ("throughput_ipc", "all_blocked_2op_fraction",
                    "mean_iq_residency", "hdi_fraction",
                    "ooo_ndi_dependent_fraction", "watchdog_flushes"):
            assert key in d

    def test_per_thread_lists_sized(self):
        s = PipelineStats(num_threads=3)
        assert len(s.committed) == 3
        assert len(s.fetched_per_thread) == 3
        assert len(s.blocked_2op_cycles) == 3

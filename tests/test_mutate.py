"""Mutation analysis engine: operators, isolation, cache, cascade."""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis import mutate
from repro.analysis.mutops import (
    OPERATORS,
    SiteNotFound,
    apply_to_module,
    build_mutation,
    proposals_for,
    sites_for_function,
)
from repro.analysis.mutate import (
    MutationCache,
    build_report,
    install_mutant,
    run_cascade,
    sample_ids,
    select_sites,
    _fork_run,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
PIPELINE = REPO_ROOT / "src" / "repro" / "pipeline"


# ----------------------------------------------------------------------
# operator library
# ----------------------------------------------------------------------
SNIPPET = """
def issue(self, width):
    picked = 0
    with self._lock:
        for slot in self.slots:
            if picked < width:
                picked += 1
    with self._iq_lock, self._rob_lock:
        if len(self.q) >= 8:
            self.stats.iq_full_stalls += 1
    head = (self.head + 1) % len(self.slots)
    return min(picked, width), head
"""


def _sites():
    tree = ast.parse(SNIPPET)
    return sites_for_function(tree.body[0], "pkg/mod.py", "pkg.mod", "issue")


def test_operator_enumeration_covers_the_fault_classes():
    ops = {s.op for s in _sites()}
    assert {"cmp-boundary", "cmp-swap", "const-nudge", "stat-drop",
            "stat-double", "mod-shift", "minmax-swap", "lock-drop",
            "lock-swap"} <= ops
    assert ops <= set(OPERATORS)


def test_sites_are_deterministic_and_content_addressed():
    a, b = _sites(), _sites()
    assert [s.spec() for s in a] == [s.spec() for s in b]
    ids = [s.mutant_id for s in a]
    assert len(ids) == len(set(ids))
    assert all(i.startswith("m") and len(i) == 13 for i in ids)


@pytest.mark.parametrize("op", sorted(OPERATORS))
def test_every_operator_produces_compilable_distinct_code(op):
    matching = [s for s in _sites() if s.op == op]
    assert matching, f"snippet exercises no {op} site"
    original = ast.parse(SNIPPET)
    for site in matching:
        mutated = apply_to_module(ast.parse(SNIPPET), site.spec())
        compile(mutated, "<mutant>", "exec")
        assert ast.unparse(mutated) != ast.unparse(original)


def test_apply_rejects_a_drifted_site():
    site = _sites()[0]
    spec = dict(site.spec())
    spec["span"] = [999, 0, 999, 4]
    with pytest.raises(SiteNotFound):
        apply_to_module(ast.parse(SNIPPET), spec)


def test_build_mutation_leaves_the_original_untouched():
    tree = ast.parse("x = a % b")
    node = tree.body[0].value
    before = ast.dump(node)
    build_mutation(node, "mod-shift", 0)
    assert ast.dump(node) == before


def test_stat_increment_detection_requires_counter_shape():
    plain = ast.parse("self.cursor += 1").body[0]
    counter = ast.parse("self.stats.cycles += 1").body[0]
    stall = ast.parse("unit.dab_stall_cycles += n").body[0]
    assert proposals_for(plain) == []
    assert ("stat-drop", 0) in proposals_for(counter)
    assert ("stat-double", 0) in proposals_for(stall)


# ----------------------------------------------------------------------
# site selection over the flow closure
# ----------------------------------------------------------------------
def test_select_sites_targets_the_hot_closure():
    sites = select_sites([PIPELINE])
    assert len(sites) > 50
    assert all(s.path.startswith("src/repro/pipeline/") for s in sites)
    assert any(s.path.endswith("smt_core.py") for s in sites)
    # Determinism: same tree, same enumeration.
    again = select_sites([PIPELINE])
    assert [s.spec() for s in sites] == [s.spec() for s in again]


def test_sample_is_deterministic_and_seed_sensitive():
    ids = [s.mutant_id for s in select_sites([PIPELINE])]
    a = sample_ids(ids, 10, 2006)
    assert a == sample_ids(ids, 10, 2006)
    assert len(a) == 10
    assert a != sample_ids(ids, 10, 7)
    assert set(a) <= set(ids)


# ----------------------------------------------------------------------
# in-memory application: the working tree is never touched
# ----------------------------------------------------------------------
def _tree_hashes() -> dict[str, str]:
    return {
        str(p): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted((REPO_ROOT / "src").rglob("*.py"))
        if "__pycache__" not in p.parts
    }


def test_install_mutant_serves_mutated_code_without_disk_writes():
    sites = select_sites([PIPELINE])
    site = next(s for s in sites if s.op == "stat-drop")
    before = _tree_hashes()

    def body():
        install_mutant(site.spec())
        import importlib

        module = importlib.import_module(site.module)
        source = Path(module.__file__).read_text(encoding="utf-8")
        # The module on disk still contains the original statement...
        return {"on_disk_intact": site.before in source}

    status, value = _fork_run(body, 60.0)
    assert status == "ok", value
    assert value["on_disk_intact"] is True
    assert _tree_hashes() == before


def test_fork_run_reports_errors_and_timeouts():
    def boom():
        raise RuntimeError("kaput")

    status, value = _fork_run(boom, 30.0)
    assert status == "error"
    assert "RuntimeError" in value and "kaput" in value

    def wedge():
        while True:
            pass

    status, value = _fork_run(wedge, 0.5)
    assert status == "timeout"


# ----------------------------------------------------------------------
# cascade + cache (one real mutant end to end)
# ----------------------------------------------------------------------
def test_cascade_kills_a_cycle_counter_drop_and_warm_rerun_is_free(tmp_path):
    sites = select_sites([PIPELINE])
    target = next(
        s for s in sites
        if s.op == "stat-drop" and s.before == "self.stats.cycles += 1"
        and s.path.endswith("smt_core.py")
    )
    cache = MutationCache(tmp_path / "mutation")
    before = _tree_hashes()
    outcomes, executed, cached = run_cascade(
        [PIPELINE], [target], jobs=1, timeout=90.0, cache=cache
    )
    assert _tree_hashes() == before, "mutation run modified the tree"
    out = outcomes[target.mutant_id]
    assert out["outcome"] == "killed"
    # Dropping the master cycle counter survives the static and
    # sanitizer layers but cannot survive a stats comparison.
    assert out["killed_by"] == "stats"
    assert executed > 0 and cached == 0

    report_cold = build_report([PIPELINE], [target], outcomes, None, 0)
    outcomes2, executed2, cached2 = run_cascade(
        [PIPELINE], [target], jobs=1, timeout=90.0, cache=cache
    )
    assert executed2 == 0, "warm cache re-run executed mutant jobs"
    assert cached2 > 0
    report_warm = build_report([PIPELINE], [target], outcomes2, None, 0)
    assert report_cold == report_warm
    # Exactly one (the first detecting) layer is credited.
    assert sum(report_cold["kill_matrix"].values()) == 1


def test_report_attributes_each_kill_to_exactly_one_layer():
    sites = select_sites([PIPELINE])[:3]
    outcomes = {
        sites[0].mutant_id: {"outcome": "killed", "killed_by": "static",
                             "detail": ""},
        sites[1].mutant_id: {"outcome": "killed", "killed_by": "timeout",
                             "detail": ""},
        sites[2].mutant_id: {"outcome": "survived", "killed_by": None,
                             "detail": ""},
    }
    report = build_report([PIPELINE], sites, outcomes, None, 0)
    assert report["total"] == 3
    assert report["killed"] == 2
    assert sum(report["kill_matrix"].values()) == report["killed"]
    assert report["survivors"] == [sites[2].mutant_id]
    assert report["kill_matrix"]["timeout"] == 1


def test_mutation_cache_round_trips_and_tolerates_corruption(tmp_path):
    cache = MutationCache(tmp_path)
    assert cache.get("deadbeef") is None
    cache.put("deadbeef", {"outcome": "killed", "killed_by": "stats"})
    assert cache.get("deadbeef")["killed_by"] == "stats"
    path = cache._path("deadbeef")
    path.write_text("{torn", encoding="utf-8")
    assert cache.get("deadbeef") is None


def test_committed_mutation_baseline_matches_the_current_site_universe():
    """Every id recorded in the committed baseline still enumerates."""
    baseline = json.loads(
        (REPO_ROOT / "results" / "mutation_baseline.json")
        .read_text(encoding="utf-8")
    )
    ids = {s.mutant_id for s in select_sites([PIPELINE])}
    recorded = {str(s["id"]) for s in baseline["survivors"]}
    recorded |= set(baseline["allowlist"])
    assert recorded <= ids, sorted(recorded - ids)
    # Smoke-gate invariant: whatever the pinned CI sample draws, a
    # surviving mutant is always explicitly allowlisted.
    assert set(str(s["id"]) for s in baseline["survivors"]) \
        <= set(baseline["allowlist"])


# ----------------------------------------------------------------------
# concurrency operators × the races layer
# ----------------------------------------------------------------------
def _lock_sites(rel: str) -> list[dict[str, object]]:
    """Every lock-drop/lock-swap site in one shipped module, by span."""
    tree = ast.parse((REPO_ROOT / rel).read_text(encoding="utf-8"))
    out: list[dict[str, object]] = []
    for node in ast.walk(tree):
        for op, slot in proposals_for(node):
            if op in ("lock-drop", "lock-swap"):
                out.append({
                    "id": f"{rel}:{node.lineno}:{op}",
                    "path": rel,
                    "op": op,
                    "slot": slot,
                    "span": [node.lineno, node.col_offset,
                             node.end_lineno, node.end_col_offset],
                })
    out.sort(key=lambda s: (s["span"], s["op"]))
    return out


class TestConcurrencyOperators:
    SCOPE = [REPO_ROOT / "src" / "repro" / "serve",
             REPO_ROOT / "src" / "repro" / "exec"]

    def test_lock_guard_mutants_are_killed_by_the_races_layer(self):
        """Pinned 5-site smoke: deleting any shipped lock guard must
        light up the static concurrency pass."""
        from repro.analysis.races import races_paths

        pool_sites = _lock_sites("src/repro/exec/pool.py")
        cluster_sites = _lock_sites("src/repro/serve/cluster.py")
        assert len(pool_sites) + len(cluster_sites) >= 5
        pinned = pool_sites[:3] + cluster_sites[:2]
        assert races_paths(self.SCOPE) == []
        for spec in pinned:
            path = REPO_ROOT / str(spec["path"])
            tree = ast.parse(path.read_text(encoding="utf-8"))
            mutated = ast.unparse(apply_to_module(tree, spec))
            found = races_paths(
                self.SCOPE, overrides={str(path.resolve()): mutated})
            assert any(v.code in ("RPR014", "RPR015", "RPR016")
                       for v in found), spec

    def test_lock_swap_mutant_creates_a_lock_order_cycle(self, tmp_path):
        from repro.analysis.races import races_paths

        source = (
            "import threading\n"
            "\n"
            "class Pair:\n"
            "    def __init__(self):\n"
            "        self.lock_a = threading.Lock()\n"
            "        self.lock_b = threading.Lock()\n"
            "\n"
            "    def one(self):\n"
            "        with self.lock_a, self.lock_b:\n"
            "            pass\n"
            "\n"
            "    def two(self):\n"
            "        with self.lock_a, self.lock_b:\n"
            "            pass\n"
        )
        proj = tmp_path / "proj"
        proj.mkdir()
        path = proj / "pair.py"
        path.write_text(source, encoding="utf-8")
        tree = ast.parse(source)
        swaps = []
        for node in ast.walk(tree):
            for op, slot in proposals_for(node):
                if op == "lock-swap":
                    swaps.append({
                        "id": "swap", "path": "pair.py", "op": op,
                        "slot": slot,
                        "span": [node.lineno, node.col_offset,
                                 node.end_lineno, node.end_col_offset],
                    })
        assert len(swaps) == 2
        assert races_paths([proj]) == []
        mutated = ast.unparse(apply_to_module(ast.parse(source), swaps[0]))
        found = races_paths([proj],
                            overrides={str(path.resolve()): mutated})
        assert any(v.code == "RPR015" for v in found)

"""ROB, LSQ, functional-unit pool and thread-state unit tests."""

import pytest

from repro.config.presets import small_machine
from repro.isa.opcodes import OpClass
from repro.pipeline.dynamic import DynInstr
from repro.pipeline.fu import FunctionalUnitPool
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.thread import ThreadState
from repro.trace.generator import generate_trace


def instr(seq, op=OpClass.IALU, addr=0, tseq=None):
    return DynInstr(tid=0, seq=seq, tseq=tseq if tseq is not None else seq,
                    op=int(op), pc=0, addr=addr, taken=False, target=0,
                    dest_l=-1, src1_l=-1, src2_l=-1, fetch_cycle=0)


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        a, b = instr(0), instr(1)
        rob.allocate(a)
        rob.allocate(b)
        assert rob.head is a
        assert rob.retire_head() is a
        assert rob.head is b

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.allocate(instr(0))
        assert not rob.full
        rob.allocate(instr(1))
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.allocate(instr(2))

    def test_empty_head_is_none(self):
        assert ReorderBuffer(2).head is None

    def test_clear(self):
        rob = ReorderBuffer(2)
        rob.allocate(instr(0))
        rob.clear()
        assert len(rob) == 0 and rob.head is None

    def test_iteration_in_order(self):
        rob = ReorderBuffer(4)
        for i in range(3):
            rob.allocate(instr(i))
        assert [x.seq for x in rob] == [0, 1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestLoadStoreQueue:
    def test_occupancy(self):
        lsq = LoadStoreQueue(2)
        a = instr(0, OpClass.LOAD, addr=64)
        lsq.allocate(a)
        assert lsq.count == 1 and not lsq.full
        lsq.allocate(instr(1, OpClass.STORE, addr=128))
        assert lsq.full
        with pytest.raises(RuntimeError):
            lsq.allocate(instr(2, OpClass.LOAD, addr=0))
        lsq.release(a)
        assert not lsq.full

    def test_store_forwarding_requires_older_store(self):
        lsq = LoadStoreQueue(8)
        store = instr(5, OpClass.STORE, addr=64, tseq=5)
        lsq.allocate(store)
        young_load = instr(7, OpClass.LOAD, addr=64, tseq=7)
        old_load = instr(3, OpClass.LOAD, addr=64, tseq=3)
        assert lsq.can_forward(young_load) is True
        assert lsq.can_forward(old_load) is False

    def test_no_forwarding_for_different_address(self):
        lsq = LoadStoreQueue(8)
        lsq.allocate(instr(0, OpClass.STORE, addr=64))
        assert not lsq.can_forward(instr(1, OpClass.LOAD, addr=128, tseq=1))

    def test_forwarding_stops_after_store_commits(self):
        lsq = LoadStoreQueue(8)
        store = instr(0, OpClass.STORE, addr=64, tseq=0)
        lsq.allocate(store)
        lsq.release(store)
        assert not lsq.can_forward(instr(1, OpClass.LOAD, addr=64, tseq=1))

    def test_forward_counter(self):
        lsq = LoadStoreQueue(8)
        lsq.allocate(instr(0, OpClass.STORE, addr=64, tseq=0))
        lsq.can_forward(instr(1, OpClass.LOAD, addr=64, tseq=1))
        assert lsq.forwards == 1

    def test_reset(self):
        lsq = LoadStoreQueue(8)
        lsq.allocate(instr(0, OpClass.STORE, addr=64))
        lsq.reset()
        assert lsq.count == 0
        assert not lsq.can_forward(instr(1, OpClass.LOAD, addr=64, tseq=1))


class TestFunctionalUnitPool:
    def _pool(self):
        return FunctionalUnitPool(small_machine())

    def test_pipelined_unit_accepts_every_cycle(self):
        pool = self._pool()
        for _ in range(8):  # 8 int adders in small_machine config
            assert pool.try_claim(int(OpClass.IALU), cycle=0)

    def test_divider_blocks_its_unit(self):
        pool = self._pool()
        for _ in range(4):
            assert pool.try_claim(int(OpClass.IDIV), 0)
        assert not pool.try_claim(int(OpClass.IDIV), 0)
        # IDIV issue interval is 19: still busy at cycle 10 ...
        assert not pool.try_claim(int(OpClass.IDIV), 10)
        # ... free again at 19.
        assert pool.try_claim(int(OpClass.IDIV), 19)

    def test_mul_and_div_share_units(self):
        pool = self._pool()
        for _ in range(4):
            assert pool.try_claim(int(OpClass.IDIV), 0)
        assert not pool.try_claim(int(OpClass.IMUL), 0)

    def test_available_does_not_claim(self):
        pool = self._pool()
        assert pool.available(int(OpClass.IALU), 0)
        for _ in range(8):
            pool.try_claim(int(OpClass.IALU), 0)
        assert not pool.available(int(OpClass.IALU), 0)
        assert pool.available(int(OpClass.IALU), 1)

    def test_reset(self):
        pool = self._pool()
        for _ in range(4):
            pool.try_claim(int(OpClass.IDIV), 0)
        pool.reset()
        assert pool.try_claim(int(OpClass.IDIV), 0)


class TestThreadState:
    def _thread(self):
        cfg = small_machine()
        trace = generate_trace("gzip", 2000, 3)
        return ThreadState(0, trace, cfg), cfg

    def test_initial_state(self):
        ts, cfg = self._thread()
        assert ts.fetch_idx == 0
        assert not ts.exhausted
        assert not ts.drained
        assert ts.pipe_capacity == cfg.frontend_depth * cfg.fetch_width

    def test_exhausted_and_drained(self):
        ts, _ = self._thread()
        ts.fetch_idx = ts.trace_len
        assert ts.exhausted and ts.drained
        ts.rob.allocate(instr(0))
        assert not ts.drained

    def test_flush_resumes_from_oldest_in_flight(self):
        ts, _ = self._thread()
        ts.fetch_idx = 100
        oldest = instr(50, tseq=50)
        ts.rob.allocate(oldest)
        ts.dispatch_buffer.append(instr(60, tseq=60))
        ts.pipe.append((0, instr(70, tseq=70)))
        ts.icount = 3
        resume = ts.flush_inflight(resume_cycle=123)
        assert resume == 50
        assert ts.fetch_idx == 50
        assert ts.icount == 0
        assert len(ts.rob) == 0 and not ts.pipe and not ts.dispatch_buffer
        assert ts.stalled_until == 123

    def test_flush_with_empty_rob_uses_pipe(self):
        ts, _ = self._thread()
        ts.fetch_idx = 80
        ts.pipe.append((0, instr(75, tseq=75)))
        assert ts.flush_inflight(1) == 75

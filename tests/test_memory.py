"""Cache and hierarchy tests."""

import pytest

from repro.config.machine import CacheConfig, MemoryConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import MemoryHierarchy


def small_cache(size=1024, assoc=2, line=64):
    return SetAssociativeCache(CacheConfig(size, assoc, line, 1))


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0x100) is False
        assert c.access(0x100) is True

    def test_same_line_hits(self):
        c = small_cache(line=64)
        c.access(0x100)
        assert c.access(0x100 + 63) is True
        assert c.access(0x100 + 64) is False

    def test_lru_eviction(self):
        c = small_cache(size=256, assoc=2, line=64)  # 2 sets
        num_sets = 2
        a, b, d = (i * num_sets * 64 for i in range(3))  # same set
        c.access(a)
        c.access(b)
        c.access(a)          # a most-recent
        c.access(d)          # evicts b
        assert c.access(a) is True
        assert c.access(b) is False

    def test_probe_does_not_allocate_or_touch_lru(self):
        c = small_cache()
        assert c.probe(0x100) is False
        assert c.access(0x100) is False  # probe did not allocate
        assert c.probe(0x100) is True
        accesses = c.accesses
        c.probe(0x100)
        assert c.accesses == accesses  # probes not counted

    def test_flush_invalidates_but_keeps_stats(self):
        c = small_cache()
        c.access(0x100)
        c.flush()
        assert c.access(0x100) is False
        assert c.accesses == 2 and c.misses == 2

    def test_reset_stats_keeps_content(self):
        c = small_cache()
        c.access(0x100)
        c.reset_stats()
        assert c.accesses == 0 and c.misses == 0
        assert c.access(0x100) is True

    def test_miss_and_hit_rate(self):
        c = small_cache()
        c.access(0)
        c.access(0)
        assert c.miss_rate == 0.5
        assert c.hit_rate == 0.5

    def test_direct_mapped(self):
        c = small_cache(size=128, assoc=1, line=64)  # 2 sets, 1 way
        c.access(0)
        c.access(128)  # same set, evicts
        assert c.access(0) is False

    def test_fully_associative_single_set(self):
        c = small_cache(size=256, assoc=4, line=64)  # 1 set
        for i in range(4):
            c.access(i * 64)
        for i in range(4):
            assert c.probe(i * 64)


class TestMemoryHierarchy:
    def _h(self):
        return MemoryHierarchy(MemoryConfig(
            l1i=CacheConfig(1024, 2, 64, 1),
            l1d=CacheConfig(1024, 2, 64, 1),
            l2=CacheConfig(8 * 1024, 4, 128, 10),
            memory_latency=100,
        ))

    def test_cold_data_access_goes_to_memory(self):
        h = self._h()
        res = h.access_data(0x4000)
        assert res.went_to_memory
        assert res.extra_latency == 100

    def test_l1_hit_costs_nothing_extra(self):
        h = self._h()
        h.access_data(0x4000)
        res = h.access_data(0x4000)
        assert res.l1_hit and res.extra_latency == 0

    def test_l2_hit_after_l1_eviction(self):
        h = self._h()
        h.access_data(0)
        # Evict line 0 from tiny L1 by filling its set, L2 keeps it.
        num_sets_l1 = 8
        h.access_data(num_sets_l1 * 64)
        h.access_data(2 * num_sets_l1 * 64)
        res = h.access_data(0)
        assert not res.l1_hit and res.l2_hit
        assert res.extra_latency == 10

    def test_inst_and_data_share_l2(self):
        h = self._h()
        h.access_inst(0x8000)
        res = h.access_data(0x8000)
        assert res.l2_hit  # line brought in by the instruction fetch
        assert not res.l1_hit  # but not in the (separate) L1D

    def test_reset_stats(self):
        h = self._h()
        h.access_data(0)
        h.access_inst(0)
        h.reset_stats()
        assert h.l1d.accesses == 0
        assert h.l1i.accesses == 0
        assert h.l2.accesses == 0

    def test_flush(self):
        h = self._h()
        h.access_data(0)
        h.flush()
        assert h.access_data(0).went_to_memory

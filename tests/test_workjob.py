"""Generic WorkJob kind riding the exec farm, and tolerate_failures."""

from __future__ import annotations

import pytest

from repro.exec import (
    ExecutionError,
    ExecutorConfig,
    RunJournal,
    WorkJob,
    execute_jobs,
    fork_available,
)


# Entry points resolved by name inside workers ("module:function").
def double(payload):
    return {"doubled": payload["x"] * 2}


def explode(payload):
    raise ValueError(f"bad x={payload['x']}")


def sleepy(payload):
    import time

    time.sleep(payload.get("seconds", 60))
    return {}


def nothing(payload):
    return None


def _job(entry: str, **payload) -> WorkJob:
    return WorkJob(entry=f"tests.test_workjob:{entry}", payload=payload)


def test_workjob_is_content_addressed_and_round_trips():
    a = _job("double", x=3)
    b = WorkJob.from_fingerprint(a.fingerprint_payload())
    assert a.content_hash() == b.content_hash()
    assert a.content_hash() != _job("double", x=4).content_hash()
    assert a.cost_estimate() == 1
    assert "tests.test_workjob" in a.describe()


def test_workjob_run_dispatches_by_entry():
    assert _job("double", x=21).run() == {"doubled": 42}
    # None returns are coerced: the executor's failed-job sentinel
    # must never be a successful result.
    assert _job("nothing").run() == {}
    with pytest.raises(ValueError):
        WorkJob(entry="no-colon", payload={}).run()


def test_execute_jobs_runs_workjobs_in_process():
    jobs = [_job("double", x=i) for i in range(4)]
    results, report = execute_jobs(jobs, ExecutorConfig(jobs=1))
    assert [r["doubled"] for r in results] == [0, 2, 4, 6]
    assert report.simulated == 4


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_execute_jobs_runs_workjobs_in_workers():
    jobs = [_job("double", x=i) for i in range(5)]
    results, report = execute_jobs(jobs, ExecutorConfig(jobs=2))
    assert [r["doubled"] for r in results] == [0, 2, 4, 6, 8]
    assert report.simulated == 5


def test_tolerate_failures_returns_positional_results():
    jobs = [_job("double", x=1), _job("explode", x=2), _job("double", x=3)]
    cfg = ExecutorConfig(jobs=1, retries=0, tolerate_failures=True)
    results, report = execute_jobs(jobs, cfg)
    assert results[0] == {"doubled": 2}
    assert results[1] is None
    assert results[2] == {"doubled": 6}
    assert report.failed == 1
    assert len(report.job_failures) == 1
    assert "bad x=2" in report.job_failures[0].message
    assert report.job_failures[0].job.content_hash() == jobs[1].content_hash()


def test_without_tolerate_failures_the_batch_still_raises():
    jobs = [_job("explode", x=9)]
    with pytest.raises(ExecutionError) as err:
        execute_jobs(jobs, ExecutorConfig(jobs=1, retries=0))
    assert "bad x=9" in str(err.value)


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_hung_workjob_is_reaped_and_journaled(tmp_path):
    jobs = [_job("sleepy", seconds=60), _job("double", x=5)]
    cfg = ExecutorConfig(
        jobs=2, retries=0, timeout=1.0, tolerate_failures=True,
        journal_dir=tmp_path, run_id="hung-workjob",
    )
    results, report = execute_jobs(jobs, cfg)
    assert results[0] is None
    assert results[1] == {"doubled": 10}
    assert "timed out" in report.job_failures[0].message
    journal = (tmp_path / "hung-workjob.jsonl").read_text(encoding="utf-8")
    assert '"event":"failed"' in journal
    assert "timed out" in journal


def test_journal_replays_raw_payloads_and_rebuilds_workjobs(tmp_path):
    job = _job("double", x=7)
    with RunJournal(tmp_path, "raw") as journal:
        journal.record_queued(job, job.content_hash())
        journal.record_done(job.content_hash(), {"doubled": 14})
    with RunJournal(tmp_path, "raw", resume=True) as journal:
        done = journal.completed_results()
        assert done[job.content_hash()] == {"doubled": 14}
        rebuilt = journal.queued_jobs()
    assert len(rebuilt) == 1
    assert isinstance(rebuilt[0], WorkJob)
    assert rebuilt[0].content_hash() == job.content_hash()


def test_workjob_results_never_enter_the_sim_cache(tmp_path):
    cfg = ExecutorConfig(jobs=1, cache_dir=tmp_path / "cache")
    results, report = execute_jobs([_job("double", x=2)], cfg)
    assert results[0] == {"doubled": 4}
    # A second run must re-execute: the SimJob-shaped disk cache does
    # not (and must not) store generic payloads.
    results2, report2 = execute_jobs([_job("double", x=2)], cfg)
    assert report2.cached == 0
    assert report2.simulated == 1

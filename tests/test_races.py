"""Tests for the static concurrency pass (``repro.analysis.races``).

Each rule (RPR014-RPR017) gets an injected-violation fixture, a
near-miss that must stay clean, and a suppression check; plus
execution-context inference units (thread/async/fork/signal roots),
lockset joins over branches, a lock-order cycle of length 3, the
baseline mechanism (round-trip + line-shift stability), the CLI exit
codes, runtime regression hammers for the serve/exec fixes this pass
motivated, and an end-to-end check that the shipped ``src/repro`` tree
is clean against the committed baseline.
"""

from __future__ import annotations

import textwrap
import threading
from pathlib import Path

from repro.analysis.flow import build_project, encode_baseline, load_baseline
from repro.analysis.lint import main
from repro.analysis.races import (
    RACES_RULES,
    default_races_baseline_path,
    infer_contexts,
    races_paths,
)
from repro.util.encoding import stable_dumps


def write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialise a fixture package tree under ``root / 'proj'``."""
    proj = root / "proj"
    for rel, source in files.items():
        path = proj / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return proj


def races(root: Path, files: dict[str, str], baseline=None):
    return races_paths([write_tree(root, files)], baseline=baseline)


def codes(violations) -> list[str]:
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# execution-context inference
# ----------------------------------------------------------------------
class TestContextInference:
    FILES = {
        "app.py": """\
            import atexit
            import signal
            import threading
            from multiprocessing import Process

            def worker_thread():
                tick()

            def worker_child():
                pass

            def cleanup():
                pass

            def on_signal(signum, frame):
                pass

            def tick():
                pass

            async def handler():
                tick()

            def main():
                threading.Thread(target=worker_thread).start()
                Process(target=worker_child).start()
                atexit.register(cleanup)
                signal.signal(signal.SIGTERM, on_signal)
                bystander()

            def bystander():
                pass
            """,
    }

    def _contexts(self, tmp_path):
        project = build_project([write_tree(tmp_path, self.FILES)])
        return project, infer_contexts(project)

    def test_thread_root_from_thread_target(self, tmp_path):
        _, ctx = self._contexts(tmp_path)
        assert "app.py:worker_thread" in ctx.roots["thread"]

    def test_fork_root_from_process_target(self, tmp_path):
        _, ctx = self._contexts(tmp_path)
        assert "app.py:worker_child" in ctx.roots["fork"]

    def test_handler_roots_from_atexit_and_signal(self, tmp_path):
        _, ctx = self._contexts(tmp_path)
        assert "app.py:cleanup" in ctx.roots["handler"]
        assert "app.py:on_signal" in ctx.roots["handler"]

    def test_async_root_from_coroutine_def(self, tmp_path):
        _, ctx = self._contexts(tmp_path)
        assert "app.py:handler" in ctx.roots["async"]

    def test_context_kinds_flow_through_call_edges(self, tmp_path):
        _, ctx = self._contexts(tmp_path)
        # tick() is called from the thread root and the coroutine, and
        # from nothing in the main context.
        assert ctx.kinds["app.py:tick"] == frozenset({"thread", "async"})
        assert ctx.kinds["app.py:bystander"] == frozenset({"main"})

    def test_registered_roots_are_not_main_entry_points(self, tmp_path):
        _, ctx = self._contexts(tmp_path)
        assert "app.py:worker_thread" not in ctx.roots["main"]
        assert "app.py:main" in ctx.roots["main"]

    def test_sync_call_of_coroutine_does_not_propagate(self, tmp_path):
        project = build_project([write_tree(tmp_path, {
            "app.py": """\
                async def coro():
                    helper()

                def helper():
                    pass

                def harness():
                    coro()
                """,
        })])
        ctx = infer_contexts(project)
        # harness() only *creates* the coroutine; the body runs on the
        # loop, so neither coro nor helper picks up the main context.
        assert ctx.kinds["app.py:coro"] == frozenset({"async"})
        assert ctx.kinds["app.py:helper"] == frozenset({"async"})
        assert ctx.kinds["app.py:harness"] == frozenset({"main"})

    def test_self_method_registration_marks_class_escaping(self, tmp_path):
        project = build_project([write_tree(tmp_path, {
            "app.py": """\
                import threading

                class Owner:
                    def __init__(self):
                        self.items = []
                        threading.Thread(target=self._run).start()

                    def _run(self):
                        pass

                class Plain:
                    def __init__(self):
                        self.items = []
                """,
        })])
        ctx = infer_contexts(project)
        assert ("app.py", "Owner") in ctx.escaping
        assert ("app.py", "Plain") not in ctx.escaping


# ----------------------------------------------------------------------
# RPR014 — lockset consistency
# ----------------------------------------------------------------------
class TestRPR014:
    FILES = {
        "store.py": """\
            import threading

            class Store:
                def __init__(self):
                    self.items = []
                    self._lock = threading.Lock()
                    threading.Thread(target=self._drain).start()

                def _drain(self):
                    while True:
                        with self._lock:
                            self.items.pop()

                def push(self, x):
                    self.items.append(x)
            """,
    }

    def test_inconsistent_lockset_flagged(self, tmp_path):
        violations = races(tmp_path, self.FILES)
        assert codes(violations) == ["RPR014"]
        v = violations[0]
        assert "Store.items" in v.message
        assert "main+thread" in v.message
        assert "Store.push" in v.message

    def test_consistent_lockset_is_clean(self, tmp_path):
        violations = races(tmp_path, {
            "store.py": self.FILES["store.py"].replace(
                "self.items.append(x)",
                "with self._lock:\n"
                "                        self.items.append(x)",
            ),
        })
        assert violations == []

    def test_single_context_state_is_clean(self, tmp_path):
        violations = races(tmp_path, {
            "store.py": """\
                import threading

                class Store:
                    def __init__(self):
                        self.items = []
                        threading.Thread(target=self._drain).start()

                    def _drain(self):
                        self.items.pop()
                """,
        })
        # Only the thread context ever writes items after __init__.
        assert violations == []

    def test_init_writes_do_not_count(self, tmp_path):
        violations = races(tmp_path, {
            "store.py": """\
                import threading

                class Store:
                    def __init__(self):
                        self.items = [1, 2]
                        threading.Thread(target=self._drain).start()

                    def _drain(self):
                        self.items.pop()
                """,
        })
        assert violations == []

    def test_noqa_on_access_line_suppresses(self, tmp_path):
        violations = races(tmp_path, {
            "store.py": self.FILES["store.py"].replace(
                "self.items.append(x)",
                "self.items.append(x)  # repro: noqa[RPR014] — "
                "callers serialise pushes",
            ),
        })
        assert violations == []

    def test_lockset_join_over_branches(self, tmp_path):
        violations = races(tmp_path, {
            "joiner.py": """\
                import threading

                class Joiner:
                    def __init__(self, flag):
                        self.flag = flag
                        self.count = 0
                        self._lock = threading.Lock()
                        threading.Thread(target=self.tick).start()

                    def tick(self):
                        if self.flag:
                            self._lock.acquire()
                        self.count += 1
                        if self.flag:
                            self._lock.release()

                    def bump(self):
                        with self._lock:
                            self.count += 1
                """,
        })
        # The acquire happens on only one branch: after the join the
        # must-set is empty, so the increment is unguarded.
        assert codes(violations) == ["RPR014"]
        assert "Joiner.count" in violations[0].message

    def test_unconditional_acquire_joins_clean(self, tmp_path):
        violations = races(tmp_path, {
            "joiner.py": """\
                import threading

                class Joiner:
                    def __init__(self):
                        self.count = 0
                        self._lock = threading.Lock()
                        threading.Thread(target=self.tick).start()

                    def tick(self):
                        self._lock.acquire()
                        self.count += 1
                        self._lock.release()

                    def bump(self):
                        with self._lock:
                            self.count += 1
                """,
        })
        assert violations == []

    def test_module_global_written_from_two_contexts(self, tmp_path):
        violations = races(tmp_path, {
            "reg.py": """\
                import atexit

                LIVE: set = set()

                def spawn(proc):
                    LIVE.add(proc)

                def _sweep():
                    for proc in list(LIVE):
                        LIVE.discard(proc)

                atexit.register(_sweep)
                """,
        })
        assert codes(violations) == ["RPR014"]
        assert "proj.reg.LIVE" in violations[0].message
        assert "handler+main" in violations[0].message

    def test_entry_locksets_flow_through_calls(self, tmp_path):
        violations = races(tmp_path, {
            "store.py": """\
                import threading

                class Store:
                    def __init__(self):
                        self.items = []
                        self._lock = threading.Lock()
                        threading.Thread(target=self._drain).start()

                    def _drain(self):
                        with self._lock:
                            self._pop_locked()

                    def _pop_locked(self):
                        self.items.pop()

                    def push(self, x):
                        with self._lock:
                            self.items.append(x)
                """,
        })
        # _pop_locked's only caller holds the lock: the entry-lockset
        # fixpoint must credit it, leaving every access guarded.
        assert violations == []


# ----------------------------------------------------------------------
# RPR015 — lock-order cycles
# ----------------------------------------------------------------------
class TestRPR015:
    FILES = {
        "trio.py": """\
            import threading

            class Trio:
                def __init__(self):
                    self.lock_a = threading.Lock()
                    self.lock_b = threading.Lock()
                    self.lock_c = threading.Lock()

                def ab(self):
                    with self.lock_a:
                        with self.lock_b:
                            pass

                def bc(self):
                    with self.lock_b:
                        with self.lock_c:
                            pass

                def ca(self):
                    with self.lock_c:
                        with self.lock_a:
                            pass
            """,
    }

    def test_cycle_of_length_three_flagged(self, tmp_path):
        violations = races(tmp_path, self.FILES)
        assert codes(violations) == ["RPR015"]
        msg = violations[0].message
        assert ("Trio.lock_a -> Trio.lock_b -> Trio.lock_c -> "
                "Trio.lock_a") in msg

    def test_consistent_order_is_clean(self, tmp_path):
        violations = races(tmp_path, {
            "trio.py": self.FILES["trio.py"].replace(
                "with self.lock_c:\n"
                "                        with self.lock_a:",
                "with self.lock_a:\n"
                "                        with self.lock_c:",
            ),
        })
        assert violations == []

    def test_noqa_on_acquisition_drops_the_edge(self, tmp_path):
        violations = races(tmp_path, {
            "trio.py": self.FILES["trio.py"].replace(
                "with self.lock_c:\n"
                "                        with self.lock_a:",
                "with self.lock_c:\n"
                "                        with self.lock_a:  "
                "# repro: noqa[RPR015] — "
                "ca() never runs concurrently with ab()",
            ),
        })
        assert violations == []

    def test_ctor_typed_locks_need_no_lockish_name(self, tmp_path):
        violations = races(tmp_path, {
            "pair.py": """\
                import threading

                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass

                    def two(self):
                        with self._b:
                            with self._a:
                                pass
                """,
        })
        assert codes(violations) == ["RPR015"]
        assert "Pair._a -> Pair._b -> Pair._a" in violations[0].message

    def test_order_edges_cross_call_boundaries(self, tmp_path):
        violations = races(tmp_path, {
            "pair.py": """\
                import threading

                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def outer(self):
                        with self._a:
                            self.inner()

                    def inner(self):
                        with self._b:
                            pass

                    def flipped(self):
                        with self._b:
                            with self._a:
                                pass
                """,
        })
        # inner() acquires _b while its caller may hold _a: the
        # may-entry lockset supplies the a -> b edge interprocedurally.
        assert codes(violations) == ["RPR015"]


# ----------------------------------------------------------------------
# RPR016 — fork safety
# ----------------------------------------------------------------------
class TestRPR016:
    def test_fork_under_lock_flagged(self, tmp_path):
        violations = races(tmp_path, {
            "forky.py": """\
                import os
                import threading

                _lock = threading.Lock()

                def spawn():
                    with _lock:
                        pid = os.fork()
                    return pid
                """,
        })
        assert codes(violations) == ["RPR016"]
        assert "os.fork()" in violations[0].message
        assert "_lock" in violations[0].message

    def test_fork_outside_lock_is_clean(self, tmp_path):
        violations = races(tmp_path, {
            "forky.py": """\
                import os
                import threading

                _lock = threading.Lock()

                def spawn():
                    with _lock:
                        pass
                    return os.fork()
                """,
        })
        assert violations == []

    def test_fork_while_caller_holds_lock_flagged(self, tmp_path):
        violations = races(tmp_path, {
            "forky.py": """\
                import os
                import threading

                _lock = threading.Lock()

                def outer():
                    with _lock:
                        return spawn()

                def spawn():
                    return os.fork()
                """,
        })
        # The lock is held by the *caller*; the may-entry lockset must
        # carry it into spawn().
        assert codes(violations) == ["RPR016"]

    def test_lock_holding_attr_inherited_by_child_flagged(self, tmp_path):
        violations = races(tmp_path, {
            "owner.py": """\
                import threading
                from multiprocessing import Process

                class Owner:
                    def __init__(self):
                        self.guard = threading.Lock()

                    def launch(self, fn):
                        proc = Process(target=fn, args=(self.guard,))
                        proc.start()
                        return proc
                """,
        })
        assert codes(violations) == ["RPR016"]
        assert "self.guard" in violations[0].message
        assert "threading.Lock" in violations[0].message

    def test_plain_payload_is_clean(self, tmp_path):
        violations = races(tmp_path, {
            "owner.py": """\
                from multiprocessing import Process

                def launch(fn, job):
                    proc = Process(target=fn, args=(job, 3, "name"))
                    proc.start()
                    return proc
                """,
        })
        assert violations == []

    def test_local_handle_inherited_by_child_flagged(self, tmp_path):
        violations = races(tmp_path, {
            "owner.py": """\
                from multiprocessing import Process

                def launch(fn, path):
                    handle = open(path)
                    proc = Process(target=fn, args=(handle,))
                    proc.start()
                    return proc
                """,
        })
        assert codes(violations) == ["RPR016"]
        assert "handle" in violations[0].message

    def test_noqa_on_fork_site_suppresses(self, tmp_path):
        violations = races(tmp_path, {
            "forky.py": """\
                import os
                import threading

                _lock = threading.Lock()

                def spawn():
                    with _lock:
                        pid = os.fork()  # repro: noqa[RPR016] — child execs immediately
                    return pid
                """,
        })
        assert violations == []


# ----------------------------------------------------------------------
# RPR017 — await atomicity
# ----------------------------------------------------------------------
class TestRPR017:
    FILES = {
        "serve/app.py": """\
            import asyncio

            class Server:
                def __init__(self):
                    self.pending = 0
                    self._lock = asyncio.Lock()

                async def handle(self):
                    count = self.pending
                    await asyncio.sleep(0)
                    self.pending = count + 1
            """,
    }

    def test_stale_rmw_across_await_flagged(self, tmp_path):
        violations = races(tmp_path, self.FILES)
        assert codes(violations) == ["RPR017"]
        v = violations[0]
        assert "Server.pending" in v.message
        assert "Server.handle" in v.message

    def test_guarded_rmw_is_clean(self, tmp_path):
        violations = races(tmp_path, {
            "serve/app.py": """\
                import asyncio

                class Server:
                    def __init__(self):
                        self.pending = 0
                        self._lock = asyncio.Lock()

                    async def handle(self):
                        async with self._lock:
                            count = self.pending
                            await asyncio.sleep(0)
                            self.pending = count + 1
                """,
        })
        assert violations == []

    def test_reread_after_await_is_clean(self, tmp_path):
        violations = races(tmp_path, {
            "serve/app.py": """\
                import asyncio

                class Server:
                    def __init__(self):
                        self.pending = 0

                    async def handle(self):
                        count = self.pending
                        await asyncio.sleep(0)
                        self.pending = self.pending + 1
                        return count
                """,
        })
        assert violations == []

    def test_intra_statement_await_rmw_flagged(self, tmp_path):
        violations = races(tmp_path, {
            "serve/app.py": """\
                class Server:
                    def __init__(self):
                        self.pending = 0

                    async def handle(self):
                        self.pending = await self.fetch(self.pending)

                    async def fetch(self, x):
                        return x + 1
                """,
        })
        assert codes(violations) == ["RPR017"]

    def test_only_serve_handlers_are_seeded(self, tmp_path):
        files = {
            "batch/app.py": self.FILES["serve/app.py"],
        }
        assert races(tmp_path, files) == []

    def test_noqa_on_write_line_suppresses(self, tmp_path):
        violations = races(tmp_path, {
            "serve/app.py": self.FILES["serve/app.py"].replace(
                "self.pending = count + 1",
                "self.pending = count + 1  # repro: noqa[RPR017] — "
                "handle() runs once per boot",
            ),
        })
        assert violations == []


# ----------------------------------------------------------------------
# baseline mechanism
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_suppresses_recorded_findings(self, tmp_path):
        violations = races(tmp_path, TestRPR014.FILES)
        assert codes(violations) == ["RPR014"]
        baseline = encode_baseline(violations)
        again = races_paths([tmp_path / "proj"], baseline=baseline)
        assert again == []

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        violations = races(tmp_path, TestRPR014.FILES)
        baseline = encode_baseline(violations)
        proj = tmp_path / "proj"
        (proj / "store.py").write_text(
            "# a comment pushing every line down\n\n"
            + textwrap.dedent(TestRPR014.FILES["store.py"]),
            encoding="utf-8",
        )
        again = races_paths([proj], baseline=baseline)
        assert again == []

    def test_new_findings_surface_past_the_baseline(self, tmp_path):
        violations = races(tmp_path, TestRPR014.FILES)
        baseline = encode_baseline(violations)
        grown = textwrap.dedent(
                """\

                    class Second:
                        def __init__(self):
                            self.seen = set()
                            threading.Thread(target=self.watch).start()

                        def watch(self):
                            self.seen.clear()

                        def note(self, x):
                            self.seen.add(x)
                """)
        proj = tmp_path / "proj"
        (proj / "store.py").write_text(
            textwrap.dedent(TestRPR014.FILES["store.py"]) + grown,
            encoding="utf-8",
        )
        fresh = races_paths([proj], baseline=baseline)
        assert codes(fresh) == ["RPR014"]
        assert "Second.seen" in fresh[0].message


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_violations_exit_code_and_rendering(self, tmp_path, capsys):
        proj = write_tree(tmp_path, TestRPR014.FILES)
        assert main(["races", str(proj), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPR014" in out
        assert "1 violation(s) found" in out

    def test_clean_tree_exits_zero(self, tmp_path):
        proj = write_tree(tmp_path, {
            "calm.py": "def nothing():\n    return 0\n",
        })
        assert main(["races", str(proj), "--no-baseline"]) == 0

    def test_json_output_is_stable_dumps(self, tmp_path, capsys):
        proj = write_tree(tmp_path, TestRPR014.FILES)
        assert main(["races", str(proj), "--no-baseline",
                     "--json"]) == 1
        out = capsys.readouterr().out
        violations = races_paths([proj])
        assert out == stable_dumps({
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
            "rules": RACES_RULES,
            "baseline": None,
            "stale_baseline": [],
        })

    def test_ignore_narrows_reporting(self, tmp_path):
        proj = write_tree(tmp_path, TestRPR014.FILES)
        assert main(["races", str(proj), "--no-baseline",
                     "--ignore", "RPR014"]) == 0

    def test_missing_baseline_is_usage_error(self, tmp_path):
        proj = write_tree(tmp_path, TestRPR014.FILES)
        assert main(["races", str(proj), "--baseline",
                     str(tmp_path / "nope.json")]) == 2

    def test_update_baseline_then_stale_detection(self, tmp_path,
                                                  capsys):
        proj = write_tree(tmp_path, TestRPR014.FILES)
        baseline = tmp_path / "races.json"
        assert main(["races", str(proj), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert load_baseline(baseline)["findings"]
        assert main(["races", str(proj), "--baseline",
                     str(baseline)]) == 0
        # Pay down the debt: guard the push. The recorded finding no
        # longer occurs, so the full view must report the baseline
        # stale (exit 3).
        (proj / "store.py").write_text(textwrap.dedent(
            TestRPR014.FILES["store.py"]).replace(
                "def push(self, x):\n"
                "        self.items.append(x)",
                "def push(self, x):\n"
                "        with self._lock:\n"
                "            self.items.append(x)",
        ), encoding="utf-8")
        capsys.readouterr()
        assert main(["races", str(proj), "--baseline",
                     str(baseline)]) == 3
        assert "stale baseline" in capsys.readouterr().out


# ----------------------------------------------------------------------
# runtime regressions for the serve/exec fixes this pass motivated
# ----------------------------------------------------------------------
class _FakeProc:
    """Stands in for a multiprocessing.Process in registry hammers."""

    def __init__(self, *args, **kwargs) -> None:
        self.started = False

    def start(self) -> None:
        self.started = True

    def is_alive(self) -> bool:
        return False

    def join(self, timeout=None) -> None:
        return None

    def terminate(self) -> None:
        return None

    def kill(self) -> None:
        return None


class TestRuntimeRegressions:
    def test_live_worker_registry_survives_concurrent_churn(self):
        from repro.exec import pool

        stop = threading.Event()
        failures: list[BaseException] = []

        def churn() -> None:
            try:
                while not stop.is_set():
                    procs = [_FakeProc() for _ in range(50)]
                    with pool._LIVE_LOCK:
                        pool._LIVE_WORKERS.update(procs)
                    with pool._LIVE_LOCK:
                        pool._LIVE_WORKERS.difference_update(procs)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            # Pre-fix these readers iterated the live set directly and
            # died with "Set changed size during iteration".
            for _ in range(300):
                pool.live_worker_count()
                pool._reap_orphans()
        finally:
            stop.set()
            writer.join()
        assert not failures
        assert pool.live_worker_count() == 0

    def test_cluster_spawn_bookkeeping_is_thread_safe(self, monkeypatch):
        import multiprocessing

        from repro.serve.cluster import LocalCluster

        class _FakeCtx:
            def Process(self, *args, **kwargs):
                return _FakeProc()

        monkeypatch.setattr(multiprocessing, "get_context",
                            lambda kind: _FakeCtx())
        cluster = LocalCluster(workers=0)
        threads = [
            threading.Thread(
                target=lambda: [cluster._spawn_worker()
                                for _ in range(50)],
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Pre-fix the unguarded counter/list/dict updates could tear
        # between the supervisor thread and the harness thread.
        assert cluster._spawned == 400
        assert len(cluster._procs) == 400
        assert set(cluster._spawn_info) == set(cluster._procs)


# ----------------------------------------------------------------------
# the shipped tree
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean_against_committed_baseline(monkeypatch):
    repo = Path(__file__).resolve().parents[1]
    monkeypatch.chdir(repo)
    baseline_path = default_races_baseline_path()
    assert baseline_path.exists(), "results/races_baseline.json missing"
    baseline = load_baseline(baseline_path)
    violations = races_paths([repo / "src" / "repro"],
                             baseline=baseline)
    assert violations == [], [v.render() for v in violations]

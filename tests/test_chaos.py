"""Tests for the fault-tolerance layer (``repro.exec`` chaos/journal).

The headline invariant, enforced here end to end: with deterministic
fault injection enabled (worker kills, hangs, delivery faults, cache
corruption), a sweep must still complete and produce results
byte-identical to a fault-free run. Around it: chaos-policy parsing and
replayability, cache integrity (checksums, quarantine, ``verify``),
journal transitions / torn-tail recovery / rotation, interrupt-then-
resume with zero re-simulation, and the degraded paths (fork-less
serial fallback, retry-budget exhaustion, timeout on a hung worker,
watchdog on a silent one).
"""

from __future__ import annotations

import json
import time

import pytest

import repro.exec.pool as pool_mod
from repro.config.presets import small_machine
from repro.exec import (
    ChaosConfig,
    ChaosError,
    ExecutionError,
    ExecutorConfig,
    ResultCache,
    RunJournal,
    SimJob,
    derive_run_id,
    execute_jobs,
    jobs_for_grid,
    live_worker_count,
)
from repro.exec.cache import CORRUPT_SUFFIX, encode_job_result
from repro.exec.__main__ import main as exec_main
from repro.workloads.mixes import TWO_THREAD_MIXES

CFG = small_machine()
INSNS = 400


def grid_jobs() -> list[SimJob]:
    keyed = jobs_for_grid(
        TWO_THREAD_MIXES[:3], CFG, ("traditional", "2op_block"), (8, 16),
        INSNS, 0,
    )
    return [job for _, job in keyed]


def tiny_job(seed: int = 0) -> SimJob:
    return SimJob(benchmarks=("parser", "vortex"), config=CFG,
                  max_insns=INSNS, seed=seed)


def canon(results) -> list[str]:
    """Byte-level canonical form of a result list, for the invariant."""
    return [json.dumps(encode_job_result(p), sort_keys=True)
            for p in results]


@pytest.fixture(scope="module")
def golden():
    """Fault-free serial results for the 12-point module grid."""
    jobs = grid_jobs()
    results, report = execute_jobs(jobs)
    assert report.simulated == len(jobs)
    return canon(results)


def chaotic_seed(hashes, kill_p: float, hang_p: float = 0.0,
                 min_kills: int = 2, min_hangs: int = 0) -> int:
    """Smallest seed whose attempt-0 draws inject enough faults for the
    test to be meaningful — chosen deterministically, so never flaky."""
    for seed in range(200):
        c = ChaosConfig(seed=seed, kill_p=kill_p, hang_p=hang_p)
        kills = sum(c.should_kill(h, 0) for h in hashes)
        hangs = sum(c.should_hang(h, 0) for h in hashes)
        if kills >= min_kills and hangs >= min_hangs:
            return seed
    raise AssertionError("no seed injects enough faults; widen the search")


# ----------------------------------------------------------------------
# ChaosConfig: parsing + deterministic decisions
# ----------------------------------------------------------------------
class TestChaosConfigParse:
    def test_aliases_and_seed(self):
        c = ChaosConfig.parse("kill=0.3,hang=0.05,corrupt=0.5,seed=7")
        assert c.kill_p == 0.3
        assert c.hang_p == 0.05
        assert c.corrupt_p == 0.5
        assert c.seed == 7 and isinstance(c.seed, int)

    def test_full_field_names_accepted(self):
        c = ChaosConfig.parse("kill_p=0.2,delay_max=0.01")
        assert c.kill_p == 0.2
        assert c.delay_max == 0.01

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="bad REPRO_CHAOS knob"):
            ChaosConfig.parse("explode=1.0")

    def test_missing_value_rejected(self):
        with pytest.raises(ValueError, match="bad REPRO_CHAOS knob"):
            ChaosConfig.parse("kill")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="not in"):
            ChaosConfig.parse("kill=1.5")

    def test_enabled_property(self):
        assert not ChaosConfig().enabled
        assert not ChaosConfig(seed=9).enabled
        assert ChaosConfig(dup_p=0.1).enabled
        assert ChaosConfig(net_refuse_p=0.1).enabled
        assert ChaosConfig(slow_p=0.1).enabled

    def test_overload_knob_aliases(self):
        c = ChaosConfig.parse(
            "net_refuse=0.4,slow=0.2,slow_seconds=0.1,seed=2")
        assert c.net_refuse_p == 0.4
        assert c.slow_p == 0.2
        assert c.slow_seconds == 0.1
        assert c.enabled

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert ChaosConfig.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "0")
        assert ChaosConfig.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "kill=0.25,seed=3")
        c = ChaosConfig.from_env()
        assert c == ChaosConfig(seed=3, kill_p=0.25)

    def test_executor_from_env_picks_up_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS", "kill=0.1,seed=5")
        monkeypatch.setenv("REPRO_JOURNAL", str(tmp_path / "j"))
        monkeypatch.setenv("REPRO_RESUME", "1")
        monkeypatch.setenv("REPRO_WATCHDOG", "2.5")
        cfg = ExecutorConfig.from_env()
        assert cfg.chaos == ChaosConfig(seed=5, kill_p=0.1)
        assert str(cfg.journal_dir) == str(tmp_path / "j")
        assert cfg.resume is True
        assert cfg.watchdog == 2.5

    def test_watchdog_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "0")
        assert ExecutorConfig.from_env().watchdog is None


class TestChaosDeterminism:
    HASHES = [tiny_job(seed=s).content_hash() for s in range(16)]

    def test_decisions_replay_across_instances(self):
        a = ChaosConfig(seed=11, kill_p=0.5, hang_p=0.3, corrupt_p=0.4)
        b = ChaosConfig(seed=11, kill_p=0.5, hang_p=0.3, corrupt_p=0.4)
        for h in self.HASHES:
            assert a.kill_point(h, 0) == b.kill_point(h, 0)
            assert a.should_hang(h, 0) == b.should_hang(h, 0)
            assert a.cache_fault(h) == b.cache_fault(h)

    def test_decisions_vary_by_attempt(self):
        c = ChaosConfig(seed=0, kill_p=0.5)
        assert any(
            c.should_kill(h, 0) != c.should_kill(h, 1)
            for h in self.HASHES
        )

    def test_retries_make_progress(self):
        # No job may be killed on every attempt forever; with p=0.5 a
        # surviving attempt must appear within a small budget.
        c = ChaosConfig(seed=0, kill_p=0.5)
        for h in self.HASHES:
            assert any(not c.should_kill(h, a) for a in range(20))

    def test_both_kill_points_occur(self):
        c = ChaosConfig(seed=0, kill_p=1.0)
        points = {c.kill_point(h, 0) for h in self.HASHES}
        assert points == {"early", "late"}

    def test_delay_bounded(self):
        c = ChaosConfig(seed=0, delay_p=1.0, delay_max=0.01)
        for h in self.HASHES:
            assert 0.0 <= c.delivery_delay(h, 0) <= 0.01

    def test_corrupt_bytes_identity_without_fault(self):
        blob = b'{"x": 1}' * 32
        assert ChaosConfig(seed=0).corrupt_bytes("key", blob) == blob

    def test_corrupt_bytes_deterministic_damage(self):
        c = ChaosConfig(seed=0, corrupt_p=1.0)
        blob = b'{"x": 1}' * 32
        damaged = c.corrupt_bytes("key", blob)
        assert damaged != blob
        assert damaged == c.corrupt_bytes("key", blob)

    def test_truncate_and_flip_both_occur(self):
        c = ChaosConfig(seed=0, corrupt_p=1.0)
        faults = {c.cache_fault(h) for h in self.HASHES}
        assert faults == {"truncate", "flip"}

    def test_refuse_gated_deterministic_and_keyed_by_attempt(self):
        assert not ChaosConfig(seed=0).should_refuse(
            "client-connect", "/v1/sweeps", 0)
        c = ChaosConfig(seed=3, net_refuse_p=1.0)
        assert all(c.should_refuse("client-connect", h, 0)
                   for h in self.HASHES)
        mid = ChaosConfig(seed=1, net_refuse_p=0.5)
        again = ChaosConfig(seed=1, net_refuse_p=0.5)
        assert [mid.should_refuse("s", h, 0) for h in self.HASHES] == \
               [again.should_refuse("s", h, 0) for h in self.HASHES]
        assert any(
            mid.should_refuse("s", h, 0) != mid.should_refuse("s", h, 1)
            for h in self.HASHES
        )

    def test_slow_delay_gated_and_exact(self):
        assert ChaosConfig(seed=0).slow_delay("h", 0) == 0.0
        c = ChaosConfig(seed=3, slow_p=1.0, slow_seconds=0.125)
        assert all(c.slow_delay(h, 0) == 0.125 for h in self.HASHES)
        mid = ChaosConfig(seed=1, slow_p=0.5, slow_seconds=0.125)
        delays = [mid.slow_delay(h, 0) for h in self.HASHES]
        assert set(delays) == {0.0, 0.125}
        assert delays == [mid.slow_delay(h, 0) for h in self.HASHES]


# ----------------------------------------------------------------------
# cache integrity: checksums, quarantine, verify
# ----------------------------------------------------------------------
class TestCacheIntegrity:
    def _seeded(self, root) -> tuple[ResultCache, SimJob]:
        cache = ResultCache(root)
        job = tiny_job()
        cache.put(job, job.run())
        return cache, job

    def test_roundtrip_has_checksum(self, tmp_path):
        cache, job = self._seeded(tmp_path)
        entry = json.loads(cache.path_for(job).read_text())
        assert "checksum" in entry
        assert cache.get(job) is not None

    def test_truncated_entry_quarantined(self, tmp_path):
        cache, job = self._seeded(tmp_path)
        path = cache.path_for(job)
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get(job) is None
        assert not path.exists()
        assert path.with_suffix(CORRUPT_SUFFIX).exists()
        assert cache.stats().corrupt == 1

    def test_bitflip_detected_by_checksum(self, tmp_path):
        # Valid JSON, valid key, wrong payload: only the checksum can
        # catch this one.
        cache, job = self._seeded(tmp_path)
        path = cache.path_for(job)
        entry = json.loads(path.read_text())
        entry["result"]["cycles"] += 1
        path.write_text(json.dumps(entry))
        assert cache.get(job) is None
        assert path.with_suffix(CORRUPT_SUFFIX).exists()

    def test_key_mismatch_is_corrupt(self, tmp_path):
        cache, job = self._seeded(tmp_path)
        path = cache.path_for(job)
        entry = json.loads(path.read_text())
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert cache.get(job) is None
        assert path.with_suffix(CORRUPT_SUFFIX).exists()

    def test_stale_schema_is_plain_miss_not_quarantine(self, tmp_path):
        cache, job = self._seeded(tmp_path)
        path = cache.path_for(job)
        entry = json.loads(path.read_text())
        entry["schema"] = -1
        path.write_text(json.dumps(entry))
        assert cache.get(job) is None
        assert path.exists()  # awaiting overwrite, not quarantined
        assert cache.stats().corrupt == 0

    def test_verify_sweep(self, tmp_path):
        cache = ResultCache(tmp_path)
        ok_job, stale_job, bad_job = (tiny_job(seed=s) for s in (1, 2, 3))
        for job in (ok_job, stale_job, bad_job):
            cache.put(job, job.run())
        stale_path = cache.path_for(stale_job)
        entry = json.loads(stale_path.read_text())
        entry["schema"] = -1
        stale_path.write_text(json.dumps(entry))
        bad_path = cache.path_for(bad_job)
        bad_path.write_bytes(bad_path.read_bytes()[:25])
        report = cache.verify()
        assert (report.checked, report.ok, report.stale,
                report.quarantined) == (3, 1, 1, 1)
        assert bad_path.with_suffix(CORRUPT_SUFFIX).exists()

    def test_chaotic_writes_survive_via_quarantine(self, tmp_path):
        # Every write is damaged; every read must detect it, quarantine,
        # and report a miss — never serve corrupt data.
        chaotic = ResultCache(tmp_path, chaos=ChaosConfig(seed=0,
                                                          corrupt_p=1.0))
        job = tiny_job()
        payload = job.run()
        chaotic.put(job, payload)
        assert chaotic.get(job) is None
        assert chaotic.stats().corrupt == 1
        faithful = ResultCache(tmp_path)
        faithful.put(job, payload)
        assert faithful.get(job) == payload

    def test_clear_removes_quarantined_files(self, tmp_path):
        cache, job = self._seeded(tmp_path)
        path = cache.path_for(job)
        path.write_bytes(b"junk")
        assert cache.get(job) is None
        assert cache.clear() == 1  # the .corrupt file
        assert cache.stats().corrupt == 0

    def test_cache_verify_cli(self, tmp_path, capsys):
        cache, job = self._seeded(tmp_path)
        cache.path_for(job).write_bytes(b"junk")
        assert exec_main(["cache", "verify", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "quarantined: 1" in out
        # The sweep moved the damage aside; a second sweep is clean.
        assert exec_main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_cache_stats_cli_counts_corrupt(self, tmp_path, capsys):
        cache, job = self._seeded(tmp_path)
        cache.path_for(job).write_bytes(b"junk")
        assert cache.get(job) is None
        assert exec_main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        assert "corrupt: 1" in capsys.readouterr().out


# ----------------------------------------------------------------------
# run journal: transitions, rotation, torn tail
# ----------------------------------------------------------------------
class TestJournal:
    def _records(self, path) -> list[dict]:
        return [json.loads(line) for line in
                path.read_text().splitlines() if line.strip()]

    def test_transitions_recorded(self, tmp_path):
        jobs = [tiny_job(seed=s) for s in (0, 1)]
        _, report = execute_jobs(
            jobs, ExecutorConfig(journal_dir=tmp_path)
        )
        assert report.run_id == derive_run_id(
            [j.content_hash() for j in jobs]
        )
        recs = self._records(tmp_path / f"{report.run_id}.jsonl")
        events = [r["event"] for r in recs]
        assert events[0] == "run-start"
        assert events[-1] == "run-end"
        assert events.count("queued") == 2
        assert events.count("started") == 2
        assert events.count("done") == 2
        done = next(r for r in recs if r["event"] == "done")
        assert "payload" in done and "result" in done["payload"]
        queued = next(r for r in recs if r["event"] == "queued")
        assert "fingerprint" in queued

    def test_derive_run_id_content_addressed(self):
        hashes = [tiny_job(seed=s).content_hash() for s in (0, 1)]
        assert derive_run_id(hashes) == derive_run_id(hashes)
        assert derive_run_id(hashes) != derive_run_id(hashes[::-1])
        assert len(derive_run_id(hashes)) == 16

    def test_fresh_run_rotates_old_journal(self, tmp_path):
        jobs = [tiny_job()]
        _, report = execute_jobs(jobs, ExecutorConfig(journal_dir=tmp_path))
        _, report2 = execute_jobs(jobs,
                                  ExecutorConfig(journal_dir=tmp_path))
        assert report2.run_id == report.run_id
        assert (tmp_path / f"{report.run_id}.jsonl").exists()
        assert (tmp_path / f"{report.run_id}.jsonl.1").exists()

    def test_resume_replays_without_simulation(self, tmp_path):
        jobs = [tiny_job(seed=s) for s in (0, 1)]
        first, _ = execute_jobs(jobs, ExecutorConfig(journal_dir=tmp_path))
        second, report = execute_jobs(
            jobs, ExecutorConfig(journal_dir=tmp_path, resume=True)
        )
        assert report.resumed == 2
        assert report.simulated == 0
        assert canon(second) == canon(first)

    def test_queued_jobs_roundtrip(self, tmp_path):
        jobs = grid_jobs()[:4]
        _, report = execute_jobs(jobs, ExecutorConfig(journal_dir=tmp_path))
        loaded = RunJournal(tmp_path, report.run_id, resume=True)
        rebuilt = loaded.queued_jobs()
        loaded.close()
        assert [j.content_hash() for j in rebuilt] == \
               [j.content_hash() for j in jobs]

    def test_torn_tail_tolerated_and_truncated(self, tmp_path):
        jobs = [tiny_job()]
        _, report = execute_jobs(jobs, ExecutorConfig(journal_dir=tmp_path))
        path = tmp_path / f"{report.run_id}.jsonl"
        with path.open("ab") as fh:
            fh.write(b'{"seq": 99, "event": "do')  # crash mid-write
        loaded = RunJournal(tmp_path, report.run_id, resume=True)
        assert len(loaded.completed_results()) == 1
        # Appending after recovery must not concatenate onto the torn
        # fragment — a later load has to parse cleanly.
        loaded.record("run-start", run_id=report.run_id)
        loaded.close()
        again = RunJournal(tmp_path, report.run_id, resume=True)
        assert len(again.completed_results()) == 1
        again.close()

    def test_damage_before_tail_raises(self, tmp_path):
        jobs = [tiny_job()]
        _, report = execute_jobs(jobs, ExecutorConfig(journal_dir=tmp_path))
        path = tmp_path / f"{report.run_id}.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"garbage not json\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(ValueError, match="damaged at line 2"):
            RunJournal(tmp_path, report.run_id, resume=True)


# ----------------------------------------------------------------------
# size rotation: segments, the rotation seam, archival
# ----------------------------------------------------------------------
class TestJournalRotation:
    def test_rotation_produces_segments_and_replays_all(self, tmp_path):
        j = RunJournal(tmp_path, "rot0", rotate_bytes=256)
        for i in range(40):
            j.record("started", f"{i:064x}", attempt=0)
        j.close()
        segs = sorted(tmp_path.glob("rot0.jsonl.seg*"))
        assert len(segs) >= 2
        # Segment order is numeric, not lexicographic.
        nums = [int(p.name.rsplit("seg", 1)[1]) for p in segs]
        assert sorted(nums) == list(range(1, len(segs) + 1))
        loaded = RunJournal(tmp_path, "rot0", resume=True)
        # Replay spans every segment plus the active file: appended
        # records keep a contiguous seq.
        loaded.record("run-end")
        loaded.close()
        again = RunJournal(tmp_path, "rot0", resume=True)
        again.close()
        assert again._seq == 41

    def test_done_records_survive_rotation(self, tmp_path):
        from repro.exec import JobLedger

        jobs = [tiny_job(seed=s) for s in (0, 1)]
        run_id = derive_run_id([j.content_hash() for j in jobs])
        # A cap this small rotates after nearly every record, so done
        # payloads land spread across several physical files.
        ledger = JobLedger(jobs, journal=RunJournal(
            tmp_path, run_id, rotate_bytes=128,
        ))
        for idx in ledger.open():
            ledger.start(idx, 0)
            ledger.complete(idx, jobs[idx].run())
        ledger.summarize()
        ledger.close()
        first = list(ledger.results)
        assert list(tmp_path.glob(f"{run_id}.jsonl.seg*"))

        resumed = JobLedger(jobs, journal=RunJournal(
            tmp_path, run_id, resume=True, rotate_bytes=128,
        ), resume=True)
        assert resumed.open() == []
        assert resumed.report.resumed == 2
        assert resumed.report.simulated == 0
        resumed.close()
        assert canon(resumed.results) == canon(first)

    def test_record_torn_across_rotation_seam_recovers(self, tmp_path):
        # What a reader racing a rotation (or a crash mid-rotation)
        # observes: the tail fragment of one segment continued at the
        # head of the next file. The concatenated replay must stitch
        # the record back together, not reject the journal.
        rec = json.dumps({"seq": 1, "event": "started",
                          "job": "a" * 64, "attempt": 0})
        head = json.dumps({"seq": 0, "event": "run-start",
                           "run_id": "seam"})
        split = len(rec) // 2
        (tmp_path / "seam.jsonl.seg1").write_text(
            head + "\n" + rec[:split]
        )
        (tmp_path / "seam.jsonl").write_text(rec[split:] + "\n")
        loaded = RunJournal(tmp_path, "seam", resume=True)
        loaded.close()
        assert loaded._seq == 2

    def test_torn_tail_of_final_segment_truncated(self, tmp_path):
        j = RunJournal(tmp_path, "tail", rotate_bytes=96)
        for i in range(8):
            j.record("started", f"{i:064x}", attempt=0)
        j.close()
        with (tmp_path / "tail.jsonl").open("a") as fh:
            fh.write('{"seq": 99, "event": "do')  # crash mid-write
        loaded = RunJournal(tmp_path, "tail", resume=True)
        loaded.record("run-end")
        loaded.close()
        again = RunJournal(tmp_path, "tail", resume=True)
        again.close()
        assert again._seq == 9

    def test_fresh_run_archives_segments_too(self, tmp_path):
        j = RunJournal(tmp_path, "arch", rotate_bytes=96)
        for i in range(8):
            j.record("started", f"{i:064x}", attempt=0)
        j.close()
        fresh = RunJournal(tmp_path, "arch", resume=False)
        fresh.record("run-start", run_id="arch")
        fresh.close()
        assert (tmp_path / "arch.jsonl.1").exists()
        assert list(tmp_path.glob("arch.jsonl.1.seg*"))
        # The fresh journal starts from scratch.
        again = RunJournal(tmp_path, "arch", resume=True)
        again.close()
        assert again._seq == 1


# ----------------------------------------------------------------------
# the headline invariant: chaos == fault-free, byte for byte
# ----------------------------------------------------------------------
class TestChaosInvariant:
    def test_process_mode_chaos_matches_golden(self, tmp_path, golden):
        jobs = grid_jobs()
        hashes = [j.content_hash() for j in jobs]
        seed = chaotic_seed(hashes, kill_p=0.3, hang_p=0.15,
                            min_kills=2, min_hangs=1)
        chaos = ChaosConfig(seed=seed, kill_p=0.3, hang_p=0.15,
                            delay_p=0.2, dup_p=0.2, corrupt_p=0.3)
        executor = ExecutorConfig(
            jobs=3, cache_dir=tmp_path / "cache",
            journal_dir=tmp_path / "journal",
            retries=8, timeout=120.0, watchdog=0.5, chaos=chaos,
        )
        results, report = execute_jobs(jobs, executor)
        assert canon(results) == golden
        assert report.retried >= 3  # >=2 kills + >=1 hang, all retried
        assert report.simulated == len(jobs)
        assert live_worker_count() == 0

    def test_serial_chaos_matches_golden(self, tmp_path, golden):
        jobs = grid_jobs()
        hashes = [j.content_hash() for j in jobs]
        seed = chaotic_seed(hashes, kill_p=0.4)
        chaos = ChaosConfig(seed=seed, kill_p=0.4)
        results, report = execute_jobs(
            jobs, ExecutorConfig(jobs=1, retries=8, chaos=chaos)
        )
        assert canon(results) == golden
        assert report.retried >= 2

    def test_corrupted_cache_rerun_matches_golden(self, tmp_path, golden):
        jobs = grid_jobs()
        hashes = [j.content_hash() for j in jobs]
        seed = next(
            s for s in range(200)
            if sum(ChaosConfig(seed=s, corrupt_p=0.5).cache_fault(h)
                   is not None for h in hashes) >= 2
        )
        chaos = ChaosConfig(seed=seed, corrupt_p=0.5)
        executor = ExecutorConfig(jobs=1, cache_dir=tmp_path, chaos=chaos)
        cold, _ = execute_jobs(jobs, executor)
        # The warm rerun reads the damaged store: corrupt entries must
        # be quarantined and recomputed, sound ones served — and the
        # final results must still be byte-identical to fault-free.
        warm, report = execute_jobs(jobs, executor)
        assert canon(cold) == golden
        assert canon(warm) == golden
        quarantined = ResultCache(tmp_path).stats().corrupt
        assert quarantined >= 2
        assert report.cached == len(jobs) - quarantined
        assert report.simulated == quarantined

    def test_chaos_smoke_cli(self, capsys):
        assert exec_main(["chaos-smoke", "--insns", "300"]) == 0
        assert "byte-identical" in capsys.readouterr().out


# ----------------------------------------------------------------------
# interrupt -> resume
# ----------------------------------------------------------------------
class TestInterruptResume:
    def test_interrupt_reaps_journals_and_resumes(self, tmp_path, golden):
        jobs = grid_jobs()
        events = 0

        def boom(_progress) -> None:
            nonlocal events
            events += 1
            if events == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_jobs(
                jobs,
                ExecutorConfig(jobs=2, journal_dir=tmp_path),
                progress=boom,
            )
        assert live_worker_count() == 0  # no orphans survive Ctrl-C

        run_id = derive_run_id([j.content_hash() for j in jobs])
        recs = [json.loads(line) for line in
                (tmp_path / f"{run_id}.jsonl").read_text().splitlines()]
        events_seen = [r["event"] for r in recs]
        assert "interrupted" in events_seen  # the in-flight worker
        done_before = events_seen.count("done")
        assert 0 < done_before < len(jobs)

        results, report = execute_jobs(
            jobs,
            ExecutorConfig(jobs=2, journal_dir=tmp_path, resume=True),
        )
        assert report.resumed == done_before
        assert report.resumed + report.simulated == len(jobs)
        assert canon(results) == golden

        again, report2 = execute_jobs(
            jobs, ExecutorConfig(journal_dir=tmp_path, resume=True)
        )
        assert report2.resumed == len(jobs)
        assert report2.simulated == 0
        assert canon(again) == golden

    def test_resume_cli(self, tmp_path, capsys):
        jobs = grid_jobs()[:4]

        def boom(progress) -> None:
            if progress.report.completed == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_jobs(jobs, ExecutorConfig(journal_dir=tmp_path),
                         progress=boom)
        run_id = derive_run_id([j.content_hash() for j in jobs])
        assert exec_main(
            ["resume", run_id, "--journal-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 resumed" in out
        assert "3 simulated" in out

    def test_resume_cli_unknown_run(self, tmp_path, capsys):
        assert exec_main(
            ["resume", "feedfacedeadbeef", "--journal-dir", str(tmp_path)]
        ) == 2
        capsys.readouterr()

    def test_serial_interrupt_journals_in_flight_job(self, tmp_path,
                                                     monkeypatch):
        jobs = [tiny_job(seed=s) for s in (0, 1)]
        real_run = SimJob.run
        calls = 0

        def flaky_run(self):
            nonlocal calls
            calls += 1
            if calls == 2:
                raise KeyboardInterrupt
            return real_run(self)

        monkeypatch.setattr(SimJob, "run", flaky_run)
        with pytest.raises(KeyboardInterrupt):
            execute_jobs(jobs, ExecutorConfig(journal_dir=tmp_path))
        run_id = derive_run_id([j.content_hash() for j in jobs])
        recs = [json.loads(line) for line in
                (tmp_path / f"{run_id}.jsonl").read_text().splitlines()]
        by_event = [r["event"] for r in recs]
        assert by_event.count("done") == 1
        assert by_event.count("interrupted") == 1


# ----------------------------------------------------------------------
# degraded paths: no fork, retries exhausted, hung workers
# ----------------------------------------------------------------------
class TestDegradedPaths:
    def test_serial_fallback_without_fork(self, tmp_path, monkeypatch,
                                          golden):
        monkeypatch.setattr(pool_mod, "fork_available", lambda: False)
        jobs = grid_jobs()
        results, report = execute_jobs(
            jobs,
            ExecutorConfig(jobs=4, cache_dir=tmp_path / "cache",
                           journal_dir=tmp_path / "journal"),
        )
        assert canon(results) == golden
        assert report.simulated == len(jobs)

    def test_retry_exhaustion_serial_reports_every_failure(self):
        jobs = [tiny_job(seed=s) for s in (0, 1, 2)]
        chaos = ChaosConfig(seed=0, kill_p=1.0)  # every attempt dies
        with pytest.raises(ExecutionError) as excinfo:
            execute_jobs(jobs, ExecutorConfig(jobs=1, retries=2,
                                              chaos=chaos))
        err = excinfo.value
        assert len(err.failures) == len(jobs)
        assert {f.job.content_hash() for f in err.failures} == \
               {j.content_hash() for j in jobs}
        assert all("ChaosError" in f.message for f in err.failures)
        assert err.report.failed == len(jobs)
        assert err.report.retried == len(jobs) * 2

    def test_retry_exhaustion_process_reports_every_failure(self):
        jobs = [tiny_job(seed=s) for s in (0, 1)]
        chaos = ChaosConfig(seed=0, kill_p=1.0)
        with pytest.raises(ExecutionError) as excinfo:
            execute_jobs(jobs, ExecutorConfig(jobs=2, retries=1,
                                              chaos=chaos, watchdog=None))
        err = excinfo.value
        assert len(err.failures) == len(jobs)
        assert all("exit code 73" in f.message for f in err.failures)
        assert err.report.retried == len(jobs)
        assert live_worker_count() == 0

    def test_timeout_fires_on_hung_worker(self, monkeypatch):
        # A worker that computes forever keeps heartbeating, so only
        # the per-job timeout may reap it — and must.
        monkeypatch.setattr(SimJob, "run", lambda self: time.sleep(60))
        jobs = [tiny_job(seed=s) for s in (0, 1)]
        start = time.monotonic()
        with pytest.raises(ExecutionError) as excinfo:
            execute_jobs(jobs, ExecutorConfig(jobs=2, retries=0,
                                              timeout=0.75))
        assert time.monotonic() - start < 30
        assert all("timed out after 0.75s" in f.message
                   for f in excinfo.value.failures)
        assert live_worker_count() == 0

    def test_watchdog_fires_on_silent_worker(self):
        # A chaos hang stops the heartbeat; the watchdog must reap it
        # within its grace period even with no timeout configured.
        jobs = [tiny_job(seed=s) for s in (0, 1)]
        chaos = ChaosConfig(seed=0, hang_p=1.0)
        start = time.monotonic()
        with pytest.raises(ExecutionError) as excinfo:
            execute_jobs(jobs, ExecutorConfig(jobs=2, retries=0,
                                              watchdog=0.5, chaos=chaos))
        assert time.monotonic() - start < 30
        assert all("worker hung (no heartbeat for 0.5s)" in f.message
                   for f in excinfo.value.failures)
        assert live_worker_count() == 0

    def test_slow_worker_beats_through_watchdog(self):
        # The slow fault delays the job while the heartbeat thread
        # keeps ticking: a watchdog tighter than the delay must NOT
        # fire (only a per-job timeout may reap slow-but-alive work),
        # and the delayed results stay byte-identical.
        jobs = [tiny_job(seed=s) for s in (0, 1)]
        golden, _ = execute_jobs(jobs, ExecutorConfig(jobs=1))
        chaos = ChaosConfig(seed=0, slow_p=1.0, slow_seconds=0.8)
        results, report = execute_jobs(
            jobs, ExecutorConfig(jobs=2, retries=0, watchdog=0.4,
                                 chaos=chaos))
        assert canon(results) == canon(golden)
        assert report.retried == 0
        assert report.failed == 0
        assert live_worker_count() == 0
